// Seeded random generation of fuzz ProgramSpecs.
//
// generate_spec(seed, config) is a pure function of its arguments: the
// same seed always yields the same spec (the Rng stream is consumed in a
// fixed order), which is what makes campaign findings reproducible from a
// printed seed and corpus files byte-stable.
//
// The generator's grammar covers the whole structured kernel surface:
// every Predicate::NodeKind (guards and spec predicates are random
// and/or/not trees of depth <= 2 over var==c / var!=c / var==var /
// var!=var leaves), every Action::EffectForm kind, bounded channels with
// sends/receives, and fault actions drawn from the nondeterministic
// shapes (corrupt_any, assign_choice, channel lose/duplicate/corrupt).
// The state-space budget (`max_states`) caps the product of the variable
// domains, so oracle runs stay fast enough for 10k-program campaigns.
#pragma once

#include <cstdint>

#include "fuzz/spec.hpp"

namespace dcft::fuzz {

/// Size and shape knobs for generate_spec.
struct GeneratorConfig {
    std::uint64_t max_states = 4096;  ///< cap on the state-space product
    std::size_t max_vars = 4;         ///< plain variables: 1..max_vars
    Value max_domain = 5;             ///< per-variable domain: 2..max_domain
    std::size_t max_actions = 6;      ///< program actions: 1..max_actions
    std::size_t max_fault_actions = 3;  ///< fault actions: 0..max
    double channel_probability = 0.35;  ///< chance of declaring a channel
};

/// Deterministically generates one spec from `seed`. The result always
/// satisfies validate() and num_states(result) <= config.max_states.
ProgramSpec generate_spec(std::uint64_t seed, const GeneratorConfig& config);

}  // namespace dcft::fuzz
