// The reusable corrector builders (Section 7's component framework).
#include "components/corrector.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "verify/component_checker.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> grid_space() {
    return make_space({Variable{"a", 3, {}}, Variable{"b", 3, {}},
                       Variable{"z", 2, {}}});
}

Predicate origin(const StateSpace& sp) {
    return (Predicate::var_eq(sp, "a", 0) && Predicate::var_eq(sp, "b", 0))
        .renamed("origin");
}

TEST(ResetCorrectorTest, SatisfiesItsOwnClaim) {
    auto sp = grid_space();
    const Corrector c =
        make_reset(sp, origin(*sp), {{"a", 0}, {"b", 0}});
    EXPECT_TRUE(c.verify().ok);
}

TEST(ResetCorrectorTest, ResetIsOneAtomicStep) {
    auto sp = grid_space();
    const Corrector c =
        make_reset(sp, origin(*sp), {{"a", 0}, {"b", 0}});
    const StateIndex far = sp->encode({{2, 2, 0}});
    ASSERT_EQ(c.program.num_actions(), 1u);
    const StateIndex t = c.program.action(0).apply(*sp, far);
    EXPECT_TRUE(origin(*sp).eval(*sp, t));
    // Disabled once corrected.
    EXPECT_FALSE(c.program.action(0).enabled(*sp, t));
}

TEST(ResetCorrectorTest, RejectsBadValues) {
    auto sp = grid_space();
    EXPECT_THROW(make_reset(sp, origin(*sp), {{"a", 7}}), ContractError);
    EXPECT_THROW(make_reset(sp, origin(*sp), {}), ContractError);
}

TEST(ConstraintSatisfierTest, StepwiseRepairConverges) {
    auto sp = grid_space();
    // Repair one variable at a time, a first.
    const Corrector c = make_constraint_satisfier(
        sp, origin(*sp),
        [](const StateSpace& space, StateIndex s) {
            if (space.get(s, 0) != 0) return space.set(s, 0, 0);
            return space.set(s, 1, 0);
        });
    EXPECT_TRUE(c.verify().ok);
}

TEST(ConstraintSatisfierTest, NonConvergingRepairRejectedByChecker) {
    auto sp = grid_space();
    // A "repair" that cycles a without ever fixing b.
    const Corrector c = make_constraint_satisfier(
        sp, origin(*sp),
        [](const StateSpace& space, StateIndex s) {
            return space.set(s, 0, (space.get(s, 0) + 1) % 3);
        });
    EXPECT_FALSE(c.verify().ok);
}

TEST(WitnessedCorrectorTest, SeparatesWitnessFromCorrection) {
    auto sp = grid_space();
    Corrector c = add_witness(
        make_reset(sp, origin(*sp), {{"a", 0}, {"b", 0}}), sp, "z");
    EXPECT_EQ(c.claim.witness.name(), "Z(z)");
    EXPECT_TRUE(c.verify().ok);
    // The witness lags the correction by one step: from a corrected but
    // unwitnessed state, the witness action raises z.
    const StateIndex corrected = sp->encode({{0, 0, 0}});
    std::vector<StateIndex> succ;
    c.program.successors(corrected, succ);
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_EQ(sp->get(succ[0], 2), 1);
}

TEST(WitnessedCorrectorTest, NonmaskingTolerantToPerturbation) {
    auto sp = grid_space();
    Corrector c = add_witness(
        make_reset(sp, origin(*sp), {{"a", 0}, {"b", 0}}), sp, "z");
    FaultClass f(sp, "F");
    f.add_action(Action::nondet(
        "perturb", Predicate::top(),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            StateIndex t = space.set(s, 0, 1);
            out.push_back(space.set(t, 2, 0));  // knock a, clear witness
        }));
    EXPECT_TRUE(check_tolerant_corrector(c.program, f, c.claim,
                                         Tolerance::Nonmasking,
                                         Predicate::top())
                    .ok);
    // But not masking F-tolerant: the fault itself falsifies X.
    EXPECT_FALSE(check_tolerant_corrector(c.program, f, c.claim,
                                          Tolerance::Masking,
                                          Predicate::top())
                     .ok);
}

TEST(AttachTest, ComposesAlongside) {
    auto sp = grid_space();
    const Corrector c =
        make_reset(sp, origin(*sp), {{"a", 0}, {"b", 0}});
    Program base(sp, "base");
    base.add_action(Action::assign_const(
        *sp, "walk", origin(*sp), "a", 1));
    const Program composed = c.attach(base);
    EXPECT_EQ(composed.num_actions(), 2u);
}

}  // namespace
}  // namespace dcft
