// The reusable detector builders (Section 7's component framework).
#include "components/detector.hpp"

#include <gtest/gtest.h>

#include "apps/tmr.hpp"
#include "common/check.hpp"
#include "verify/component_checker.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> cond_space() {
    return make_space({Variable{"cond", 2, {}}, Variable{"z", 2, {}}});
}

TEST(WatchdogTest, SatisfiesItsOwnClaim) {
    auto sp = cond_space();
    const Detector d = make_watchdog(
        sp, "z", Predicate::var_eq(*sp, "cond", 1).renamed("X"));
    EXPECT_TRUE(d.verify().ok);
}

TEST(WatchdogTest, RequiresBooleanWitness) {
    auto sp = make_space({Variable{"cond", 2, {}}, Variable{"z", 3, {}}});
    EXPECT_THROW(
        make_watchdog(sp, "z", Predicate::var_eq(*sp, "cond", 1)),
        ContractError);
}

TEST(WatchdogTest, GateBlocksBaseUntilWitness) {
    auto sp = cond_space();
    const Detector d = make_watchdog(
        sp, "z", Predicate::var_eq(*sp, "cond", 1).renamed("X"));
    Program base(sp, sp->varset({"cond"}), "base");
    base.add_action(Action::assign_const(*sp, "act", Predicate::top(),
                                         "cond", 0));
    const Program gated = d.gate(base);
    // The gated copy of base's action is found by provenance: it must be
    // enabled only once the witness holds.
    const StateIndex no_witness = sp->encode({{1, 0}});
    const StateIndex witnessed = sp->encode({{1, 1}});
    bool found_gated = false;
    for (const auto& ac : gated.actions()) {
        if (ac.has_base() && ac.root_base().id() == base.action(0).id()) {
            EXPECT_TRUE(ac.enabled(*sp, witnessed));
            EXPECT_FALSE(ac.enabled(*sp, no_witness));
            found_gated = true;
        }
    }
    EXPECT_TRUE(found_gated);
}

TEST(WatchdogTest, InterferenceFreedomWithinComposition) {
    auto sp = cond_space();
    const Detector d = make_watchdog(
        sp, "z", Predicate::var_eq(*sp, "cond", 1).renamed("X"));
    // A benign neighbour that only raises cond.
    Program neighbour(sp, sp->varset({"cond"}), "raiser");
    neighbour.add_action(Action::assign_const(
        *sp, "raise-cond", Predicate::var_eq(*sp, "cond", 0), "cond", 1));
    EXPECT_TRUE(d.verify_within(parallel(d.program, neighbour)).ok);

    // An interfering neighbour that falsifies cond: Safeness breaks
    // because the witness keeps pointing at a gone condition.
    Program saboteur(sp, sp->varset({"cond"}), "saboteur");
    saboteur.add_action(Action::assign_const(
        *sp, "drop-cond", Predicate::var_eq(*sp, "cond", 1), "cond", 0));
    EXPECT_FALSE(d.verify_within(parallel(d.program, saboteur)).ok);
}

TEST(ResettingWatchdogTest, ToleratesTransientConditions) {
    // With the lower action, the composition with the saboteur satisfies
    // the nonmasking weakening of the detects spec (the witness chases the
    // condition) — though never the masking one (a lag step exists).
    auto sp = cond_space();
    const Detector d = make_resetting_watchdog(
        sp, "z", Predicate::var_eq(*sp, "cond", 1).renamed("X"));
    EXPECT_TRUE(d.verify().ok);
}

TEST(ComparatorTest, MatchesTheTmrWitness) {
    auto sys = apps::make_tmr(2);
    const Detector d = make_comparator(
        sys.space, "x", "y", sys.x_uncorrupted, sys.invariant);
    // Witness: x == y. Same gating role as the paper's (x=y \/ x=z) for
    // the y-half; the claim holds from the invariant.
    EXPECT_TRUE(d.verify().ok);
    // Stateless: no actions of its own.
    EXPECT_EQ(d.program.num_actions(), 0u);
}

TEST(ThresholdTest, MajorityWitness) {
    auto sys = apps::make_tmr(2);
    std::vector<Predicate> agree;
    for (const char* v : {"x", "y", "z"}) {
        agree.push_back(Predicate(
            std::string(v) + "==maj",
            [id = sys.space->find(v), sys](const StateSpace& sp,
                                           StateIndex s) {
                return sp.get(s, id) == sp.get(s, sys.x_var) ||
                       sp.get(s, id) == sp.get(s, sys.y_var);
            }));
    }
    EXPECT_THROW(make_threshold(sys.space, agree, 0, Predicate::top(),
                                Predicate::top()),
                 ContractError);
    EXPECT_THROW(make_threshold(sys.space, {}, 1, Predicate::top(),
                                Predicate::top()),
                 ContractError);
    const Detector d = make_threshold(sys.space, agree, 2,
                                      Predicate::top(), Predicate::top());
    EXPECT_EQ(d.program.num_actions(), 0u);
    // With threshold 2-of-3 over these conditions the witness holds at
    // least on all-agree states.
    EXPECT_TRUE(d.claim.witness.eval(*sys.space, sys.initial_state(0)));
}

TEST(WatchdogTest, FailsafeTolerantUnderGuardedFault) {
    auto sp = cond_space();
    const Detector d = make_watchdog(
        sp, "z", Predicate::var_eq(*sp, "cond", 1).renamed("X"));
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(
        *sp, "strike",
        Predicate::var_eq(*sp, "cond", 1) && Predicate::var_eq(*sp, "z", 0),
        "cond", 0));
    EXPECT_TRUE(check_tolerant_detector(d.program, f, d.claim,
                                        Tolerance::FailSafe, d.claim.context)
                    .ok);
}

}  // namespace
}  // namespace dcft
