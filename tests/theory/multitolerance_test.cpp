// Multitolerance — the authors' companion concept (refs [4], [10]; the
// paper's intro claims "the first solutions that satisfy multiple
// fault-tolerance properties"): one program, several fault classes, a
// different tolerance grade to each. The checker decides each (program,
// fault-class) pair independently, so multitolerance is just a
// conjunction of verdicts.
#include <gtest/gtest.h>

#include "apps/alternating_bit.hpp"
#include "apps/memory_access.hpp"
#include "verify/invariant.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

TEST(MultitoleranceTest, AbpGradesPerFaultClass) {
    // One protocol, three fault classes, three different outcomes:
    // masking to loss, masking to duplication, nothing to corruption.
    auto sys = apps::make_alternating_bit();
    const StateIndex init = sys.initial_state();
    const Predicate inv = reachable_invariant(
        sys.protocol, Predicate("init",
                                [init](const StateSpace&, StateIndex s) {
                                    return s == init;
                                }));
    EXPECT_TRUE(check_masking(sys.protocol, sys.loss, sys.spec, inv).ok());
    EXPECT_TRUE(
        check_masking(sys.protocol, sys.duplication, sys.spec, inv).ok());
    EXPECT_FALSE(
        check_failsafe(sys.protocol, sys.corruption, sys.spec, inv).ok());
}

TEST(MultitoleranceTest, CombinedFaultClassesStillMask) {
    // Loss and duplication together (the union fault class): still
    // masking — tolerances to "compatible" fault classes compose.
    auto sys = apps::make_alternating_bit();
    const StateIndex init = sys.initial_state();
    const Predicate inv = reachable_invariant(
        sys.protocol, Predicate("init",
                                [init](const StateSpace&, StateIndex s) {
                                    return s == init;
                                }));
    FaultClass both(sys.space, "loss+duplication");
    for (const auto& ac : sys.loss.actions()) both.add_action(ac);
    for (const auto& ac : sys.duplication.actions()) both.add_action(ac);
    const ToleranceReport r =
        check_masking(sys.protocol, both, sys.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(MultitoleranceTest, MemoryAccessMixedGrades) {
    // pm is masking to the guarded page fault; to the *unrestricted* page
    // fault it degrades to nonmasking (the fault can strike between
    // detection and the gated read, so safety is violated transiently,
    // but recovery still converges).
    auto sys = apps::make_memory_access();
    EXPECT_TRUE(
        check_masking(sys.masking, sys.page_fault, sys.spec, sys.S).ok());
    EXPECT_FALSE(check_masking(sys.masking, sys.unrestricted_page_fault,
                               sys.spec, sys.S)
                     .ok());
    EXPECT_TRUE(check_nonmasking(sys.masking, sys.unrestricted_page_fault,
                                 sys.spec, sys.S)
                    .ok());
}

TEST(MultitoleranceTest, GradesAreIndependentAcrossFaultClasses) {
    // The same program can sit at any point of the grade lattice per
    // fault class; verify the full matrix for pf.
    auto sys = apps::make_memory_access();
    // Guarded fault: fail-safe only.
    EXPECT_TRUE(
        check_failsafe(sys.failsafe, sys.page_fault, sys.spec, sys.S).ok());
    EXPECT_FALSE(
        check_nonmasking(sys.failsafe, sys.page_fault, sys.spec, sys.S)
            .ok());
    // Unrestricted fault: nothing at all.
    EXPECT_FALSE(check_failsafe(sys.failsafe, sys.unrestricted_page_fault,
                                sys.spec, sys.S)
                     .ok());
    EXPECT_FALSE(check_nonmasking(sys.failsafe,
                                  sys.unrestricted_page_fault, sys.spec,
                                  sys.S)
                     .ok());
}

}  // namespace
}  // namespace dcft
