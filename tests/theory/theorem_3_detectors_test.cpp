// Theorem 3.3, Theorem 3.4 and Theorem 3.6 instantiated end-to-end: on the
// paper's own examples, the hypotheses are discharged mechanically and the
// conclusions — that safety-refining programs contain detectors — are
// verified with the component checker.
#include <gtest/gtest.h>

#include "apps/memory_access.hpp"
#include "apps/tmr.hpp"
#include "verify/component_checker.hpp"
#include "verify/detection_predicate.hpp"
#include "verify/encapsulation.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

TEST(Theorem36Test, MemoryAccessInstance) {
    // Hypotheses of Theorem 3.6 with p' = pf, p = the intolerant read,
    // R = S, F = page fault.
    auto sys = apps::make_memory_access();

    // (H1) p refines SPEC from S.
    ASSERT_TRUE(refines_spec(sys.intolerant, sys.spec, sys.S).ok);
    // (H2) p' refines p from R (= S).
    ASSERT_TRUE(refines_program(sys.failsafe, sys.intolerant, sys.S).ok);
    // (H3) p' encapsulates p.
    ASSERT_TRUE(check_encapsulates(sys.failsafe, sys.intolerant).ok);
    // (H4) p' [] F refines SSPEC from T (the canonical span).
    const ToleranceReport fs =
        check_failsafe(sys.failsafe, sys.page_fault, sys.spec, sys.S);
    ASSERT_TRUE(refines_spec(sys.failsafe, sys.spec.failsafe_weakening(),
                             fs.fault_span, RefinesOptions{&sys.page_fault})
                    .ok);

    // (C1) p' is fail-safe F-tolerant for SPEC from R.
    EXPECT_TRUE(fs.ok()) << fs.reason();

    // (C2) p' is a fail-safe F-tolerant detector of a detection predicate
    // of the action of p. X1 is such a detection predicate:
    EXPECT_TRUE(is_detection_predicate(
        *sys.space, sys.X1, sys.intolerant.action_named("read"),
        sys.spec.safety()));
    const DetectorClaim claim{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_tolerant_detector(sys.failsafe, sys.page_fault, claim,
                                        Tolerance::FailSafe, sys.U1)
                    .ok);
}

TEST(Theorem36Test, TmrInstance) {
    auto sys = apps::make_tmr(2);

    ASSERT_TRUE(refines_spec(sys.intolerant, sys.spec, sys.invariant).ok);
    ASSERT_TRUE(
        refines_program(sys.failsafe, sys.intolerant, sys.invariant).ok);
    ASSERT_TRUE(check_encapsulates(sys.failsafe, sys.intolerant).ok);

    const ToleranceReport fs = check_failsafe(
        sys.failsafe, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(fs.ok()) << fs.reason();

    // X_DR = (x = uncor) is a detection predicate of IR1 for SPEC_io.
    EXPECT_TRUE(is_detection_predicate(*sys.space, sys.x_uncorrupted,
                                       sys.intolerant.action_named("IR1"),
                                       sys.spec.safety()));
    const DetectorClaim claim{sys.dr_witness, sys.x_uncorrupted,
                              sys.invariant};
    EXPECT_TRUE(check_tolerant_detector(sys.failsafe, sys.corrupt_one_input,
                                        claim, Tolerance::FailSafe,
                                        fs.fault_span)
                    .ok);
}

TEST(Theorem34Test, SafetyRefiningProgramContainsDetectors) {
    // Theorem 3.4 (no faults): pf refines SSPEC from S, so it refines
    // 'Z detects X' from S for the detection predicate of p's action.
    auto sys = apps::make_memory_access();
    ASSERT_TRUE(refines_spec(sys.failsafe, sys.spec.failsafe_weakening(),
                             sys.S)
                    .ok);
    const DetectorClaim claim{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_detector(sys.failsafe, claim).ok);
}

TEST(Theorem33Test, EveryActionHasADetectionPredicate) {
    // Theorem 3.3 over every action of every example program: the weakest
    // detection predicate exists and is a detection predicate.
    auto mem = apps::make_memory_access();
    auto tmr = apps::make_tmr(2);
    const std::vector<std::pair<const Program*, const SafetySpec*>> cases{
        {&mem.intolerant, &mem.spec.safety()},
        {&mem.masking, &mem.spec.safety()},
        {&tmr.intolerant, &tmr.spec.safety()},
        {&tmr.masking, &tmr.spec.safety()},
    };
    for (const auto& [program, safety] : cases) {
        for (const auto& ac : program->actions()) {
            const Predicate wdp =
                weakest_detection_predicate(program->space(), ac, *safety);
            EXPECT_TRUE(is_detection_predicate(program->space(), wdp, ac,
                                               *safety))
                << program->name() << "/" << ac.name();
        }
    }
}

TEST(Theorem33Test, DetectionPredicatesClosedUnderDisjunction) {
    // "If sf1 and sf2 are detection predicates of ac then so is sf1 \/
    // sf2" — on the paper's TMR action with a family of candidates.
    auto sys = apps::make_tmr(3);
    const Action& ir1 = sys.intolerant.action_named("IR1");
    std::vector<Predicate> found;
    for (Value vx = 0; vx < 3; ++vx) {
        const Predicate candidate =
            Predicate::var_eq(*sys.space, "x", vx) && sys.all_inputs_agree;
        if (is_detection_predicate(*sys.space, candidate, ir1,
                                   sys.spec.safety()))
            found.push_back(candidate);
    }
    ASSERT_GE(found.size(), 2u);
    Predicate joined = found[0];
    for (std::size_t i = 1; i < found.size(); ++i)
        joined = joined || found[i];
    EXPECT_TRUE(
        is_detection_predicate(*sys.space, joined, ir1, sys.spec.safety()));
}

TEST(Lemma35Test, EncapsulationAloneGivesFailsafeDetector) {
    // Lemma 3.5: without the refinement hypothesis (H2), Safeness and
    // Stability still hold — pf minus its progress obligations is a
    // fail-safe tolerant detector. We check it by verifying that the
    // fail-safe weakening of 'Z detects X' (which drops Progress) holds
    // for a deliberately sluggish variant of pf.
    auto sys = apps::make_memory_access();
    // pf with the detector action removed: never witnesses, never lies.
    Program sluggish(sys.space, "sluggish-pf");
    sluggish.add_action(sys.failsafe.action_named("pf1").restricted(
        Predicate::bottom()));  // disabled detector
    const ProblemSpec weak =
        detects_spec(sys.Z1, sys.X1).failsafe_weakening();
    EXPECT_TRUE(refines_spec(sluggish, weak, sys.S).ok);
    // The full detector specification fails, of course: no Progress.
    EXPECT_FALSE(refines_spec(sluggish, detects_spec(sys.Z1, sys.X1),
                              sys.S)
                     .ok);
}

}  // namespace
}  // namespace dcft
