// Theorem 4.1, Lemma 4.2 and Theorem 4.3 instantiated end-to-end:
// eventually-refining programs contain correctors; nonmasking tolerant
// programs contain nonmasking tolerant correctors.
#include <gtest/gtest.h>

#include "apps/memory_access.hpp"
#include "apps/spanning_tree.hpp"
#include "apps/token_ring.hpp"
#include "verify/component_checker.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

TEST(Theorem43Test, MemoryAccessInstance) {
    // Theorem 4.3 with p' = pn, p = the intolerant read, R = S, F = page
    // fault.
    auto sys = apps::make_memory_access();

    // (H1) p refines SPEC from S.
    ASSERT_TRUE(refines_spec(sys.intolerant, sys.spec, sys.S).ok);
    // (H2) p' refines p from R.
    ASSERT_TRUE(refines_program(sys.nonmasking, sys.intolerant, sys.S).ok);
    // (H3) p' [] F refines (true)*(p' | R) from T: convergence.
    const ToleranceReport nm =
        check_nonmasking(sys.nonmasking, sys.page_fault, sys.spec, sys.S);
    ASSERT_TRUE(
        converges(sys.nonmasking, &sys.page_fault, nm.fault_span, sys.S).ok);

    // (C1) p' is nonmasking F-tolerant for SPEC from R.
    EXPECT_TRUE(nm.ok()) << nm.reason();
    // (C2) p' is a nonmasking F-tolerant corrector of an invariant
    // predicate of p (Z = R, X = S in the proof of Lemma 4.2).
    const CorrectorClaim claim{sys.S, sys.S, sys.S};
    EXPECT_TRUE(check_tolerant_corrector(sys.nonmasking, sys.page_fault,
                                         claim, Tolerance::Nonmasking,
                                         nm.fault_span)
                    .ok);
}

TEST(Theorem41Test, EventuallyRefiningProgramIsACorrector) {
    // Theorem 4.1 (no faults): pn refines (true)*(pn | S) from anywhere in
    // the span, so pn is a corrector of an invariant predicate of p.
    auto sys = apps::make_memory_access();
    ASSERT_TRUE(
        converges(sys.nonmasking, nullptr, sys.U1, sys.S).ok);
    const CorrectorClaim claim{sys.S, sys.S, sys.U1};
    EXPECT_TRUE(check_corrector(sys.nonmasking, claim).ok);
}

TEST(Theorem41Test, SelfStabilizingProgramsAreCorrectors) {
    // The Arora-Gouda closure-and-convergence shape (Remark, Section 4.1):
    // every self-stabilizing system in the suite refines 'S corrects S'
    // from true.
    {
        auto ring = apps::make_token_ring(3, 3);
        const CorrectorClaim claim{ring.legitimate, ring.legitimate,
                                   Predicate::top()};
        EXPECT_TRUE(check_corrector(ring.ring, claim).ok);
    }
    {
        auto tree = apps::make_spanning_tree(apps::path_graph(3));
        const CorrectorClaim claim{tree.legitimate, tree.legitimate,
                                   Predicate::top()};
        EXPECT_TRUE(check_corrector(tree.program, claim).ok);
    }
}

TEST(Theorem43Test, TokenRingInstance) {
    // Theorem 4.3 with p' = p = the ring, R = legitimate, F = corruption:
    // the ring is a nonmasking F-tolerant corrector of its own invariant.
    auto sys = apps::make_token_ring(4, 4);
    const ToleranceReport nm = check_nonmasking(
        sys.ring, sys.corrupt_any, sys.spec, sys.legitimate);
    ASSERT_TRUE(nm.ok()) << nm.reason();
    const CorrectorClaim claim{sys.legitimate, sys.legitimate,
                               sys.legitimate};
    EXPECT_TRUE(check_tolerant_corrector(sys.ring, sys.corrupt_any, claim,
                                         Tolerance::Nonmasking,
                                         nm.fault_span)
                    .ok);
}

TEST(Lemma42Test, RecoveryViaASubsetOfTheInvariant) {
    // Lemma 4.2's point: p' may behave like p only from R, a subset of S.
    // pn behaves like p only once `present` holds again — from R = S,
    // strictly inside the span U1.
    auto sys = apps::make_memory_access();
    EXPECT_TRUE(implies_everywhere(*sys.space, sys.S, sys.U1));
    EXPECT_FALSE(implies_everywhere(*sys.space, sys.U1, sys.S));
    // From the larger U1, pn converges into R and from R refines SPEC.
    EXPECT_TRUE(converges(sys.nonmasking, nullptr, sys.U1, sys.S).ok);
    EXPECT_TRUE(refines_spec(sys.nonmasking, sys.spec, sys.S).ok);
}

TEST(CorrectorHierarchyTest, CorrectorsComposeInLayers) {
    // The hierarchical construction the paper alludes to (Section 7): a
    // second corrector whose context is the first one's correction
    // predicate. Verified on leader election in its own test file; here on
    // the memory example: pm's detector (pf1) is a corrector *client* —
    // its witness obligation holds from the corrector's output predicate.
    auto sys = apps::make_memory_access();
    const DetectorClaim claim{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_detector(sys.masking, claim).ok);
}

}  // namespace
}  // namespace dcft
