// Theorems 5.2, 5.3 and 5.5: masking tolerance decomposes into fail-safe
// (detectors) plus convergence (correctors), and masking tolerant programs
// contain both kinds of components.
#include <gtest/gtest.h>

#include "apps/byzantine.hpp"
#include "apps/memory_access.hpp"
#include "apps/tmr.hpp"
#include "verify/component_checker.hpp"
#include "verify/encapsulation.hpp"
#include "verify/reachability.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

TEST(Theorem52Test, SafetyPlusConvergenceImpliesMasking) {
    // Theorem 5.2 on pm: (i) pm refines SPEC from S; (ii) pm [] F refines
    // SSPEC from T; (iii) pm [] F converges to S from T. Conclusion: pm
    // refines the masking tolerance specification from T.
    auto sys = apps::make_memory_access();
    const ToleranceReport mk =
        check_masking(sys.masking, sys.page_fault, sys.spec, sys.S);

    ASSERT_TRUE(refines_spec(sys.masking, sys.spec, sys.S).ok);
    ASSERT_TRUE(refines_spec(sys.masking, sys.spec.failsafe_weakening(),
                             mk.fault_span, RefinesOptions{&sys.page_fault})
                    .ok);
    ASSERT_TRUE(
        converges(sys.masking, &sys.page_fault, mk.fault_span, sys.S).ok);

    EXPECT_TRUE(mk.ok()) << mk.reason();
}

TEST(Theorem52Test, HoldsAcrossTheExampleSuite) {
    // fail-safe && nonmasking => masking, and masking => both, checked on
    // every (program, fault) pair in the example suite whose checks have
    // the invariant-convergent shape.
    struct Case {
        std::string name;
        bool failsafe, nonmasking, masking;
    };
    std::vector<Case> cases;

    auto mem = apps::make_memory_access();
    for (const Program* p : {&mem.intolerant, &mem.failsafe, &mem.nonmasking,
                             &mem.masking}) {
        cases.push_back(Case{
            p->name(),
            check_failsafe(*p, mem.page_fault, mem.spec, mem.S).ok(),
            check_nonmasking(*p, mem.page_fault, mem.spec, mem.S).ok(),
            check_masking(*p, mem.page_fault, mem.spec, mem.S).ok()});
    }
    auto tmr = apps::make_tmr(2);
    for (const Program* p : {&tmr.intolerant, &tmr.failsafe}) {
        cases.push_back(Case{
            p->name(),
            check_failsafe(*p, tmr.corrupt_one_input, tmr.spec,
                           tmr.invariant)
                .ok(),
            check_nonmasking(*p, tmr.corrupt_one_input, tmr.spec,
                             tmr.invariant)
                .ok(),
            check_masking(*p, tmr.corrupt_one_input, tmr.spec,
                          tmr.invariant)
                .ok()});
    }

    bool some_masking = false;
    for (const Case& c : cases) {
        if (c.failsafe && c.nonmasking) {
            EXPECT_TRUE(c.masking) << c.name << ": Theorem 5.2 direction";
        }
        if (c.masking) {
            some_masking = true;
            EXPECT_TRUE(c.failsafe) << c.name;
            EXPECT_TRUE(c.nonmasking) << c.name;
        }
    }
    EXPECT_TRUE(some_masking);  // the suite exercises the masking row
}

TEST(Theorem55Test, MemoryAccessConclusions) {
    // The full conclusion set of Theorem 5.5 for pm (Section 5.1): masking
    // tolerance, a masking F-tolerant detector, a masking tolerant (and
    // nonmasking F-tolerant) corrector.
    auto sys = apps::make_memory_access();

    const ToleranceReport mk =
        check_masking(sys.masking, sys.page_fault, sys.spec, sys.S);
    EXPECT_TRUE(mk.ok()) << mk.reason();

    const DetectorClaim detector{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_tolerant_detector(sys.masking, sys.page_fault,
                                        detector, Tolerance::Masking,
                                        sys.U1)
                    .ok);

    const CorrectorClaim corrector{sys.X1, sys.X1, sys.U1};
    // Masking tolerant (program steps alone satisfy the corrector spec
    // from the span)...
    EXPECT_TRUE(check_corrector(sys.masking, corrector).ok);
    // ...and nonmasking F-tolerant, but NOT masking F-tolerant: the fault
    // step itself violates the corrector's Convergence closure.
    EXPECT_TRUE(check_tolerant_corrector(sys.masking, sys.page_fault,
                                         corrector, Tolerance::Nonmasking,
                                         sys.U1)
                    .ok);
    EXPECT_FALSE(check_tolerant_corrector(sys.masking, sys.page_fault,
                                          corrector, Tolerance::Masking,
                                          sys.U1)
                     .ok);
}

TEST(Theorem53Test, EncapsulationChainForMasking) {
    // Theorem 5.3's hypothesis chain for pm over pn: pm encapsulates pn,
    // refines it, converges, and satisfies the safety specification — so
    // it contains both component kinds.
    auto sys = apps::make_memory_access();
    ASSERT_TRUE(check_encapsulates(sys.masking, sys.nonmasking).ok);
    ASSERT_TRUE(refines_program(sys.masking, sys.nonmasking, sys.S).ok);
    ASSERT_TRUE(converges(sys.masking, nullptr, sys.U1, sys.S).ok);
    ASSERT_TRUE(
        refines_spec(sys.masking, sys.spec.failsafe_weakening(), sys.U1).ok);

    const DetectorClaim detector{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_detector(sys.masking, detector).ok);
    const CorrectorClaim corrector{sys.X1, sys.X1, sys.U1};
    EXPECT_TRUE(check_corrector(sys.masking, corrector).ok);
}

TEST(Theorem55Test, ByzantineAgreementConclusions) {
    // Section 6.2's headline: the DB+CB construction is masking Byzantine
    // tolerant, and each DB.j is a masking F-tolerant detector of its
    // detection predicate d.j = corrdecn.
    auto sys = apps::make_byzantine(4, 1);
    const Predicate init(
        "init", [&sys](const StateSpace& sp, StateIndex s) {
            if (sp.get(s, sys.b_g) != 0) return false;
            for (std::size_t i = 0; i < sys.d.size(); ++i) {
                if (sp.get(s, sys.b[i]) != 0) return false;
                if (sp.get(s, sys.d[i]) != 2) return false;
                if (sp.get(s, sys.out[i]) != 2) return false;
            }
            return true;
        });
    auto reach = std::make_shared<StateSet>(
        reachable_states(sys.masking, nullptr, init));
    const Predicate inv = predicate_of(std::move(reach), "inv");

    const ToleranceReport mk =
        check_masking(sys.masking, sys.byzantine_fault, sys.spec, inv);
    EXPECT_TRUE(mk.ok()) << mk.reason();
}

}  // namespace
}  // namespace dcft
