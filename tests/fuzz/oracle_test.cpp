// Oracle-matrix tests: generated specs must come back clean across every
// oracle pair, the graph-difference finders must be sound (no false
// positives on identical explorations) and sensitive (real differences
// are reported), and run_oracles must be deterministic in (spec, options).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/oracle.hpp"
#include "fuzz/spec.hpp"
#include "verify/reference.hpp"
#include "verify/transition_system.hpp"

namespace dcft::fuzz {
namespace {

std::string joined(const std::vector<Divergence>& ds) {
    std::string s;
    for (const Divergence& d : ds) s += d.oracle + ": " + d.detail + "\n";
    return s;
}

/// One mod-3 counter: `inc` cycles x through 0 -> 1 -> 2 -> 0; init x==0.
ProgramSpec counter_spec() {
    ProgramSpec spec;
    spec.name = "counter";
    spec.vars.push_back({"x", 3});
    ActionDecl inc;
    inc.name = "inc";
    inc.effect.kind = EffectNode::Kind::kAssignAddMod;
    inc.effect.var = 0;
    inc.effect.var2 = 0;
    inc.effect.value = 1;
    inc.effect.modulus = 3;
    spec.actions.push_back(inc);
    spec.init.kind = PredNode::Kind::kVarEqConst;
    spec.init.var = 0;
    spec.init.value = 0;
    spec.bad.kind = PredNode::Kind::kFalse;
    return spec;
}

/// Counter plus a bounded channel, a channel-loss fault, and a corruption
/// fault — exercises the channel build path and the graded queries.
ProgramSpec channel_spec() {
    ProgramSpec spec = counter_spec();
    spec.name = "channel";
    spec.grade = 2;
    spec.channels.push_back({"ch", 1, 2});

    ActionDecl send;
    send.name = "send";
    send.guard.kind = PredNode::Kind::kVarEqConst;
    send.guard.var = 0;
    send.guard.value = 0;
    send.effect.kind = EffectNode::Kind::kChanSendConst;
    send.effect.chan = 0;
    send.effect.value = 1;
    spec.actions.push_back(send);

    ActionDecl recv;
    recv.name = "recv";
    recv.effect.kind = EffectNode::Kind::kChanRecvToVar;
    recv.effect.chan = 0;
    recv.effect.var = 0;
    spec.actions.push_back(recv);

    ActionDecl lose;
    lose.name = "lose";
    lose.effect.kind = EffectNode::Kind::kChanLose;
    lose.effect.chan = 0;
    spec.fault_actions.push_back(lose);

    ActionDecl flip;
    flip.name = "flip";
    flip.effect.kind = EffectNode::Kind::kCorruptAny;
    flip.effect.vars = {0};
    spec.fault_actions.push_back(flip);
    return spec;
}

TEST(FuzzOracleTest, GeneratedSpecsAreCleanAcrossTheMatrix) {
    GeneratorConfig config;
    config.max_states = 512;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const ProgramSpec spec = generate_spec(seed, config);
        const std::vector<Divergence> ds = run_oracles(spec);
        EXPECT_TRUE(ds.empty())
            << "seed " << seed << " (" << describe(spec) << ")\n" << joined(ds);
    }
}

TEST(FuzzOracleTest, CleanOnHandBuiltFaultFreeSpec) {
    const ProgramSpec spec = counter_spec();
    ASSERT_TRUE(validate(spec));
    const std::vector<Divergence> ds = run_oracles(spec);
    EXPECT_TRUE(ds.empty()) << joined(ds);
}

TEST(FuzzOracleTest, CleanOnHandBuiltChannelSpecWithFaults) {
    const ProgramSpec spec = channel_spec();
    ASSERT_TRUE(validate(spec));
    const std::vector<Divergence> ds = run_oracles(spec);
    EXPECT_TRUE(ds.empty()) << joined(ds);
}

TEST(FuzzOracleTest, FirstGraphDifferenceAcceptsIdenticalExplorations) {
    const BuiltSystem sys = build(counter_spec());
    const reference::RefTransitionSystem ref(sys.program, sys.faults_ptr(),
                                             sys.init);
    const TransitionSystem ts(sys.program, sys.faults_ptr(), sys.init, 1);
    EXPECT_FALSE(first_graph_difference(ref, ts).has_value());
}

TEST(FuzzOracleTest, FirstTsDifferenceAcceptsAllThreadCounts) {
    const BuiltSystem sys = build(channel_spec());
    const TransitionSystem a(sys.program, sys.faults_ptr(), sys.init, 1);
    for (unsigned threads : {2u, 4u, 8u}) {
        const TransitionSystem b(sys.program, sys.faults_ptr(), sys.init,
                                 threads);
        EXPECT_FALSE(first_ts_difference(a, b).has_value())
            << threads << " threads";
    }
}

TEST(FuzzOracleTest, DifferenceFindersReportRealDivergence) {
    // Same init, different dynamics: the counter reaches all three states,
    // the `reset` variant (x := 0) never leaves state 0.
    ProgramSpec reset = counter_spec();
    reset.actions[0].effect = EffectNode{};
    reset.actions[0].effect.kind = EffectNode::Kind::kAssignConst;
    reset.actions[0].effect.var = 0;
    reset.actions[0].effect.value = 0;
    ASSERT_TRUE(validate(reset));

    const BuiltSystem a = build(counter_spec());
    const BuiltSystem b = build(reset);
    const TransitionSystem ts_a(a.program, a.faults_ptr(), a.init, 1);
    const TransitionSystem ts_b(b.program, b.faults_ptr(), b.init, 1);
    EXPECT_TRUE(first_ts_difference(ts_a, ts_b).has_value());

    const reference::RefTransitionSystem ref_a(a.program, a.faults_ptr(),
                                               a.init);
    EXPECT_TRUE(first_graph_difference(ref_a, ts_b).has_value());
}

TEST(FuzzOracleTest, RunOraclesIsDeterministic) {
    const ProgramSpec spec = generate_spec(7, GeneratorConfig{});
    const std::vector<Divergence> a = run_oracles(spec);
    const std::vector<Divergence> b = run_oracles(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].oracle, b[i].oracle);
        EXPECT_EQ(a[i].detail, b[i].detail);
    }
}

TEST(FuzzOracleTest, SimulationOraclesCanBeDisabled) {
    GeneratorConfig config;
    config.max_states = 256;
    OracleOptions options;
    options.include_sim = false;
    for (std::uint64_t seed = 20; seed < 30; ++seed) {
        const ProgramSpec spec = generate_spec(seed, config);
        const std::vector<Divergence> ds = run_oracles(spec, options);
        EXPECT_TRUE(ds.empty())
            << "seed " << seed << "\n" << joined(ds);
    }
}

}  // namespace
}  // namespace dcft::fuzz
