// Generator and corpus-format tests: seed determinism, state-space
// budgets, buildability of everything the generator emits, and the
// byte-identical JSON round trip the corpus depends on.
#include <gtest/gtest.h>

#include <set>

#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/spec_json.hpp"

namespace dcft::fuzz {
namespace {

TEST(FuzzGeneratorTest, SameSeedYieldsIdenticalSpecs) {
    const GeneratorConfig config;
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 991ULL, 123456789ULL}) {
        const ProgramSpec a = generate_spec(seed, config);
        const ProgramSpec b = generate_spec(seed, config);
        EXPECT_EQ(a, b) << "seed " << seed;
        EXPECT_EQ(to_json(a), to_json(b)) << "seed " << seed;
    }
}

TEST(FuzzGeneratorTest, DifferentSeedsExploreDifferentSpecs) {
    const GeneratorConfig config;
    std::set<std::string> distinct;
    for (std::uint64_t seed = 0; seed < 40; ++seed)
        distinct.insert(to_json(generate_spec(seed, config)));
    // Not all 40 need be unique, but a generator collapsing to a handful
    // of shapes would be useless as a fuzzer.
    EXPECT_GT(distinct.size(), 30u);
}

TEST(FuzzGeneratorTest, RespectsStateBudget) {
    GeneratorConfig config;
    config.max_states = 64;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        const ProgramSpec spec = generate_spec(seed, config);
        EXPECT_LE(num_states(spec), 64u) << "seed " << seed;
    }
}

TEST(FuzzGeneratorTest, EverythingGeneratedValidatesAndBuilds) {
    const GeneratorConfig config;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const ProgramSpec spec = generate_spec(seed, config);
        std::string error;
        ASSERT_TRUE(validate(spec, &error))
            << "seed " << seed << ": " << error;
        const BuiltSystem sys = build(spec);
        EXPECT_EQ(sys.space->num_states(), num_states(spec));
        EXPECT_EQ(sys.program.num_actions(), spec.actions.size());
        EXPECT_EQ(sys.faults.actions().size(), spec.fault_actions.size());
    }
}

TEST(FuzzGeneratorTest, JsonRoundTripIsByteIdentical) {
    const GeneratorConfig config;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const ProgramSpec spec = generate_spec(seed, config);
        const std::string text = to_json(spec);
        std::string error;
        const std::optional<ProgramSpec> parsed = from_json(text, &error);
        ASSERT_TRUE(parsed.has_value()) << "seed " << seed << ": " << error;
        EXPECT_EQ(*parsed, spec) << "seed " << seed;
        EXPECT_EQ(to_json(*parsed), text) << "seed " << seed;
    }
}

TEST(FuzzGeneratorTest, FromJsonRejectsGarbage) {
    std::string error;
    EXPECT_FALSE(from_json("not json", &error).has_value());
    EXPECT_FALSE(from_json("{}", &error).has_value());
    EXPECT_FALSE(
        from_json(R"({"schema":"something.else","schema_version":1})", &error)
            .has_value());
}

TEST(FuzzGeneratorTest, ValidateCatchesStructuralBreakage) {
    ProgramSpec spec = generate_spec(3, GeneratorConfig{});
    ASSERT_TRUE(validate(spec));

    ProgramSpec broken = spec;
    broken.vars.clear();
    EXPECT_FALSE(validate(broken));

    broken = spec;
    broken.init.kind = PredNode::Kind::kVarEqConst;
    broken.init.var = 99;
    EXPECT_FALSE(validate(broken));

    broken = spec;
    ActionDecl bad_action;
    bad_action.name = "dup";
    broken.actions.push_back(bad_action);
    broken.actions.push_back(bad_action);
    EXPECT_FALSE(validate(broken));

    broken = spec;
    bad_action.name = "oob";
    bad_action.effect.kind = EffectNode::Kind::kAssignConst;
    bad_action.effect.var = 0;
    bad_action.effect.value = broken.vars[0].domain;  // out of domain
    broken.actions.push_back(bad_action);
    EXPECT_FALSE(validate(broken));
}

TEST(FuzzGeneratorTest, CampaignSeedsAreStableAndSpread) {
    EXPECT_EQ(campaign_program_seed(1, 0), campaign_program_seed(1, 0));
    std::set<std::uint64_t> seeds;
    for (std::size_t i = 0; i < 1000; ++i)
        seeds.insert(campaign_program_seed(1, i));
    EXPECT_EQ(seeds.size(), 1000u);  // no collisions in a small range
}

}  // namespace
}  // namespace dcft::fuzz
