// Shrinker tests: the delta-debugging loop must be deterministic, only
// offer valid candidates to the divergence predicate, leave non-diverging
// specs untouched, and actually minimize — synthetic "divergence"
// properties must shrink to small fixpoint specs.
#include <gtest/gtest.h>

#include <vector>

#include "fuzz/generator.hpp"
#include "fuzz/shrinker.hpp"
#include "fuzz/spec_json.hpp"

namespace dcft::fuzz {
namespace {

/// First generated seed whose spec satisfies `property` (for building
/// shrink inputs without hand-writing large specs).
template <typename Property>
ProgramSpec first_spec_with(const Property& property,
                            const GeneratorConfig& config = {}) {
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        ProgramSpec spec = generate_spec(seed, config);
        if (property(spec)) return spec;
    }
    ADD_FAILURE() << "no generated spec satisfies the property";
    return ProgramSpec{};
}

TEST(FuzzShrinkerTest, NonDivergingSpecIsReturnedUnchanged) {
    const ProgramSpec spec = generate_spec(11, GeneratorConfig{});
    const ProgramSpec result =
        shrink(spec, [](const ProgramSpec&) { return false; });
    EXPECT_EQ(result, spec);
    EXPECT_EQ(to_json(result), to_json(spec));
}

TEST(FuzzShrinkerTest, CandidatesAreProducedAndStructurallyDifferent) {
    const ProgramSpec spec = first_spec_with([](const ProgramSpec& s) {
        return !s.fault_actions.empty() && s.actions.size() > 1;
    });
    const std::vector<ProgramSpec> candidates = shrink_candidates(spec);
    ASSERT_FALSE(candidates.empty());
    for (const ProgramSpec& c : candidates) EXPECT_NE(c, spec);
}

TEST(FuzzShrinkerTest, OnlyValidCandidatesReachThePredicate) {
    const ProgramSpec spec = generate_spec(23, GeneratorConfig{});
    std::size_t seen = 0;
    shrink(spec, [&](const ProgramSpec& candidate) {
        ++seen;
        std::string error;
        EXPECT_TRUE(validate(candidate, &error)) << error;
        return false;  // reject everything: probe the full candidate list
    });
    EXPECT_GT(seen, 0u);
}

TEST(FuzzShrinkerTest, MinimizesFaultPropertyToAFixpoint) {
    const auto has_fault = [](const ProgramSpec& s) {
        return !s.fault_actions.empty();
    };
    const ProgramSpec spec = first_spec_with([&](const ProgramSpec& s) {
        return has_fault(s) && s.actions.size() > 2;
    });
    const ProgramSpec result = shrink(spec, has_fault);

    EXPECT_TRUE(validate(result));
    EXPECT_TRUE(has_fault(result));
    // Everything the property does not pin must have been stripped.
    EXPECT_EQ(result.fault_actions.size(), 1u);
    EXPECT_TRUE(result.actions.empty());
    EXPECT_FALSE(result.has_leads);
    EXPECT_EQ(result.grade, 0);
    for (const VarDecl& v : result.vars) EXPECT_EQ(v.domain, 2);
    EXPECT_EQ(result.init.kind, PredNode::Kind::kTrue);
    EXPECT_EQ(result.invariant.kind, PredNode::Kind::kTrue);
    EXPECT_EQ(result.bad.kind, PredNode::Kind::kTrue);
    EXPECT_EQ(result.fault_actions[0].guard.kind, PredNode::Kind::kTrue);
    EXPECT_LE(num_states(result), num_states(spec));
}

TEST(FuzzShrinkerTest, StateCountPropertyShrinksToAFixpoint) {
    const auto big = [](const ProgramSpec& s) { return num_states(s) >= 8; };
    const ProgramSpec spec = first_spec_with([&](const ProgramSpec& s) {
        return num_states(s) >= 64;
    });
    const ProgramSpec result = shrink(spec, big);

    EXPECT_TRUE(validate(result));
    EXPECT_TRUE(big(result));
    EXPECT_LT(num_states(result), num_states(spec));
    // Fixpoint: no remaining candidate is both valid and still "diverges".
    for (const ProgramSpec& c : shrink_candidates(result))
        EXPECT_FALSE(validate(c) && big(c) && c != result);
}

TEST(FuzzShrinkerTest, ShrinkIsDeterministic) {
    const auto has_fault = [](const ProgramSpec& s) {
        return !s.fault_actions.empty();
    };
    const ProgramSpec spec = first_spec_with(has_fault);
    const ProgramSpec a = shrink(spec, has_fault);
    const ProgramSpec b = shrink(spec, has_fault);
    EXPECT_EQ(a, b);
    EXPECT_EQ(to_json(a), to_json(b));
}

TEST(FuzzShrinkerTest, MaxAcceptsBoundsTheGreedyLoop) {
    const ProgramSpec spec = generate_spec(31, GeneratorConfig{});
    const ProgramSpec one_step =
        shrink(spec, [](const ProgramSpec&) { return true; }, 1);

    // Greedy-first-accept: with every candidate "diverging", one accepted
    // reduction is exactly the first valid candidate.
    for (const ProgramSpec& c : shrink_candidates(spec)) {
        if (!validate(c)) continue;
        EXPECT_EQ(one_step, c);
        return;
    }
    // No valid candidate at all: the spec must come back unchanged.
    EXPECT_EQ(one_step, spec);
}

}  // namespace
}  // namespace dcft::fuzz
