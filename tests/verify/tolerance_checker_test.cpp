// The three tolerance grades on a minimal counter system, including the
// grade hierarchy (masking implies the other two) and Theorem 5.2's
// composition direction.
#include "verify/tolerance_checker.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 5, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

/// p: v < 3 --> v := v+1. Goal state: 3. Forbidden state: 4.
Program goal_program(std::shared_ptr<const StateSpace> sp) {
    Program p(sp, "climb");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<3",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 3;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

ProblemSpec goal_spec(const StateSpace& sp) {
    LivenessSpec live;
    live.add_eventually(at(sp, 3));
    return ProblemSpec("reach3-avoid4", SafetySpec::never(at(sp, 4)),
                       std::move(live));
}

Predicate invariant(const StateSpace&) {
    return Predicate("v<=3", [](const StateSpace&, StateIndex s) {
        return s <= 3;
    });
}

TEST(ToleranceTest, BenignFaultGivesMasking) {
    auto sp = counter_space();
    const Program p = goal_program(sp);
    FaultClass f(sp, "setback");
    f.add_action(Action::assign_const(*sp, "setback", at(*sp, 1), "v", 0));

    const ToleranceReport fs = check_failsafe(p, f, goal_spec(*sp),
                                              invariant(*sp));
    EXPECT_TRUE(fs.ok()) << fs.reason();
    const ToleranceReport nm = check_nonmasking(p, f, goal_spec(*sp),
                                                invariant(*sp));
    EXPECT_TRUE(nm.ok()) << nm.reason();
    const ToleranceReport mk = check_masking(p, f, goal_spec(*sp),
                                             invariant(*sp));
    EXPECT_TRUE(mk.ok()) << mk.reason();
    EXPECT_EQ(mk.invariant_size, 4u);
    EXPECT_EQ(mk.span_size, 4u);  // the setback stays within v <= 3
}

TEST(ToleranceTest, FaultUndoingTheGoalStillMasking) {
    // Assumption 2 (finitely many faults) is what makes this masking: the
    // fault knocks the program off its goal, but after faults stop the
    // goal is re-reached, and safety never breaks meanwhile.
    auto sp = counter_space();
    const Program p = goal_program(sp);
    FaultClass f(sp, "knockback");
    f.add_action(Action::assign_const(*sp, "knock", at(*sp, 3), "v", 0));
    const ToleranceReport mk = check_masking(p, f, goal_spec(*sp),
                                             invariant(*sp));
    EXPECT_TRUE(mk.ok()) << mk.reason();
}

TEST(ToleranceTest, FaultIntoForbiddenStateBreaksEverything) {
    auto sp = counter_space();
    const Program p = goal_program(sp);
    FaultClass f(sp, "overshoot");
    f.add_action(Action::assign_const(*sp, "jump4", at(*sp, 0), "v", 4));

    EXPECT_FALSE(check_failsafe(p, f, goal_spec(*sp), invariant(*sp)).ok());
    // v == 4 is also a deadlock outside the invariant: nonmasking fails.
    EXPECT_FALSE(
        check_nonmasking(p, f, goal_spec(*sp), invariant(*sp)).ok());
    EXPECT_FALSE(check_masking(p, f, goal_spec(*sp), invariant(*sp)).ok());
    // The span grew to include the forbidden state.
    const ToleranceReport r = check_masking(p, f, goal_spec(*sp),
                                            invariant(*sp));
    EXPECT_EQ(r.span_size, 5u);
}

TEST(ToleranceTest, FailsafeWithoutNonmasking) {
    // A fault that strands the program in a safe dead end: safety is kept
    // (fail-safe holds) but recovery never happens (nonmasking fails).
    auto sp = counter_space();
    Program p(sp, "climb-from-0");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<3&&v>=1",
                  [](const StateSpace& space, StateIndex s) {
                      const Value v = space.get(s, 0);
                      return v >= 1 && v < 3;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    FaultClass f(sp, "stall");
    f.add_action(Action::assign_const(*sp, "stall", at(*sp, 1), "v", 0));
    // Invariant: 1 <= v <= 3 (program alone climbs 1 -> 3).
    const Predicate inv("1<=v<=3", [](const StateSpace&, StateIndex s) {
        return s >= 1 && s <= 3;
    });
    EXPECT_TRUE(check_failsafe(p, f, goal_spec(*sp), inv).ok());
    EXPECT_FALSE(check_nonmasking(p, f, goal_spec(*sp), inv).ok());
    EXPECT_FALSE(check_masking(p, f, goal_spec(*sp), inv).ok());
}

TEST(ToleranceTest, NonmaskingWithoutFailsafe) {
    // The fault detours through the forbidden state but the program
    // recovers: nonmasking holds, fail-safe does not.
    auto sp = counter_space();
    Program p = goal_program(sp);
    p.add_action(Action::assign_const(*sp, "repair", at(*sp, 4), "v", 2));
    FaultClass f(sp, "corrupt");
    f.add_action(Action::assign_const(*sp, "jump4", at(*sp, 0), "v", 4));
    EXPECT_FALSE(check_failsafe(p, f, goal_spec(*sp), invariant(*sp)).ok());
    EXPECT_TRUE(
        check_nonmasking(p, f, goal_spec(*sp), invariant(*sp)).ok());
    EXPECT_FALSE(check_masking(p, f, goal_spec(*sp), invariant(*sp)).ok());
}

TEST(ToleranceTest, Theorem52CompositionOnThisFamily) {
    // Theorem 5.2: safety from the span + convergence to the invariant +
    // SPEC from the invariant imply masking. Spot-check the implication
    // "fail-safe && nonmasking => masking" across this test family's
    // fault classes.
    auto sp = counter_space();
    const Program p = goal_program(sp);
    const ProblemSpec spec = goal_spec(*sp);
    const Predicate inv = invariant(*sp);

    const std::vector<std::pair<std::string, Action>> faults{
        {"setback", Action::assign_const(*sp, "f1", at(*sp, 1), "v", 0)},
        {"knock", Action::assign_const(*sp, "f2", at(*sp, 3), "v", 0)},
        {"jump4", Action::assign_const(*sp, "f3", at(*sp, 0), "v", 4)},
        {"jitter", Action::assign_const(*sp, "f4", at(*sp, 2), "v", 1)},
    };
    for (const auto& [name, action] : faults) {
        FaultClass f(sp, name);
        f.add_action(action);
        const bool fs = check_failsafe(p, f, spec, inv).ok();
        const bool nm = check_nonmasking(p, f, spec, inv).ok();
        const bool mk = check_masking(p, f, spec, inv).ok();
        if (fs && nm) {
            EXPECT_TRUE(mk) << "Theorem 5.2 violated for " << name;
        }
        // Masking is the strictest grade.
        if (mk) {
            EXPECT_TRUE(fs) << name;
            EXPECT_TRUE(nm) << name;
        }
    }
}

TEST(ToleranceTest, IntolerantBaseFailsInAbsenceCheck) {
    auto sp = counter_space();
    Program p(sp, "bad");
    p.add_action(Action::assign_const(*sp, "leap", at(*sp, 0), "v", 4));
    FaultClass f(sp, "F");
    const ToleranceReport r =
        check_masking(p, f, goal_spec(*sp), Predicate::top());
    EXPECT_FALSE(r.in_absence.ok);
}

}  // namespace
}  // namespace dcft
