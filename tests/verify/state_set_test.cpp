#include "verify/state_set.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

TEST(StateSetTest, InsertAndContains) {
    StateSet set(100);
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(5));
    EXPECT_TRUE(set.insert(5));
    EXPECT_TRUE(set.contains(5));
    EXPECT_FALSE(set.insert(5));  // duplicate
    EXPECT_EQ(set.count(), 1u);
}

TEST(StateSetTest, WordBoundaries) {
    StateSet set(130);
    for (StateIndex s : {0u, 63u, 64u, 127u, 128u, 129u}) set.insert(s);
    EXPECT_EQ(set.count(), 6u);
    EXPECT_TRUE(set.contains(63));
    EXPECT_TRUE(set.contains(64));
    EXPECT_FALSE(set.contains(65));
    EXPECT_TRUE(set.contains(129));
}

TEST(StateSetTest, OutOfRangeThrows) {
    StateSet set(10);
    EXPECT_THROW(set.insert(10), ContractError);
    EXPECT_THROW((void)set.contains(10), ContractError);
}

TEST(StateSetTest, ForEachVisitsExactlyMembers) {
    StateSet set(200);
    const std::vector<StateIndex> members{1, 64, 65, 199};
    for (StateIndex s : members) set.insert(s);
    std::vector<StateIndex> visited;
    set.for_each([&](StateIndex s) { visited.push_back(s); });
    EXPECT_EQ(visited, members);
}

TEST(StateSetTest, MaterializeMatchesPredicate) {
    auto sp = make_space({Variable{"v", 10, {}}});
    const Predicate even("even", [](const StateSpace&, StateIndex s) {
        return s % 2 == 0;
    });
    const StateSet set = materialize(*sp, even);
    EXPECT_EQ(set.count(), 5u);
    for (StateIndex s = 0; s < 10; ++s)
        EXPECT_EQ(set.contains(s), s % 2 == 0);
}

TEST(StateSetTest, PredicateOfRoundTrips) {
    auto sp = make_space({Variable{"v", 8, {}}});
    auto set = std::make_shared<StateSet>(8);
    set->insert(3);
    set->insert(7);
    const Predicate p = predicate_of(set, "the-set");
    EXPECT_EQ(p.name(), "the-set");
    for (StateIndex s = 0; s < 8; ++s)
        EXPECT_EQ(p.eval(*sp, s), set->contains(s));
}

TEST(StateSetTest, PredicateOfNullThrows) {
    EXPECT_THROW(predicate_of(nullptr, "x"), ContractError);
}

}  // namespace
}  // namespace dcft
