#include "verify/state_set.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

TEST(StateSetTest, InsertAndContains) {
    StateSet set(100);
    EXPECT_TRUE(set.empty());
    EXPECT_FALSE(set.contains(5));
    EXPECT_TRUE(set.insert(5));
    EXPECT_TRUE(set.contains(5));
    EXPECT_FALSE(set.insert(5));  // duplicate
    EXPECT_EQ(set.count(), 1u);
}

TEST(StateSetTest, WordBoundaries) {
    StateSet set(130);
    for (StateIndex s : {0u, 63u, 64u, 127u, 128u, 129u}) set.insert(s);
    EXPECT_EQ(set.count(), 6u);
    EXPECT_TRUE(set.contains(63));
    EXPECT_TRUE(set.contains(64));
    EXPECT_FALSE(set.contains(65));
    EXPECT_TRUE(set.contains(129));
}

TEST(StateSetTest, OutOfRangeThrows) {
    StateSet set(10);
    EXPECT_THROW(set.insert(10), ContractError);
    EXPECT_THROW((void)set.contains(10), ContractError);
}

TEST(StateSetTest, ForEachVisitsExactlyMembers) {
    StateSet set(200);
    const std::vector<StateIndex> members{1, 64, 65, 199};
    for (StateIndex s : members) set.insert(s);
    std::vector<StateIndex> visited;
    set.for_each([&](StateIndex s) { visited.push_back(s); });
    EXPECT_EQ(visited, members);
}

TEST(StateSetTest, MaterializeMatchesPredicate) {
    auto sp = make_space({Variable{"v", 10, {}}});
    const Predicate even("even", [](const StateSpace&, StateIndex s) {
        return s % 2 == 0;
    });
    const StateSet set = materialize(*sp, even);
    EXPECT_EQ(set.count(), 5u);
    for (StateIndex s = 0; s < 10; ++s)
        EXPECT_EQ(set.contains(s), s % 2 == 0);
}

TEST(StateSetTest, PredicateOfRoundTrips) {
    auto sp = make_space({Variable{"v", 8, {}}});
    auto set = std::make_shared<StateSet>(8);
    set->insert(3);
    set->insert(7);
    const Predicate p = predicate_of(set, "the-set");
    EXPECT_EQ(p.name(), "the-set");
    for (StateIndex s = 0; s < 8; ++s)
        EXPECT_EQ(p.eval(*sp, s), set->contains(s));
}

TEST(StateSetTest, PredicateOfNullThrows) {
    EXPECT_THROW(predicate_of(nullptr, "x"), ContractError);
}

// -- word-level set algebra ------------------------------------------------

/// Builds a set over a (possibly non-word-multiple) universe.
StateSet set_of(StateIndex universe, std::initializer_list<StateIndex> xs) {
    StateSet s(universe);
    for (StateIndex x : xs) s.insert(x);
    return s;
}

TEST(StateSetAlgebraTest, IntersectUnionSubtractOnOddUniverse) {
    // 130 bits: two full words plus a 2-bit tail.
    StateSet a = set_of(130, {0, 63, 64, 100, 128, 129});
    const StateSet b = set_of(130, {63, 64, 99, 129});

    StateSet u = a;
    u |= b;
    EXPECT_EQ(u.count(), 7u);
    EXPECT_TRUE(u.contains(99));
    EXPECT_TRUE(u.contains(100));

    StateSet i = a;
    i &= b;
    EXPECT_EQ(i.count(), 3u);
    EXPECT_TRUE(i.contains(63));
    EXPECT_TRUE(i.contains(64));
    EXPECT_TRUE(i.contains(129));
    EXPECT_FALSE(i.contains(0));

    StateSet d = a;
    d.subtract(b);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_TRUE(d.contains(0));
    EXPECT_TRUE(d.contains(100));
    EXPECT_TRUE(d.contains(128));

    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(set_of(130, {1}).intersects(set_of(130, {2})));
    EXPECT_TRUE(i.is_subset_of(a));
    EXPECT_TRUE(i.is_subset_of(b));
    EXPECT_FALSE(a.is_subset_of(b));
}

TEST(StateSetAlgebraTest, ComplementKeepsPaddingBitsZero) {
    // 67 bits: the last word has 61 padding bits which must stay zero, or
    // count()/for_each would report ghost states past the universe.
    StateSet s = set_of(67, {0, 66});
    s.complement();
    EXPECT_EQ(s.count(), 65u);
    EXPECT_FALSE(s.contains(0));
    EXPECT_FALSE(s.contains(66));
    EXPECT_TRUE(s.contains(1));
    StateIndex max_seen = 0, visits = 0;
    s.for_each([&](StateIndex x) {
        max_seen = std::max(max_seen, x);
        ++visits;
    });
    EXPECT_EQ(visits, 65u);
    EXPECT_LT(max_seen, 67u);

    // Complementing twice round-trips exactly.
    s.complement();
    EXPECT_EQ(s, set_of(67, {0, 66}));
}

TEST(StateSetAlgebraTest, ComplementOfEmptyIsUniverse) {
    for (const StateIndex n : {1u, 63u, 64u, 65u, 128u, 130u}) {
        StateSet s(n);
        s.complement();
        EXPECT_EQ(s.count(), n) << "universe " << n;
        EXPECT_TRUE(s.bits().popcount() == n) << "universe " << n;
    }
}

TEST(BitVecTest, SetAllMasksPadding) {
    BitVec v(70);
    v.set_all();
    EXPECT_EQ(v.popcount(), 70u);
    v.complement();
    EXPECT_TRUE(v.none());
}

TEST(BitVecTest, SubsetAndEqualityIgnoreNothing) {
    BitVec a(100), b(100);
    a.set(3);
    a.set(64);
    b.set(3);
    b.set(64);
    b.set(99);
    EXPECT_TRUE(a.is_subset_of(b));
    EXPECT_FALSE(b.is_subset_of(a));
    EXPECT_FALSE(a == b);
    a.set(99);
    EXPECT_TRUE(a == b);
}

TEST(BitVecTest, TestAndSetReportsFirstInsertion) {
    BitVec v(65);
    EXPECT_TRUE(v.test_and_set(64));
    EXPECT_FALSE(v.test_and_set(64));
    EXPECT_EQ(v.popcount(), 1u);
}

TEST(BitVecTest, MixedUniverseSizesThrow) {
    BitVec a(64), b(65);
    EXPECT_THROW(a |= b, ContractError);
    EXPECT_THROW((void)a.is_subset_of(b), ContractError);
}

TEST(StateSetAlgebraTest, AdoptedBitsCountsViaPopcount) {
    BitVec bits(200);
    bits.set(0);
    bits.set(64);
    bits.set(199);
    const StateSet s{std::move(bits)};
    EXPECT_EQ(s.count(), 3u);
    EXPECT_TRUE(s.contains(199));
}

TEST(StateSetTest, MaterializeParallelMatchesSequential) {
    auto sp = make_space({Variable{"u", 9, {}}, Variable{"v", 11, {}},
                          Variable{"w", 7, {}}});
    const Predicate p("mix", [](const StateSpace& space, StateIndex s) {
        return (space.get(s, 0) + space.get(s, 1) * space.get(s, 2)) % 3 == 1;
    });
    const StateSet seq = materialize(*sp, p);
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
        const StateSet par = materialize_parallel(*sp, p, threads);
        EXPECT_EQ(par, seq) << "threads " << threads;
    }
}

}  // namespace
}  // namespace dcft
