// The weak-fairness liveness engine, exercised on hand-crafted graphs that
// pin down exactly which runs the paper's computation model admits.
#include "verify/fairness.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

// Deadlock in !target: a maximal finite computation never reaching the
// target violates true ~~> target.
TEST(FairnessTest, DeadlockAvoidingTargetFails) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::assign_const(*sp, "go", at(*sp, 0), "v", 1));
    // From 0: step to 1, then deadlock at 1. Target is 2: unreachable.
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    const CheckResult r = check_reaches(ts, at(*sp, 2), false);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("leads-to violated"), std::string::npos);
}

TEST(FairnessTest, DeadlockInsideTargetSucceeds) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::assign_const(*sp, "go", at(*sp, 0), "v", 2));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    EXPECT_TRUE(check_reaches(ts, at(*sp, 2), false).ok);
}

// A 2-cycle 0 <-> 1 via action A, with action B: (anywhere) -> 2.
// B is enabled at every state of the cycle and always exits it, so weak
// fairness forces the exit: true ~~> v==2 holds.
TEST(FairnessTest, ContinuouslyEnabledExitIsForced) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::assign(
        *sp, "toggle",
        Predicate("v<2",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 2;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return 1 - space.get(s, 0);
        }));
    p.add_action(Action::assign_const(
        *sp, "exit",
        Predicate("v<2",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 2;
                  }),
        "v", 2));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    EXPECT_TRUE(check_reaches(ts, at(*sp, 2), false).ok);
}

// Same cycle, but the exit action is enabled only at state 0. A fair run
// may alternate 0,1,0,1,... — the exit is not *continuously* enabled, so
// weak fairness does not force it: true ~~> v==2 fails.
TEST(FairnessTest, IntermittentlyEnabledExitIsNotForced) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::assign(
        *sp, "toggle",
        Predicate("v<2",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 2;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return 1 - space.get(s, 0);
        }));
    p.add_action(Action::assign_const(*sp, "exit", at(*sp, 0), "v", 2));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    EXPECT_FALSE(check_reaches(ts, at(*sp, 2), false).ok);
}

// A self-loop that never reaches the target.
TEST(FairnessTest, SelfLoopAvoidsTarget) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::skip("spin", at(*sp, 0)));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    EXPECT_FALSE(check_reaches(ts, at(*sp, 2), false).ok);
}

// Nondeterminism is demonic: if an enabled action *may* stay in the cycle,
// the adversary keeps choosing that branch.
TEST(FairnessTest, DemonicNondeterminismMayAvoid) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::nondet(
        "maybe-exit", at(*sp, 0),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(s);                     // stay
            out.push_back(space.set(s, 0, 2));    // or exit
        }));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    EXPECT_FALSE(check_reaches(ts, at(*sp, 2), false).ok);
}

// If every branch of the only enabled action exits, the exit happens.
TEST(FairnessTest, AllBranchesExitForcesExit) {
    auto sp = counter_space(4);
    Program p(sp, "p");
    p.add_action(Action::nondet(
        "must-exit", at(*sp, 0),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 2));
            out.push_back(space.set(s, 0, 3));
        }));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    const Predicate target =
        (at(*sp, 2) || at(*sp, 3)).renamed("2or3");
    EXPECT_TRUE(check_reaches(ts, target, false).ok);
}

// Leads-to with a nontrivial antecedent: P states that can only wander
// inside !Q forever must be flagged; P states that force Q must not.
TEST(FairnessTest, LeadsToOnlyConstrainsAntecedentStates) {
    auto sp = counter_space(4);
    Program p(sp, "p");
    // 0 -> 1 (then deadlock at 1); 2 -> 3 (then deadlock at 3).
    p.add_action(Action::assign_const(*sp, "a", at(*sp, 0), "v", 1));
    p.add_action(Action::assign_const(*sp, "b", at(*sp, 2), "v", 3));
    const Predicate init = (at(*sp, 0) || at(*sp, 2)).renamed("init");
    const TransitionSystem ts(p, nullptr, init);
    // v==0 ~~> v==1 holds; v==0 ~~> v==3 fails; v==2 ~~> v==3 holds.
    EXPECT_TRUE(check_leads_to(ts, at(*sp, 0), at(*sp, 1), false).ok);
    EXPECT_FALSE(check_leads_to(ts, at(*sp, 0), at(*sp, 3), false).ok);
    EXPECT_TRUE(check_leads_to(ts, at(*sp, 2), at(*sp, 3), false).ok);
    // Antecedent false everywhere: vacuously true.
    EXPECT_TRUE(check_leads_to(ts, Predicate::bottom(), at(*sp, 3), false).ok);
}

// Fault edges: only finitely many fault steps occur, and faults are not
// fair — but a violating run may use them to reach an avoidance region.
TEST(FairnessTest, FaultEdgeCanCarryRunIntoAvoidanceRegion) {
    auto sp = counter_space(4);
    Program p(sp, "p");
    // Program: 0 -> 2 (target). From 1: deadlock (avoids target).
    p.add_action(Action::assign_const(*sp, "good", at(*sp, 0), "v", 2));
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "trip", at(*sp, 0), "v", 1));
    // Without the fault class, 0 always reaches 2.
    const TransitionSystem prog_only(p, nullptr, at(*sp, 0));
    EXPECT_TRUE(check_reaches(prog_only, at(*sp, 2), false).ok);
    // With the fault step 0 -> 1 the run deadlocks at 1, avoiding 2.
    const TransitionSystem ts(p, &f, at(*sp, 0));
    EXPECT_FALSE(check_reaches(ts, at(*sp, 2), true).ok);
}

// Faults are not subject to fairness: a fault that *would* rescue the run
// cannot be relied upon.
TEST(FairnessTest, FaultsAreNotFair) {
    auto sp = counter_space(4);
    Program p(sp, "p");
    p.add_action(Action::skip("spin", at(*sp, 0)));
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "rescue", at(*sp, 0), "v", 2));
    const TransitionSystem ts(p, &f, at(*sp, 0));
    // The run may spin at 0 forever; the rescue fault never fires.
    EXPECT_FALSE(check_reaches(ts, at(*sp, 2), true).ok);
}

// Two independent tokens: each action toggles its own variable; both are
// continuously enabled, so both must fire — the run cannot privilege one.
TEST(FairnessTest, InterleavedActionsBothProgress) {
    auto sp = make_space({Variable{"a", 3, {}}, Variable{"b", 3, {}}});
    Program p(sp, "p");
    p.add_action(Action::assign(
        *sp, "inc-a",
        Predicate("a<2",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 2;
                  }),
        "a",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    p.add_action(Action::assign(
        *sp, "inc-b",
        Predicate("b<2",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 1) < 2;
                  }),
        "b",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 1) + 1;
        }));
    const Predicate init("origin", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) == 0 && space.get(s, 1) == 0;
    });
    const TransitionSystem ts(p, nullptr, init);
    const Predicate done("both-2", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) == 2 && space.get(s, 1) == 2;
    });
    EXPECT_TRUE(check_reaches(ts, done, false).ok);
}

TEST(FairnessTest, EvalOnNodesMatchesPredicate) {
    auto sp = counter_space(3);
    Program p(sp, "p");
    p.add_action(Action::assign_const(*sp, "go", at(*sp, 0), "v", 1));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    const auto marks = eval_on_nodes(ts, at(*sp, 1));
    ASSERT_EQ(marks.size(), ts.num_nodes());
    for (NodeId n = 0; n < ts.num_nodes(); ++n)
        EXPECT_EQ(marks[n] != 0, sp->get(ts.state_of(n), 0) == 1);
}

}  // namespace
}  // namespace dcft
