// ExplorationCache behaviour: hits are pointer-identical, every key
// component invalidates (program rename, action restriction, fault class,
// initial set), extensionally equal initial predicates share an entry,
// LRU eviction honours DCFT_EXPLORE_CACHE_CAP, and DCFT_NO_EXPLORE_CACHE
// bypasses the cache entirely.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "apps/token_ring.hpp"
#include "verify/exploration_cache.hpp"

namespace dcft {
namespace {

/// The cache under test is the process-wide singleton (the object the
/// verdict and synthesis pipelines actually share), so every test starts
/// and ends with clear() + clean env to stay order-independent.
class ExplorationCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        unsetenv("DCFT_NO_EXPLORE_CACHE");
        unsetenv("DCFT_EXPLORE_CACHE_CAP");
        ExplorationCache::global().clear();
    }
    void TearDown() override {
        unsetenv("DCFT_NO_EXPLORE_CACHE");
        unsetenv("DCFT_EXPLORE_CACHE_CAP");
        ExplorationCache::global().clear();
    }
};

TEST_F(ExplorationCacheTest, RepeatQueryIsPointerIdenticalHit) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    const auto a =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    EXPECT_EQ(cache.size(), 1u);
    const auto b =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    EXPECT_EQ(a.get(), b.get()) << "second query must hit, not rebuild";
    EXPECT_EQ(cache.size(), 1u);

    // The no-faults graph is a distinct key.
    const auto c = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ExplorationCacheTest, ExtensionallyEqualInitPredicatesShareEntry) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    // Same bits, different name and different closure: must still hit —
    // the key is the materialized initial set, not the predicate object.
    const auto a = cache.get_or_build(sys.ring, nullptr, sys.legitimate);
    const Predicate same_states(
        "legit-by-another-name",
        [inner = sys.legitimate](const StateSpace& sp, StateIndex s) {
            return inner.eval(sp, s);
        });
    const auto b = cache.get_or_build(sys.ring, nullptr, same_states);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.size(), 1u);

    // A different initial set is a different graph.
    const auto c = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_NE(a.get(), c.get());
}

TEST_F(ExplorationCacheTest, RenameInvalidates) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    const Program renamed = sys.ring.renamed("ring-renamed");
    const auto b = cache.get_or_build(renamed, nullptr, Predicate::top());
    EXPECT_NE(a.get(), b.get())
        << "renaming the program must change the cache key";
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ExplorationCacheTest, RestrictionInvalidates) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());

    // Restricting an action produces a new Action::id() even under a
    // vacuous (top) restriction — content identity is implementation
    // identity, so the transformed program must rebuild.
    Program restricted(sys.ring.space_ptr(), sys.ring.name());
    for (std::size_t i = 0; i < sys.ring.num_actions(); ++i) {
        const Action& ac = sys.ring.action(i);
        restricted.add_action(i == 0 ? ac.restricted(Predicate::top()) : ac);
    }
    const auto b =
        cache.get_or_build(restricted, nullptr, Predicate::top());
    EXPECT_NE(a.get(), b.get())
        << "restricted action must change the cache key";

    // Same graph content either way (the restriction was vacuous).
    EXPECT_EQ(a->num_nodes(), b->num_nodes());
    EXPECT_EQ(a->num_program_edges(), b->num_program_edges());
}

TEST_F(ExplorationCacheTest, LruEvictionHonoursCap) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();
    setenv("DCFT_EXPLORE_CACHE_CAP", "2", 1);
    EXPECT_EQ(ExplorationCache::capacity(), 2u);

    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    const auto a_ptr = a.get();
    const auto b =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    const auto c =
        cache.get_or_build(sys.ring, nullptr, sys.legitimate);  // evicts a
    EXPECT_LE(cache.size(), 2u);

    // b and c are still resident (pointer-identical hits)...
    EXPECT_EQ(
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top())
            .get(),
        b.get());
    EXPECT_EQ(cache.get_or_build(sys.ring, nullptr, sys.legitimate).get(),
              c.get());
    // ...while the evicted entry rebuilds to a fresh object.
    EXPECT_NE(
        cache.get_or_build(sys.ring, nullptr, Predicate::top()).get(),
        a_ptr);
}

TEST_F(ExplorationCacheTest, DisableEnvBypassesCache) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    setenv("DCFT_NO_EXPLORE_CACHE", "1", 1);
    EXPECT_TRUE(exploration_cache_disabled());
    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    const auto b = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_NE(a.get(), b.get()) << "bypass must rebuild every call";
    EXPECT_EQ(cache.size(), 0u) << "bypass must not populate the cache";
    EXPECT_EQ(a->num_nodes(), b->num_nodes());

    unsetenv("DCFT_NO_EXPLORE_CACHE");
    EXPECT_FALSE(exploration_cache_disabled());
    const auto c = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_EQ(
        cache.get_or_build(sys.ring, nullptr, Predicate::top()).get(),
        c.get());
}

}  // namespace
}  // namespace dcft
