// ExplorationCache behaviour: hits are pointer-identical, every key
// component invalidates (program rename, action restriction, fault class,
// initial set), extensionally equal initial predicates share an entry,
// LRU eviction honours DCFT_EXPLORE_CACHE_CAP, DCFT_NO_EXPLORE_CACHE
// bypasses the cache entirely, identity keys survive object destruction
// and allocator address reuse (the ABA regression), and builds of
// unrelated keys proceed concurrently while same-key builds dedup.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "apps/token_ring.hpp"
#include "verify/exploration_cache.hpp"

namespace dcft {
namespace {

/// The cache under test is the process-wide singleton (the object the
/// verdict and synthesis pipelines actually share), so every test starts
/// and ends with clear() + clean env to stay order-independent.
class ExplorationCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        unsetenv("DCFT_NO_EXPLORE_CACHE");
        unsetenv("DCFT_EXPLORE_CACHE_CAP");
        ExplorationCache::global().clear();
    }
    void TearDown() override {
        unsetenv("DCFT_NO_EXPLORE_CACHE");
        unsetenv("DCFT_EXPLORE_CACHE_CAP");
        ExplorationCache::global().clear();
    }
};

TEST_F(ExplorationCacheTest, RepeatQueryIsPointerIdenticalHit) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    const auto a =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    EXPECT_EQ(cache.size(), 1u);
    const auto b =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    EXPECT_EQ(a.get(), b.get()) << "second query must hit, not rebuild";
    EXPECT_EQ(cache.size(), 1u);

    // The no-faults graph is a distinct key.
    const auto c = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ExplorationCacheTest, ExtensionallyEqualInitPredicatesShareEntry) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    // Same bits, different name and different closure: must still hit —
    // the key is the materialized initial set, not the predicate object.
    const auto a = cache.get_or_build(sys.ring, nullptr, sys.legitimate);
    const Predicate same_states(
        "legit-by-another-name",
        [inner = sys.legitimate](const StateSpace& sp, StateIndex s) {
            return inner.eval(sp, s);
        });
    const auto b = cache.get_or_build(sys.ring, nullptr, same_states);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(cache.size(), 1u);

    // A different initial set is a different graph.
    const auto c = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_NE(a.get(), c.get());
}

TEST_F(ExplorationCacheTest, RenameInvalidates) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    const Program renamed = sys.ring.renamed("ring-renamed");
    const auto b = cache.get_or_build(renamed, nullptr, Predicate::top());
    EXPECT_NE(a.get(), b.get())
        << "renaming the program must change the cache key";
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ExplorationCacheTest, RestrictionInvalidates) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());

    // Restricting an action produces a new Action::id() even under a
    // vacuous (top) restriction — content identity is implementation
    // identity, so the transformed program must rebuild.
    Program restricted(sys.ring.space_ptr(), sys.ring.name());
    for (std::size_t i = 0; i < sys.ring.num_actions(); ++i) {
        const Action& ac = sys.ring.action(i);
        restricted.add_action(i == 0 ? ac.restricted(Predicate::top()) : ac);
    }
    const auto b =
        cache.get_or_build(restricted, nullptr, Predicate::top());
    EXPECT_NE(a.get(), b.get())
        << "restricted action must change the cache key";

    // Same graph content either way (the restriction was vacuous).
    EXPECT_EQ(a->num_nodes(), b->num_nodes());
    EXPECT_EQ(a->num_program_edges(), b->num_program_edges());
}

TEST_F(ExplorationCacheTest, LruEvictionHonoursCap) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();
    setenv("DCFT_EXPLORE_CACHE_CAP", "2", 1);
    EXPECT_EQ(ExplorationCache::capacity(), 2u);

    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    const auto a_ptr = a.get();
    const auto b =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    const auto c =
        cache.get_or_build(sys.ring, nullptr, sys.legitimate);  // evicts a
    EXPECT_LE(cache.size(), 2u);

    // b and c are still resident (pointer-identical hits)...
    EXPECT_EQ(
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top())
            .get(),
        b.get());
    EXPECT_EQ(cache.get_or_build(sys.ring, nullptr, sys.legitimate).get(),
              c.get());
    // ...while the evicted entry rebuilds to a fresh object.
    EXPECT_NE(
        cache.get_or_build(sys.ring, nullptr, Predicate::top()).get(),
        a_ptr);
}

TEST_F(ExplorationCacheTest, DisableEnvBypassesCache) {
    auto sys = apps::make_token_ring(4, 4);
    auto& cache = ExplorationCache::global();

    setenv("DCFT_NO_EXPLORE_CACHE", "1", 1);
    EXPECT_TRUE(exploration_cache_disabled());
    const auto a = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    const auto b = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_NE(a.get(), b.get()) << "bypass must rebuild every call";
    EXPECT_EQ(cache.size(), 0u) << "bypass must not populate the cache";
    EXPECT_EQ(a->num_nodes(), b->num_nodes());

    unsetenv("DCFT_NO_EXPLORE_CACHE");
    EXPECT_FALSE(exploration_cache_disabled());
    const auto c = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    EXPECT_EQ(
        cache.get_or_build(sys.ring, nullptr, Predicate::top()).get(),
        c.get());
}

// ---------------------------------------------------------------------------
// Regression: identity-keyed entries must survive object destruction.
//
// The original cache keyed entries on raw pointers (&space, Action::id())
// without keeping the keyed objects alive. A cached entry pins the space
// and the *program* actions through its TransitionSystem, but not the
// fault class: destroy the FaultClass and the allocator may hand its
// action Impl address to a brand-new, semantically different fault action
// — whose key then collides with the stale entry and returns the wrong
// graph (classic ABA). The fix keys on a per-space generation uid and
// pins Action values (ids can never be recycled while an entry lives).

TEST_F(ExplorationCacheTest, RebuiltFaultClassNeverStaleHits) {
    auto& cache = ExplorationCache::global();
    auto space = make_space({Variable{"x", 4, {}}, Variable{"y", 4, {}}});
    Program p(space, "aba");  // kept alive: program identity is constant
    p.add_action(Action::assign_var(*space, "copy",
                                    Predicate::vars_ne(*space, 0, 1), 0, 1));

    // Expected fault-edge counts, computed once from fresh builds.
    const auto fresh_fault_edges = [&](const FaultClass& f) {
        return TransitionSystem(p, &f, Predicate::top()).num_fault_edges();
    };
    // Three rotating fault semantics under one name, so an entry whose key
    // collides with a *later* fault class always has different content
    // (a two-phase rotation can align with period-2 allocator reuse).
    const auto make_faults = [&](int phase) {
        auto f = std::make_unique<FaultClass>(space, "F");
        std::vector<VarId> victims;
        if (phase == 0) victims = {0};
        else if (phase == 1) victims = {1};
        else victims = {0, 1};
        f->add_action(Action::corrupt_any(*space, "hit", Predicate::top(),
                                          std::move(victims)));
        return f;
    };
    std::size_t expected[3];
    for (int phase = 0; phase < 3; ++phase)
        expected[phase] = fresh_fault_edges(*make_faults(phase));
    cache.clear();

    // Destroy and rebuild the fault class back-to-back every iteration so
    // the freed action Impl chunk is the first allocation candidate for
    // its successor.
    std::size_t mismatches = 0;
    std::unique_ptr<FaultClass> f;
    for (int i = 0; i < 48; ++i) {
        const int phase = i % 3;
        f.reset();
        f = make_faults(phase);
        const auto ts = cache.get_or_build(p, f.get(), Predicate::top());
        if (ts->num_fault_edges() != expected[phase]) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u)
        << "stale cache hits returned a graph built from a destroyed "
           "fault class's semantics";
}

TEST_F(ExplorationCacheTest, RebuiltSpacesInALoopGetDistinctEntries) {
    // The ISSUE's literal scenario: construct/destroy spaces in a loop.
    // Every space (even one the allocator placed at a recycled address)
    // must key its own entry — the per-space uid makes that true by
    // construction, independent of what a cached TransitionSystem happens
    // to pin internally.
    auto& cache = ExplorationCache::global();
    for (int i = 0; i < 24; ++i) {
        const Value dom = 2 + (i % 3);
        auto space =
            make_space({Variable{"v", dom, {}}, Variable{"w", 2, {}}});
        Program p(space, "loop");  // zero actions: graph == init states
        const auto ts = cache.get_or_build(p, nullptr, Predicate::top());
        ASSERT_EQ(ts->num_nodes(),
                  static_cast<std::size_t>(space->num_states()))
            << "iteration " << i
            << ": cache returned a graph from a different (destroyed) "
               "space";
    }
}

TEST_F(ExplorationCacheTest, CopiedSpaceHasFreshIdentity) {
    auto space = make_space({Variable{"x", 3, {}}});
    const StateSpace copy(*space);
    EXPECT_NE(space->uid(), copy.uid())
        << "copies are distinct objects and must not alias in "
           "identity-keyed caches";
    StateSpace tmp(copy);
    const auto tmp_uid = tmp.uid();
    const StateSpace moved(std::move(tmp));
    EXPECT_EQ(moved.uid(), tmp_uid)
        << "moves transfer identity (the moved-from object is dead)";
}

// ---------------------------------------------------------------------------
// Regression: a large build must not serialize unrelated keys.
//
// The original get_or_build ran the whole BFS under the global cache
// mutex, so one slow exploration blocked every other key. The fix keeps
// the lock for map operations only and parks waiters on a per-entry
// shared_future, so (a) unrelated keys build concurrently and (b)
// concurrent requests for the same key still build exactly once.

TEST_F(ExplorationCacheTest, UnrelatedKeysBuildConcurrently) {
    auto& cache = ExplorationCache::global();
    auto space = make_space({Variable{"a", 2, {}}, Variable{"b", 2, {}}});

    // Shared latch state for the slow build's guard: on first evaluation
    // it signals "building has started" and then waits (bounded) for the
    // fast key's build to complete.
    struct Latch {
        std::promise<void> started;
        std::shared_future<void> fast_done;
        std::once_flag once;
        std::atomic<bool> saw_fast_finish{false};
    };
    auto latch = std::make_shared<Latch>();
    std::promise<void> fast_done_promise;
    latch->fast_done = fast_done_promise.get_future().share();

    Program slow(space, "slow-build");
    slow.add_action(Action::skip(
        "wait", Predicate("latch", [latch](const StateSpace&, StateIndex) {
            std::call_once(latch->once, [&] {
                latch->started.set_value();
                const auto status = latch->fast_done.wait_for(
                    std::chrono::seconds(10));
                latch->saw_fast_finish =
                    status == std::future_status::ready;
            });
            return false;
        })));

    Program fast(space, "fast-build");
    fast.add_action(Action::assign_const(*space, "set", Predicate::top(),
                                         "a", 1));

    std::thread slow_thread([&] {
        (void)cache.get_or_build(slow, nullptr, Predicate::top());
    });
    // Wait until the slow build is inside its exploration, then request an
    // unrelated key on this thread. With the historical whole-build lock
    // this request would block until the slow build timed out.
    latch->started.get_future().wait();
    (void)cache.get_or_build(fast, nullptr, Predicate::top());
    fast_done_promise.set_value();
    slow_thread.join();

    EXPECT_TRUE(latch->saw_fast_finish.load())
        << "an unrelated key could not build while a slow build was in "
           "flight — the cache serialized builds under its global lock";
    EXPECT_EQ(cache.size(), 2u);
}

TEST_F(ExplorationCacheTest, SameKeyConcurrentRequestsBuildOnce) {
    auto& cache = ExplorationCache::global();
    auto sys = apps::make_token_ring(5, 5);

    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const TransitionSystem>> results(kThreads);
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([&, t] {
                results[static_cast<std::size_t>(t)] = cache.get_or_build(
                    sys.ring, &sys.corrupt_any, Predicate::top());
            });
        for (auto& th : threads) th.join();
    }
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(results[0].get(), results[static_cast<std::size_t>(t)].get())
            << "concurrent same-key requests must share one build";
    EXPECT_EQ(cache.size(), 1u);
}

}  // namespace
}  // namespace dcft
