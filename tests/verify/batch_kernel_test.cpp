// Differential tests for the batch exploration layer (verify/batch_kernel)
// and the out-of-core spill mode.
//
// The batch kernel promises the same contract the CSR explorer does: the
// graph it produces — node numbering, edge order, witness paths — is
// bit-for-bit identical to the scalar per-state loop (DCFT_NO_BATCH=1),
// and an out-of-core build (ExploreOptions::spill) is bit-for-bit
// identical to an in-core one, for every thread count. These tests pin
// that contract on workloads chosen to hit the awkward block geometry:
// frontiers that are not a multiple of the 64-state guard word (tail
// blocks), frontiers that are an exact multiple (no tail), multi-level
// BFS where every level ends in a partial block, and rings large enough
// that the spill path seals and releases multiple CSR segments.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "apps/token_ring.hpp"
#include "verify/transition_system.hpp"

namespace dcft {
namespace {

/// Sets an environment variable for the current scope and restores the
/// previous value (or unsets) on destruction. The explorer re-reads its
/// DCFT_* switches on every build, so scoping a guard around one
/// construction is enough to pin that build's configuration.
class EnvGuard {
public:
    EnvGuard(const char* name, const char* value) : name_(name) {
        if (const char* prev = std::getenv(name)) {
            had_prev_ = true;
            prev_ = prev;
        }
        ::setenv(name, value, 1);
    }
    ~EnvGuard() {
        if (had_prev_)
            ::setenv(name_, prev_.c_str(), 1);
        else
            ::unsetenv(name_);
    }
    EnvGuard(const EnvGuard&) = delete;
    EnvGuard& operator=(const EnvGuard&) = delete;

private:
    const char* name_;
    bool had_prev_ = false;
    std::string prev_;
};

/// Asserts two transition systems are bit-for-bit identical: numbering,
/// roots, edge lists (order included), witness paths, predecessor rows.
/// `witness_stride` samples the per-node path/predecessor checks on large
/// graphs; the structural comparison is always exhaustive.
void expect_identical(const TransitionSystem& a, const TransitionSystem& b,
                      NodeId witness_stride = 1) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.initial_nodes(), b.initial_nodes());
    ASSERT_EQ(a.num_program_edges(), b.num_program_edges());
    ASSERT_EQ(a.num_fault_edges(), b.num_fault_edges());
    const auto& pa = a.predecessors(/*include_faults=*/true);
    const auto& pb = b.predecessors(/*include_faults=*/true);
    ASSERT_EQ(pa.num_items(), pb.num_items());
    for (NodeId n = 0; n < a.num_nodes(); ++n) {
        ASSERT_EQ(a.state_of(n), b.state_of(n)) << "node " << n;
        const auto prog_a = a.program_edges(n);
        const auto prog_b = b.program_edges(n);
        ASSERT_EQ(prog_a.size(), prog_b.size()) << "node " << n;
        ASSERT_TRUE(std::equal(prog_a.begin(), prog_a.end(), prog_b.begin()))
            << "program edges of node " << n;
        const auto fault_a = a.fault_edges(n);
        const auto fault_b = b.fault_edges(n);
        ASSERT_EQ(fault_a.size(), fault_b.size()) << "node " << n;
        ASSERT_TRUE(
            std::equal(fault_a.begin(), fault_a.end(), fault_b.begin()))
            << "fault edges of node " << n;
        if (n % witness_stride == 0) {
            ASSERT_EQ(a.witness_path(n), b.witness_path(n)) << "node " << n;
            const auto preds_a = pa[n];
            const auto preds_b = pb[n];
            ASSERT_TRUE(
                std::equal(preds_a.begin(), preds_a.end(), preds_b.begin(),
                           preds_b.end()))
                << "predecessors of node " << n;
        }
    }
}

// ---------------------------------------------------------------------------
// Batched vs scalar (DCFT_NO_BATCH=1) differentials
// ---------------------------------------------------------------------------

// 3^5 = 243 states: 243 % 64 = 51, so the identity sweep ends in a
// partial guard word, and 243 % 16 = 3 leaves a sub-SIMD tail. The batch
// and scalar builds must agree bit-for-bit, with and without faults.
TEST(BatchVsScalarTest, TailBlockIdentitySweep) {
    auto sys = apps::make_token_ring(5, 3);
    for (const bool with_faults : {false, true}) {
        FaultClass* faults = with_faults ? &sys.corrupt_any : nullptr;
        const TransitionSystem batched(sys.ring, faults, Predicate::top(),
                                       /*n_threads=*/1);
        EnvGuard no_batch("DCFT_NO_BATCH", "1");
        const TransitionSystem scalar(sys.ring, faults, Predicate::top(), 1);
        expect_identical(batched, scalar);
    }
}

// 4^4 = 256 states = exactly four 64-state guard words: no tail block at
// all, so the full-word popcount/prefix path carries every state.
TEST(BatchVsScalarTest, ExactBlockMultipleIdentitySweep) {
    auto sys = apps::make_token_ring(4, 4);
    const TransitionSystem batched(sys.ring, &sys.corrupt_any,
                                   Predicate::top(), 1);
    EnvGuard no_batch("DCFT_NO_BATCH", "1");
    const TransitionSystem scalar(sys.ring, &sys.corrupt_any,
                                  Predicate::top(), 1);
    expect_identical(batched, scalar);
}

// Multi-level BFS from a single root: every level has a different size
// (almost all % 64 != 0), exercising the batched expand_frontier path and
// its per-level tail blocks rather than the one-level identity sweep.
TEST(BatchVsScalarTest, FrontierExpansionFromSingleRoot) {
    auto sys = apps::make_token_ring(5, 3);
    const StateIndex root = sys.initial_state();
    const Predicate init("root", [root](const StateSpace&, StateIndex s) {
        return s == root;
    });
    const TransitionSystem batched(sys.ring, &sys.corrupt_any, init, 1);
    EnvGuard no_batch("DCFT_NO_BATCH", "1");
    const TransitionSystem scalar(sys.ring, &sys.corrupt_any, init, 1);
    expect_identical(batched, scalar);
}

// ---------------------------------------------------------------------------
// Out-of-core (spill) vs in-core differentials
// ---------------------------------------------------------------------------

// The spilled build must reproduce the in-core graph bit-for-bit at every
// thread count, including thread counts that engage the parallel
// two-pass merge (DCFT_PARALLEL_WORK_MIN=1 forces it far below the
// production work threshold). Reading edges and predecessors back after
// the build is the "reload" half: sealed levels were advised out of RSS
// and must page back in from the spill file intact.
TEST(SpillIdentityTest, SpillAndReloadAcrossThreadCounts) {
    auto sys = apps::make_token_ring(6, 6);  // 46656 states
    const TransitionSystem in_core(sys.ring, &sys.corrupt_any,
                                   Predicate::top(), 1);
    // Under an ambient DCFT_SPILL=1 (the spill ablation run) the baseline
    // build spills too; the identity check below still holds.
    if (std::getenv("DCFT_SPILL") == nullptr) EXPECT_FALSE(in_core.spilled());
    EnvGuard force_parallel("DCFT_PARALLEL_WORK_MIN", "1");
    for (const unsigned threads : {1u, 2u, 8u}) {
        ExploreOptions opts;
        opts.n_threads = threads;
        opts.spill = true;
        const TransitionSystem spilled(sys.ring, &sys.corrupt_any,
                                       Predicate::top(), opts);
        EXPECT_TRUE(spilled.spilled()) << threads << " threads";
        EXPECT_GT(spilled.spill_bytes(), 0u) << threads << " threads";
        expect_identical(in_core, spilled, /*witness_stride=*/17);
    }
}

// Same contract on a multi-level frontier exploration (non-identity
// interner, per-level sealing) instead of the one-level identity sweep.
TEST(SpillIdentityTest, SpillFrontierExplorationMatchesInCore) {
    auto sys = apps::make_token_ring(5, 4);  // 1024 reachable via faults
    const StateIndex root = sys.initial_state();
    const Predicate init("root", [root](const StateSpace&, StateIndex s) {
        return s == root;
    });
    const TransitionSystem in_core(sys.ring, &sys.corrupt_any, init, 1);
    for (const unsigned threads : {1u, 2u}) {
        ExploreOptions opts;
        opts.n_threads = threads;
        opts.spill = true;
        const TransitionSystem spilled(sys.ring, &sys.corrupt_any, init,
                                       opts);
        EXPECT_TRUE(spilled.spilled());
        expect_identical(in_core, spilled);
    }
}

// ≥280k-state ring (5^8 = 390625): the out-of-core build seals and
// releases multiple sweep segments and its CSR must still be bit-identical
// to the in-core graph, serial and parallel.
TEST(SpillIdentityTest, LargeRingOutOfCoreBitIdentical) {
    auto sys = apps::make_token_ring(8, 5);
    const TransitionSystem in_core(sys.ring, nullptr, Predicate::top(), 1);
    ASSERT_EQ(in_core.num_nodes(), 390625u);
    EnvGuard force_parallel("DCFT_PARALLEL_WORK_MIN", "1");
    for (const unsigned threads : {1u, 2u}) {
        ExploreOptions opts;
        opts.n_threads = threads;
        opts.spill = true;
        const TransitionSystem spilled(sys.ring, nullptr, Predicate::top(),
                                       opts);
        EXPECT_TRUE(spilled.spilled());
        EXPECT_GT(spilled.spill_bytes(), 0u);
        expect_identical(in_core, spilled, /*witness_stride=*/9973);
    }
}

}  // namespace
}  // namespace dcft
