#include "verify/reachability.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

/// v < limit --> v := v + 1.
Program increment_to(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<limit",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(ReachabilityTest, ForwardClosureOfChain) {
    auto sp = counter_space(10);
    const Program p = increment_to(sp, 6);
    const StateSet reach =
        reachable_states(p, nullptr, Predicate::var_eq(*sp, "v", 2));
    EXPECT_EQ(reach.count(), 5u);  // 2,3,4,5,6
    EXPECT_FALSE(reach.contains(1));
    EXPECT_TRUE(reach.contains(2));
    EXPECT_TRUE(reach.contains(6));
    EXPECT_FALSE(reach.contains(7));
}

TEST(ReachabilityTest, MultipleInitialStates) {
    auto sp = counter_space(10);
    const Program p = increment_to(sp, 3);
    const Predicate init =
        Predicate::var_eq(*sp, "v", 0) || Predicate::var_eq(*sp, "v", 8);
    const StateSet reach = reachable_states(p, nullptr, init);
    EXPECT_EQ(reach.count(), 5u);  // 0..3 plus isolated 8
    EXPECT_TRUE(reach.contains(8));
    EXPECT_FALSE(reach.contains(9));
}

TEST(ReachabilityTest, FaultActionsExtendClosure) {
    auto sp = counter_space(10);
    const Program p = increment_to(sp, 3);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "jump",
                                      Predicate::var_eq(*sp, "v", 3), "v", 7));
    const StateSet without =
        reachable_states(p, nullptr, Predicate::var_eq(*sp, "v", 0));
    const StateSet with =
        reachable_states(p, &f, Predicate::var_eq(*sp, "v", 0));
    EXPECT_EQ(without.count(), 4u);
    EXPECT_EQ(with.count(), 5u);  // plus 7 (no program action from 7 to 8?
    EXPECT_TRUE(with.contains(7));
    EXPECT_FALSE(with.contains(8));  // inc guard v<3 is false at 7
}

TEST(ReachabilityTest, EmptyInitialSetYieldsEmptyClosure) {
    auto sp = counter_space(4);
    const Program p = increment_to(sp, 3);
    const StateSet reach =
        reachable_states(p, nullptr, Predicate::bottom());
    EXPECT_TRUE(reach.empty());
}

TEST(ReachabilityTest, NondeterministicBranches) {
    auto sp = counter_space(8);
    Program p(sp, "branch");
    p.add_action(Action::nondet(
        "fork", Predicate::var_eq(*sp, "v", 0),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 3));
            out.push_back(space.set(s, 0, 5));
        }));
    const StateSet reach =
        reachable_states(p, nullptr, Predicate::var_eq(*sp, "v", 0));
    EXPECT_EQ(reach.count(), 3u);
    EXPECT_TRUE(reach.contains(3));
    EXPECT_TRUE(reach.contains(5));
}

}  // namespace
}  // namespace dcft
