// Differential tests pinning the compiled exploration path (GuardCode
// bytecode, guard bitsets, stride-delta effects) to the interpreted
// Action/Predicate path. Every (state, action) of each system must agree
// on enabledness AND produce the identical successor sequence — order
// included — since the verifier's witness traces and the simulator's
// schedules both depend on successor order.
//
// Systems covered: token ring (structured guards/effects), Byzantine
// agreement (mix of structured and opaque), and randomized guarded-command
// programs over >= 10k-state spaces that deliberately blend compilable
// forms with opaque lambdas (kCall / kGeneric fallbacks).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/byzantine.hpp"
#include "apps/token_ring.hpp"
#include "common/rng.hpp"
#include "gc/compiled.hpp"
#include "gc/state_space.hpp"
#include "verify/action_kernel.hpp"

namespace dcft {
namespace {

/// Compares the compiled action set against the interpreted actions at
/// every state (or a dense random sample when the space is larger than
/// `exhaustive_limit`): guard verdicts, guard bitsets, per-action
/// successor sequences, and whole-set successor sequences.
void expect_differential(const Program& program,
                         StateIndex exhaustive_limit = 1u << 17) {
    const auto space = program.space_ptr();
    const CompiledActionSet compiled(space, program.actions());
    compiled.ensure_guard_bits();

    const StateIndex n = space->num_states();
    Rng rng(0xD1FFULL + n);
    const bool exhaustive = n <= exhaustive_limit;
    const StateIndex probes = exhaustive ? n : exhaustive_limit;

    std::vector<StateIndex> got, want;
    for (StateIndex i = 0; i < probes; ++i) {
        const StateIndex s = exhaustive ? i : rng.below(n);
        // Whole-set order must match Program::successors exactly.
        got.clear();
        want.clear();
        compiled.successors(s, got);
        program.successors(s, want);
        ASSERT_EQ(got, want) << "program successors diverge at s=" << s;

        for (std::size_t a = 0; a < program.num_actions(); ++a) {
            const Action& ia = program.action(a);
            const CompiledAction& ca = compiled[a];
            const bool enabled = ia.guard().eval(*space, s);
            ASSERT_EQ(ca.enabled(s), enabled)
                << program.name() << "/" << ia.name() << " guard at s=" << s;
            ASSERT_EQ(ca.guard_bits().test(s), enabled)
                << program.name() << "/" << ia.name()
                << " guard bitset at s=" << s;
            if (!enabled) continue;
            got.clear();
            want.clear();
            ca.successors(s, got);
            ia.successors(*space, s, want);
            ASSERT_EQ(got, want)
                << program.name() << "/" << ia.name()
                << " successors diverge at s=" << s;
        }
    }
}

TEST(ActionKernelTest, TokenRingDifferential) {
    // 6^6 = 46656 states (>= 10k), fully structured: every guard should
    // compile without kCall fallbacks.
    auto sys = apps::make_token_ring(6, 6);
    const CompiledActionSet compiled(sys.ring.space_ptr(),
                                     sys.ring.actions());
    for (std::size_t a = 0; a < compiled.size(); ++a)
        EXPECT_TRUE(compiled[a].guard_fully_compiled())
            << sys.ring.action(a).name();
    expect_differential(sys.ring);
}

TEST(ActionKernelTest, TokenRingFaultDifferential) {
    auto sys = apps::make_token_ring(5, 5);
    // FaultClass actions go through the same compiled path.
    Program as_program(sys.ring.space_ptr(), "corrupt-as-program");
    for (const Action& a : sys.corrupt_any.actions())
        as_program.add_action(a);
    expect_differential(as_program);
}

TEST(ActionKernelTest, ByzantineDifferential) {
    // n=4: 4 * 18^3 = 23328 states (>= 10k); witnesses/correctors are
    // opaque lambdas, b-flag guards are structured — exercises both the
    // bytecode fast ops and the kCall/kGeneric fallbacks in one system.
    auto sys = apps::make_byzantine(4, 1);
    expect_differential(sys.masking);
    expect_differential(sys.intolerant);
    Program faults(sys.space, "byz-faults-as-program");
    for (const Action& a : sys.byzantine_fault.actions())
        faults.add_action(a);
    expect_differential(faults);
}

/// Random guarded-command program over a >= 10k-state space. Mixes every
/// structured effect form with opaque guards and generic effects so the
/// differential covers fallback seams, not just the fast paths.
Program random_program(std::uint64_t seed) {
    Rng rng(seed);
    // 4 variables, domains in [3, 10]; resample until >= 10k states.
    std::vector<Value> domains;
    StateIndex states = 0;
    while (states < 10000) {
        domains.clear();
        states = 1;
        for (int i = 0; i < 4; ++i) {
            const Value d = static_cast<Value>(3 + rng.below(8));
            domains.push_back(d);
            states *= static_cast<StateIndex>(d);
        }
    }
    auto builder = std::make_shared<StateSpace>();
    for (std::size_t i = 0; i < domains.size(); ++i)
        builder->add_variable("v" + std::to_string(i), domains[i]);
    builder->freeze();
    std::shared_ptr<const StateSpace> space = builder;

    auto random_guard = [&]() -> Predicate {
        const VarId a = rng.below(4), b = rng.below(4);
        const Value ca = static_cast<Value>(
            rng.below(static_cast<std::uint64_t>(domains[a])));
        switch (rng.below(7)) {
            case 0: return Predicate::top();
            case 1: return Predicate::var_eq(*space, a, ca);
            case 2: return Predicate::var_ne(*space, a, ca);
            case 3: return Predicate::vars_eq(*space, a, b);
            case 4: return Predicate::vars_ne(*space, a, b);
            case 5:
                return Predicate::var_eq(*space, a, ca) ||
                       Predicate::vars_ne(*space, a, b);
            default:
                // Opaque: structurally invisible, forces kCall fallback.
                return Predicate(
                    "opaque", [a, ca](const StateSpace& sp, StateIndex s) {
                        return (sp.get(s, a) + 1) % 3 !=
                               static_cast<Value>(ca % 3);
                    });
        }
    };

    Program p(space, "random-" + std::to_string(seed));
    const std::size_t num_actions = 4 + rng.below(5);
    for (std::size_t i = 0; i < num_actions; ++i) {
        const std::string name = "a" + std::to_string(i);
        Predicate g = random_guard();
        if (rng.chance(0.3)) g = g && random_guard();
        if (rng.chance(0.2)) g = !g;
        const VarId tv = rng.below(4);
        const Value dom = domains[tv];
        const Value tc =
            static_cast<Value>(rng.below(static_cast<std::uint64_t>(dom)));
        switch (rng.below(7)) {
            case 0:
                p.add_action(Action::assign_const(
                    *space, name, std::move(g), "v" + std::to_string(tv),
                    tc));
                break;
            case 1:
                p.add_action(Action::assign_var(*space, name, std::move(g),
                                                tv, rng.below(4)));
                break;
            case 2:
                p.add_action(Action::assign_add_mod(
                    *space, name, std::move(g), tv, tv,
                    static_cast<Value>(1 + rng.below(3)), dom));
                break;
            case 3:
                p.add_action(Action::assign_choice(
                    *space, name, std::move(g), tv,
                    {0, tc, static_cast<Value>(dom - 1)}));
                break;
            case 4:
                p.add_action(Action::corrupt_any(*space, name, std::move(g),
                                                 {tv, rng.below(4)}));
                break;
            case 5:
                p.add_action(Action::skip(name, std::move(g)));
                break;
            default:
                // Generic effect: opaque value computation (kGeneric).
                p.add_action(Action::assign(
                    *space, name, std::move(g), "v" + std::to_string(tv),
                    [tv, dom](const StateSpace& sp, StateIndex s) {
                        return (sp.get(s, tv) * 2 + 1) % dom;
                    }));
                break;
        }
    }
    return p;
}

class ActionKernelRandomTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ActionKernelRandomTest, RandomProgramDifferential) {
    expect_differential(random_program(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActionKernelRandomTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(ActionKernelTest, GuardBitsMatchPerStateEval) {
    // fill_guard_bits word-algebra (periodic fills, tile replication, word
    // and/or/not) against a plain per-state scan, on guards chosen to hit
    // every lowering: small-stride var==c (tile path), top-variable var==c
    // (range path), connectives, and an opaque leaf.
    auto sys = apps::make_token_ring(6, 6);
    const auto space = sys.ring.space_ptr();
    const auto cs = compile_space(space);
    const std::vector<Predicate> guards = {
        Predicate::var_eq(*space, VarId{0}, 3),
        Predicate::var_eq(*space, VarId{5}, 2),
        Predicate::vars_eq(*space, VarId{0}, VarId{5}),
        Predicate::var_ne(*space, VarId{2}, 0) &&
            Predicate::vars_ne(*space, VarId{1}, VarId{3}),
        !Predicate::var_eq(*space, VarId{4}, 1),
        Predicate::var_eq(*space, VarId{1}, 1) ||
            Predicate("odd-sum",
                      [](const StateSpace& sp, StateIndex s) {
                          Value sum = 0;
                          for (VarId v = 0; v < sp.num_vars(); ++v)
                              sum += sp.get(s, v);
                          return sum % 2 == 1;
                      }),
    };
    BitVec bits(space->num_states());
    for (const Predicate& g : guards) {
        fill_guard_bits(*cs, g, bits);
        for (StateIndex s = 0; s < space->num_states(); ++s)
            ASSERT_EQ(bits.test(s), g.eval(*space, s))
                << g.name() << " at s=" << s;
    }
}

TEST(ActionKernelTest, NoCompileEnvForcesInterpretedPath) {
    // The whole suite may legitimately run under DCFT_NO_COMPILE=1 (the
    // differential CI pass), so save and restore whatever is set.
    const char* preset = std::getenv("DCFT_NO_COMPILE");
    const std::string saved = preset != nullptr ? preset : "";

    unsetenv("DCFT_NO_COMPILE");
    EXPECT_FALSE(compile_disabled());
    setenv("DCFT_NO_COMPILE", "1", 1);
    EXPECT_TRUE(compile_disabled());
    setenv("DCFT_NO_COMPILE", "0", 1);  // "0" counts as unset
    EXPECT_FALSE(compile_disabled());

    if (preset != nullptr)
        setenv("DCFT_NO_COMPILE", saved.c_str(), 1);
    else
        unsetenv("DCFT_NO_COMPILE");
}

}  // namespace
}  // namespace dcft
