// Cross-validation of the fair-convergence engine against the simulator:
// on randomly generated programs, whenever the exhaustive checker says
// "every fair computation converges", fair simulations must in fact
// converge — and witness states the checker flags as avoidance starts
// must be reproducible as stuck simulations under an adversarial-ish
// scheduler where the structure permits.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "runtime/simulator.hpp"
#include "verify/fairness.hpp"
#include "verify/refinement.hpp"

namespace dcft {
namespace {

struct RandomConvergenceSystem {
    std::shared_ptr<const StateSpace> space;
    Program program;
    Predicate target;
};

RandomConvergenceSystem random_system(std::uint64_t seed) {
    Rng rng(seed);
    auto space = make_space({Variable{"a", 4, {}}, Variable{"b", 4, {}}});
    Program p(space, "random");
    const std::size_t num_actions = 2 + rng.below(4);
    for (std::size_t i = 0; i < num_actions; ++i) {
        const VarId gvar = rng.below(2);
        const Value gval = static_cast<Value>(rng.below(4));
        const VarId tvar = rng.below(2);
        const Value tval = static_cast<Value>(rng.below(4));
        p.add_action(Action::assign_const(
            *space, "ac" + std::to_string(i),
            Predicate("g",
                      [gvar, gval](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, gvar) == gval;
                      }),
            space->variable(tvar).name, tval));
    }
    const Value ta = static_cast<Value>(rng.below(4));
    Predicate target("target",
                     [ta](const StateSpace& sp, StateIndex s) {
                         return sp.get(s, 0) == ta;
                     });
    return RandomConvergenceSystem{space, std::move(p), std::move(target)};
}

class CrossValidationTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrossValidationTest, VerifiedConvergenceHoldsInFairSimulations) {
    RandomConvergenceSystem sys = random_system(GetParam());
    const bool verified =
        converges(sys.program, nullptr, Predicate::top(), sys.target).ok;
    if (!verified) return;  // nothing to cross-validate in this direction

    // Round-robin is deterministically weakly fair; random is fair with
    // probability 1. Both must reach the target from every state.
    RoundRobinScheduler round_robin;
    RandomScheduler random;
    for (Scheduler* scheduler :
         std::initializer_list<Scheduler*>{&round_robin, &random}) {
        for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
            Simulator sim(sys.program, *scheduler, 17 + s);
            RunOptions options;
            options.max_steps = 2000;
            options.stop_when = sys.target;
            const RunResult run = sim.run(s, options);
            const bool reached =
                run.stopped_early ||
                sys.target.eval(*sys.space, run.final_state);
            EXPECT_TRUE(reached)
                << "verified-convergent system failed to converge from "
                << sys.space->format(s) << " under " << scheduler->name();
        }
    }
}

TEST_P(CrossValidationTest, DeadlockWitnessesAreRealDeadlocks) {
    RandomConvergenceSystem sys = random_system(GetParam() ^ 0xF00DULL);
    const TransitionSystem ts(sys.program, nullptr, Predicate::top());
    const auto target_marks = eval_on_nodes(ts, sys.target);
    const auto avoid = fair_avoidance_set(ts, target_marks);
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        if (!avoid[n] || !ts.terminal(n)) continue;
        // A terminal avoidance node must really be stuck outside target.
        const StateIndex s = ts.state_of(n);
        EXPECT_TRUE(sys.program.is_terminal(s));
        EXPECT_FALSE(sys.target.eval(*sys.space, s));
    }
}

TEST_P(CrossValidationTest, AvoidanceSetIsClosedBackwards) {
    // Structural soundness: a node with an edge into the avoidance region
    // (staying outside the target) must itself be avoidant.
    RandomConvergenceSystem sys = random_system(GetParam() ^ 0xBEEFULL);
    const TransitionSystem ts(sys.program, nullptr, Predicate::top());
    const auto target_marks = eval_on_nodes(ts, sys.target);
    const auto avoid = fair_avoidance_set(ts, target_marks);
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        if (target_marks[n]) continue;
        for (const auto& e : ts.program_edges(n)) {
            if (!target_marks[e.to] && avoid[e.to]) {
                EXPECT_TRUE(avoid[n]) << ts.space().format(ts.state_of(n));
            }
        }
    }
}

TEST_P(CrossValidationTest, NonAvoidantStatesConvergeUnderRoundRobin) {
    // The exact converse direction, per state: if the checker says no fair
    // run from s avoids the target, a deterministically fair simulation
    // from s reaches it.
    RandomConvergenceSystem sys = random_system(GetParam() ^ 0xCAFEULL);
    const TransitionSystem ts(sys.program, nullptr, Predicate::top());
    const auto target_marks = eval_on_nodes(ts, sys.target);
    const auto avoid = fair_avoidance_set(ts, target_marks);
    RoundRobinScheduler scheduler;
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        if (avoid[n] || target_marks[n]) continue;
        Simulator sim(sys.program, scheduler, 3);
        RunOptions options;
        options.max_steps = 2000;
        options.stop_when = sys.target;
        const RunResult run = sim.run(ts.state_of(n), options);
        EXPECT_TRUE(run.stopped_early)
            << "non-avoidant state failed to converge: "
            << ts.space().format(ts.state_of(n));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidationTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace dcft
