#include "verify/encapsulation.hpp"

#include <gtest/gtest.h>

#include "gc/composition.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> two_var_space() {
    return make_space({Variable{"v", 4, {}}, Variable{"aux", 2, {}}});
}

Program base_program(std::shared_ptr<const StateSpace> sp) {
    Program p(sp, sp->varset({"v"}), "base");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<3",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 3;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(EncapsulationTest, ProgramEncapsulatesItself) {
    auto sp = two_var_space();
    const Program p = base_program(sp);
    EXPECT_TRUE(check_encapsulates(p, p).ok);
}

TEST(EncapsulationTest, RestrictionEncapsulates) {
    auto sp = two_var_space();
    const Program p = base_program(sp);
    const Program gated =
        restrict_program(Predicate::var_eq(*sp, "aux", 1), p);
    EXPECT_TRUE(check_encapsulates(gated, p).ok);
}

TEST(EncapsulationTest, EncapsulatedActionWithExtraEffectAccepted) {
    auto sp = two_var_space();
    const Program p = base_program(sp);
    Program wrapper(sp, "wrapper");
    wrapper.add_action(p.action(0).encapsulated(
        "inc-and-mark", Predicate::top(),
        [sp](const StateSpace& space, StateIndex, StateIndex after) {
            return space.set(after, space.find("aux"), 1);
        }));
    EXPECT_TRUE(check_encapsulates(wrapper, p).ok);
}

TEST(EncapsulationTest, PureAuxiliaryActionsAreExempt) {
    auto sp = two_var_space();
    const Program p = base_program(sp);
    Program wrapper(sp, "wrapper");
    wrapper.add_action(p.action(0).restricted(Predicate::top()));
    // A detector-style action touching only aux needs no provenance.
    wrapper.add_action(Action::assign_const(
        *sp, "detect", Predicate::var_eq(*sp, "aux", 0), "aux", 1));
    EXPECT_TRUE(check_encapsulates(wrapper, p).ok);
}

TEST(EncapsulationTest, UnderivedWriteToBaseVarsRejected) {
    auto sp = two_var_space();
    const Program p = base_program(sp);
    Program rogue(sp, "rogue");
    rogue.add_action(Action::assign_const(
        *sp, "smash-v", Predicate::top(), "v", 0));
    const CheckResult r = check_encapsulates(rogue, p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("not derived"), std::string::npos);
}

TEST(EncapsulationTest, ExtraEffectMustNotTouchBaseVars) {
    auto sp = two_var_space();
    const Program p = base_program(sp);
    Program cheat(sp, "cheat");
    // The "extra" statement overwrites v — the projection onto the base
    // variables no longer matches the base action's effect.
    cheat.add_action(p.action(0).encapsulated(
        "inc-then-clobber", Predicate::top(),
        [sp](const StateSpace& space, StateIndex, StateIndex after) {
            return space.set(after, space.find("v"), 0);
        }));
    const CheckResult r = check_encapsulates(cheat, p);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("differently"), std::string::npos);
}

TEST(EncapsulationTest, SequenceCompositionEncapsulates) {
    // The paper's detector-gating pattern D ;_Z p encapsulates p when the
    // detector only writes its witness variable.
    auto sp = two_var_space();
    const Program p = base_program(sp);
    Program detector(sp, sp->varset({"aux"}), "D");
    detector.add_action(Action::assign_const(
        *sp, "witness", Predicate::var_eq(*sp, "aux", 0), "aux", 1));
    const Program composed =
        sequence(detector, Predicate::var_eq(*sp, "aux", 1), p);
    EXPECT_TRUE(check_encapsulates(composed, p).ok);
}

}  // namespace
}  // namespace dcft
