// An independent brute-force oracle for the fair-avoidance engine.
//
// fairness.cpp decides "does a fair computation avoiding the target
// exist?" by SCC analysis with action-starvation pruning. On tiny systems
// we can decide the same question by definition: enumerate EVERY subset
// of target-free nodes, test whether it could be the infinity-set of a
// fair run (strongly connected; every action enabled at all its states
// has an internal edge), and take the backward closure. The two answers
// must agree exactly, on every randomly generated system.
#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "verify/fairness.hpp"

namespace dcft {
namespace {

constexpr Value kStates = 9;  // 2^9 subsets to enumerate — cheap

struct System {
    std::shared_ptr<const StateSpace> space;
    Program program;
    std::vector<char> target;  // over raw state indices == node ids
};

/// Random single-variable system; every state is in the transition system
/// (init = true), so NodeId == StateIndex.
System random_system(std::uint64_t seed) {
    Rng rng(seed);
    auto space = make_space({Variable{"v", kStates, {}}});
    Program p(space, "random");
    const std::size_t num_actions = 1 + rng.below(4);
    for (std::size_t a = 0; a < num_actions; ++a) {
        // Random guard set and a random (possibly nondeterministic) move.
        auto guard_set = std::make_shared<std::vector<char>>(kStates);
        for (auto& g : *guard_set) g = rng.chance(0.5) ? 1 : 0;
        const Value t1 = static_cast<Value>(rng.below(kStates));
        const Value t2 = static_cast<Value>(rng.below(kStates));
        const bool relative = rng.chance(0.5);
        p.add_action(Action::nondet(
            "ac" + std::to_string(a),
            Predicate("g",
                      [guard_set](const StateSpace&, StateIndex s) {
                          return (*guard_set)[s] != 0;
                      }),
            [t1, t2, relative](const StateSpace& sp, StateIndex s,
                               std::vector<StateIndex>& out) {
                if (relative)  // shift by one (a cycle-maker)
                    out.push_back(
                        sp.set(s, 0, (sp.get(s, 0) + 1) % kStates));
                else
                    out.push_back(sp.set(s, 0, t1));
                if (t2 != t1) out.push_back(sp.set(s, 0, t2));
            }));
    }
    std::vector<char> target(kStates);
    for (auto& t : target) t = rng.chance(0.3) ? 1 : 0;
    return System{space, std::move(p), std::move(target)};
}

/// Brute-force avoidance set, straight from the definition.
std::vector<char> oracle(const TransitionSystem& ts,
                         const std::vector<char>& target) {
    const std::size_t n = ts.num_nodes();
    std::vector<char> avoid(n, 0);

    // Finite maximal runs: terminal target-free nodes.
    for (NodeId v = 0; v < n; ++v)
        if (!target[v] && ts.terminal(v)) avoid[v] = 1;

    // Infinite runs: every candidate infinity-set.
    for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
        // Members must all be target-free.
        bool ok = true;
        std::vector<NodeId> members;
        for (NodeId v = 0; v < n; ++v) {
            if (!(mask & (1u << v))) continue;
            if (target[v]) {
                ok = false;
                break;
            }
            members.push_back(v);
        }
        if (!ok) continue;
        // Internal edges per node; the set must have at least one edge.
        auto internal = [&](NodeId from, NodeId to) {
            for (const auto& e : ts.program_edges(from))
                if (e.to == to && (mask & (1u << to))) return true;
            return false;
        };
        // Strong connectivity inside the set (trivially true for size 1
        // with a self-loop; size 1 without self-loop cannot host a run).
        if (members.size() == 1) {
            if (!internal(members[0], members[0])) continue;
        } else {
            bool connected = true;
            for (NodeId src : members) {
                std::vector<char> seen(n, 0);
                std::deque<NodeId> queue{src};
                seen[src] = 1;
                while (!queue.empty()) {
                    const NodeId u = queue.front();
                    queue.pop_front();
                    for (const auto& e : ts.program_edges(u)) {
                        if ((mask & (1u << e.to)) && !seen[e.to]) {
                            seen[e.to] = 1;
                            queue.push_back(e.to);
                        }
                    }
                }
                for (NodeId dst : members)
                    if (!seen[dst]) connected = false;
            }
            if (!connected) continue;
        }
        // Weak fairness: every action enabled at ALL member states must
        // have an edge staying inside the set.
        bool fair = true;
        for (std::uint32_t a = 0;
             a < ts.num_program_actions() && fair; ++a) {
            bool enabled_everywhere = true;
            for (NodeId v : members)
                if (!ts.enabled(v, a)) enabled_everywhere = false;
            if (!enabled_everywhere) continue;
            bool has_internal = false;
            for (NodeId v : members)
                for (const auto& e : ts.program_edges(v))
                    if (e.action == a && (mask & (1u << e.to)))
                        has_internal = true;
            if (!has_internal) fair = false;
        }
        if (!fair) continue;
        for (NodeId v : members) avoid[v] = 1;
    }

    // Backward closure within the target-free region.
    bool changed = true;
    while (changed) {
        changed = false;
        for (NodeId v = 0; v < n; ++v) {
            if (target[v] || avoid[v]) continue;
            for (const auto& e : ts.program_edges(v)) {
                if (!target[e.to] && avoid[e.to]) {
                    avoid[v] = 1;
                    changed = true;
                    break;
                }
            }
        }
    }
    return avoid;
}

class FairnessOracleTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FairnessOracleTest, SccEngineMatchesBruteForce) {
    const System sys = random_system(GetParam());
    const TransitionSystem ts(sys.program, nullptr, Predicate::top());
    ASSERT_EQ(ts.num_nodes(), static_cast<std::size_t>(kStates));
    // NodeId ordering equals state order because every state is initial.
    std::vector<char> target(kStates);
    for (NodeId v = 0; v < ts.num_nodes(); ++v)
        target[v] = sys.target[ts.state_of(v)];

    const auto fast = fair_avoidance_set(ts, target);
    const auto slow = oracle(ts, target);
    for (NodeId v = 0; v < ts.num_nodes(); ++v)
        EXPECT_EQ(static_cast<bool>(fast[v]), static_cast<bool>(slow[v]))
            << "node " << v << " state "
            << ts.space().format(ts.state_of(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairnessOracleTest,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace dcft
