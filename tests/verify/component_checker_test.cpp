// Detector and corrector judgments on small purpose-built components.
#include "verify/component_checker.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

// Space: x (the condition being watched), z (the witness).
std::shared_ptr<const StateSpace> xz_space() {
    return make_space({Variable{"x", 2, {}}, Variable{"z", 2, {}}});
}

Predicate x_true(const StateSpace& sp) {
    return Predicate::var_eq(sp, "x", 1).renamed("X");
}
Predicate z_true(const StateSpace& sp) {
    return Predicate::var_eq(sp, "z", 1).renamed("Z");
}
Predicate context(const StateSpace& sp) {
    // U: the witness never lies — z => x.
    return implies(z_true(sp), x_true(sp)).renamed("U");
}

/// detect :: x /\ !z --> z := true.
Program good_detector(std::shared_ptr<const StateSpace> sp) {
    Program d(sp, "detector");
    d.add_action(Action::assign_const(
        *sp, "detect", x_true(*sp) && !z_true(*sp), "z", 1));
    return d;
}

TEST(DetectorCheckTest, GoodDetectorAccepted) {
    auto sp = xz_space();
    const Program d = good_detector(sp);
    const DetectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    EXPECT_TRUE(check_detector(d, claim).ok);
}

TEST(DetectorCheckTest, LyingDetectorViolatesSafeness) {
    auto sp = xz_space();
    Program d(sp, "liar");
    d.add_action(Action::assign_const(
        *sp, "lie", !x_true(*sp) && !z_true(*sp), "z", 1));
    const DetectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    const CheckResult r = check_detector(d, claim);
    EXPECT_FALSE(r.ok);
}

TEST(DetectorCheckTest, SluggishDetectorViolatesProgress) {
    auto sp = xz_space();
    const Program d(sp, "asleep");  // no actions at all
    const DetectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    const CheckResult r = check_detector(d, claim);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("leads-to"), std::string::npos);
}

TEST(DetectorCheckTest, UnstableDetectorViolatesStability) {
    auto sp = xz_space();
    Program d = good_detector(sp);
    // Retracts the witness while x still holds.
    d.add_action(Action::assign_const(
        *sp, "retract", x_true(*sp) && z_true(*sp), "z", 0));
    const DetectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    EXPECT_FALSE(check_detector(d, claim).ok);
}

TEST(DetectorCheckTest, FailsafeTolerantDetector) {
    auto sp = xz_space();
    const Program d = good_detector(sp);
    // The fault falsifies x, but only before the witness is raised —
    // the memory-access shape (Section 3.3).
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(
        *sp, "strike", x_true(*sp) && !z_true(*sp), "x", 0));
    const DetectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    const Predicate span = context(*sp);  // closed under d and F here
    EXPECT_TRUE(check_tolerant_detector(d, f, claim, Tolerance::FailSafe,
                                        span)
                    .ok);
}

TEST(DetectorCheckTest, UnrestrictedFaultBreaksFailsafeTolerance) {
    auto sp = xz_space();
    const Program d = good_detector(sp);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "strike", x_true(*sp), "x", 0));
    const DetectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    // The fault reaches z /\ !x, so the span must include it; from there
    // Safeness is violated.
    const CheckResult r = check_tolerant_detector(
        d, f, claim, Tolerance::FailSafe, Predicate::top());
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("presence"), std::string::npos);
}

/// fix :: !x --> x := true, plus the witness action.
Program good_corrector(std::shared_ptr<const StateSpace> sp) {
    Program c(sp, "corrector");
    c.add_action(Action::assign_const(*sp, "fix", !x_true(*sp), "x", 1));
    c.add_action(Action::assign_const(
        *sp, "witness", x_true(*sp) && !z_true(*sp), "z", 1));
    return c;
}

TEST(CorrectorCheckTest, GoodCorrectorAccepted) {
    auto sp = xz_space();
    const Program c = good_corrector(sp);
    const CorrectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    EXPECT_TRUE(check_corrector(c, claim).ok);
}

TEST(CorrectorCheckTest, CorrectorWithoutConvergenceRejected) {
    auto sp = xz_space();
    // Only witnesses; never repairs x.
    const Program c = good_detector(sp);
    const CorrectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    const CheckResult r = check_corrector(c, claim);
    EXPECT_FALSE(r.ok);
}

TEST(CorrectorCheckTest, CorrectorBreakingClosureRejected) {
    auto sp = xz_space();
    Program c = good_corrector(sp);
    // Un-corrects: violates the Convergence closure cl(X).
    c.add_action(Action::assign_const(
        *sp, "break", x_true(*sp) && !z_true(*sp), "x", 0));
    const CorrectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    EXPECT_FALSE(check_corrector(c, claim).ok);
}

TEST(CorrectorCheckTest, NonmaskingTolerantCorrector) {
    auto sp = xz_space();
    const Program c = good_corrector(sp);
    // Faults falsify x at will (and clear z with it, keeping U).
    FaultClass f(sp, "F");
    f.add_action(Action::nondet(
        "strike", x_true(*sp),
        [sp](const StateSpace& space, StateIndex s,
             std::vector<StateIndex>& out) {
            StateIndex t = space.set(s, space.find("x"), 0);
            t = space.set(t, space.find("z"), 0);
            out.push_back(t);
        }));
    const CorrectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    EXPECT_TRUE(check_tolerant_corrector(c, f, claim, Tolerance::Nonmasking,
                                         Predicate::top())
                    .ok);
}

TEST(CorrectorCheckTest, MaskingTolerantCorrectorNeedsMore) {
    // The same fault violates cl(X) on its own transition, so the
    // corrector is nonmasking- but not masking-tolerant — the asymmetry
    // Theorem 5.5 points out.
    auto sp = xz_space();
    const Program c = good_corrector(sp);
    FaultClass f(sp, "F");
    f.add_action(Action::nondet(
        "strike", x_true(*sp),
        [sp](const StateSpace& space, StateIndex s,
             std::vector<StateIndex>& out) {
            StateIndex t = space.set(s, space.find("x"), 0);
            t = space.set(t, space.find("z"), 0);
            out.push_back(t);
        }));
    const CorrectorClaim claim{z_true(*sp), x_true(*sp), context(*sp)};
    EXPECT_FALSE(check_tolerant_corrector(c, f, claim, Tolerance::Masking,
                                          Predicate::top())
                     .ok);
}

}  // namespace
}  // namespace dcft
