// Differential tests for the CSR transition system against the retained
// reference (seed-era) implementation in verify/reference.hpp.
//
// The optimized explorer promises *bit-for-bit* equivalence with the
// sequential FIFO BFS: same node numbering, same edge lists (order
// included), same BFS parents and witness paths — for every thread count.
// These tests pin that contract on randomized guarded-command programs and
// on app systems large enough to exercise the parallel chunked path, and
// additionally cross-check the verdict pipeline (leads-to, tolerance
// grades) against the reference pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/byzantine.hpp"
#include "apps/token_ring.hpp"
#include "common/rng.hpp"
#include "verify/fairness.hpp"
#include "verify/reachability.hpp"
#include "verify/reference.hpp"
#include "verify/state_set.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

namespace dcft {
namespace {

struct RandomSystem {
    std::shared_ptr<const StateSpace> space;
    Program program;
    FaultClass faults;
};

/// Random guarded-command system over three small variables (same family
/// as random_program_test.cpp).
RandomSystem random_system(std::uint64_t seed) {
    Rng rng(seed);
    auto space = make_space(
        {Variable{"a", 4, {}}, Variable{"b", 3, {}}, Variable{"c", 3, {}}});
    auto random_action = [&](const std::string& name) {
        const VarId gvar = rng.below(3);
        const Value gval =
            static_cast<Value>(rng.below(static_cast<std::uint64_t>(
                space->variable(gvar).domain_size)));
        const VarId tvar = rng.below(3);
        const Value tval =
            static_cast<Value>(rng.below(static_cast<std::uint64_t>(
                space->variable(tvar).domain_size)));
        const Predicate guard(
            "g", [gvar, gval](const StateSpace& sp, StateIndex s) {
                return sp.get(s, gvar) == gval;
            });
        return Action::assign_const(*space, name, guard,
                                    space->variable(tvar).name, tval);
    };

    Program p(space, "random");
    const std::size_t num_actions = 2 + rng.below(4);
    for (std::size_t i = 0; i < num_actions; ++i)
        p.add_action(random_action("ac" + std::to_string(i)));

    FaultClass f(space, "F");
    f.add_action(random_action("fault0"));
    if (rng.below(2) == 0) f.add_action(random_action("fault1"));

    return RandomSystem{space, std::move(p), std::move(f)};
}

/// Asserts the CSR system and the reference system are identical:
/// numbering, roots, parents, edge lists, witnesses.
void expect_same_system(const TransitionSystem& ts,
                        const reference::RefTransitionSystem& ref) {
    ASSERT_EQ(ts.num_nodes(), ref.num_nodes());
    ASSERT_EQ(ts.initial_nodes(), ref.initial_nodes());
    ASSERT_EQ(ts.num_program_edges(), ref.num_program_edges());
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        ASSERT_EQ(ts.state_of(n), ref.state_of(n)) << "node " << n;
        const auto prog = ts.program_edges(n);
        const auto& rprog = ref.program_edges(n);
        ASSERT_EQ(prog.size(), rprog.size()) << "node " << n;
        for (std::size_t i = 0; i < prog.size(); ++i) {
            EXPECT_EQ(prog[i].action, rprog[i].action);
            EXPECT_EQ(prog[i].to, rprog[i].to);
        }
        const auto fault = ts.fault_edges(n);
        const auto& rfault = ref.fault_edges(n);
        ASSERT_EQ(fault.size(), rfault.size()) << "node " << n;
        for (std::size_t i = 0; i < fault.size(); ++i) {
            EXPECT_EQ(fault[i].action, rfault[i].action);
            EXPECT_EQ(fault[i].to, rfault[i].to);
        }
        EXPECT_EQ(ts.terminal(n), ref.terminal(n)) << "node " << n;
        EXPECT_EQ(ts.witness_path(n), ref.witness_path(n)) << "node " << n;
    }
}

class CsrDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrDifferentialTest, MatchesReferenceProgramOnly) {
    RandomSystem sys = random_system(GetParam());
    const Predicate init = Predicate::var_eq(*sys.space, "a", 0);
    const TransitionSystem ts(sys.program, nullptr, init, /*n_threads=*/1);
    const reference::RefTransitionSystem ref(sys.program, nullptr, init);
    expect_same_system(ts, ref);
}

TEST_P(CsrDifferentialTest, MatchesReferenceWithFaults) {
    RandomSystem sys = random_system(GetParam());
    const Predicate init = Predicate::var_eq(*sys.space, "b", 1);
    const TransitionSystem ts(sys.program, &sys.faults, init, 1);
    const reference::RefTransitionSystem ref(sys.program, &sys.faults, init);
    expect_same_system(ts, ref);

    // state_bits() marks exactly the node states — the fault span of init.
    const BitVec bits = ts.state_bits();
    EXPECT_EQ(bits.popcount(), ts.num_nodes());
    for (NodeId n = 0; n < ts.num_nodes(); ++n)
        EXPECT_TRUE(bits.test(ts.state_of(n)));
    const StateSet reach =
        reachable_states(sys.program, &sys.faults, init);
    EXPECT_EQ(StateSet(ts.state_bits()), reach);
}

TEST_P(CsrDifferentialTest, ThreadCountDoesNotChangeTheSystem) {
    RandomSystem sys = random_system(GetParam());
    const Predicate init = Predicate::var_eq(*sys.space, "c", 0);
    const TransitionSystem t1(sys.program, &sys.faults, init, 1);
    const TransitionSystem t8(sys.program, &sys.faults, init, 8);
    ASSERT_EQ(t1.num_nodes(), t8.num_nodes());
    ASSERT_EQ(t1.initial_nodes(), t8.initial_nodes());
    for (NodeId n = 0; n < t1.num_nodes(); ++n) {
        ASSERT_EQ(t1.state_of(n), t8.state_of(n));
        const auto p1 = t1.program_edges(n);
        const auto p8 = t8.program_edges(n);
        ASSERT_TRUE(std::equal(p1.begin(), p1.end(), p8.begin(), p8.end()));
        const auto f1 = t1.fault_edges(n);
        const auto f8 = t8.fault_edges(n);
        ASSERT_TRUE(std::equal(f1.begin(), f1.end(), f8.begin(), f8.end()));
        ASSERT_EQ(t1.witness_path(n), t8.witness_path(n));
    }
}

TEST_P(CsrDifferentialTest, LeadsToAgreesWithReference) {
    RandomSystem sys = random_system(GetParam());
    const Predicate from = Predicate::var_eq(*sys.space, "a", 0);
    const Predicate to = Predicate::var_eq(*sys.space, "b", 2);
    const TransitionSystem ts(sys.program, &sys.faults, Predicate::top(), 1);
    const reference::RefTransitionSystem ref(sys.program, &sys.faults,
                                             Predicate::top());
    for (const bool with_faults : {false, true}) {
        const CheckResult a = check_leads_to(ts, from, to, with_faults);
        const CheckResult b =
            reference::ref_check_leads_to(ref, from, to, with_faults);
        EXPECT_EQ(a.ok, b.ok) << "with_faults=" << with_faults;
        EXPECT_EQ(a.reason, b.reason) << "with_faults=" << with_faults;
    }
}

TEST_P(CsrDifferentialTest, ToleranceVerdictAgreesWithReference) {
    RandomSystem sys = random_system(GetParam());
    // A closed invariant: the program-reachable closure of a seed set.
    auto reach = std::make_shared<StateSet>(reachable_states(
        sys.program, nullptr, Predicate::var_eq(*sys.space, "a", 1)));
    const Predicate inv = predicate_of(reach, "inv");
    SafetySpec safety(
        "diff-safety",
        Predicate("bad",
                  [](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, 0) == 3 && sp.get(s, 2) == 2;
                  }),
        [](const StateSpace& sp, StateIndex from, StateIndex to) {
            return sp.get(from, 1) == 0 && sp.get(to, 1) == 2;
        });
    LivenessSpec liveness;
    liveness.add(LeadsTo{Predicate::var_eq(*sys.space, "a", 1),
                         Predicate::var_eq(*sys.space, "b", 0)});
    const ProblemSpec spec("diff-spec", std::move(safety),
                           std::move(liveness));
    for (const Tolerance grade :
         {Tolerance::FailSafe, Tolerance::Nonmasking, Tolerance::Masking}) {
        const ToleranceReport a =
            check_tolerance(sys.program, sys.faults, spec, inv, grade);
        const ToleranceReport b = reference::ref_check_tolerance(
            sys.program, sys.faults, spec, inv, grade);
        EXPECT_EQ(a.ok(), b.ok()) << "grade " << static_cast<int>(grade);
        EXPECT_EQ(a.in_absence.ok, b.in_absence.ok);
        EXPECT_EQ(a.in_presence.ok, b.in_presence.ok);
        EXPECT_EQ(a.invariant_size, b.invariant_size);
        EXPECT_EQ(a.span_size, b.span_size);
        // The span is the same *set* in both pipelines.
        const StateSet sa = materialize(*sys.space, a.fault_span);
        const StateSet sb = materialize(*sys.space, b.fault_span);
        EXPECT_EQ(sa, sb);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 25));

// App-sized systems whose first BFS level exceeds the parallel grain, so
// the chunked expansion path (not just the fused serial one) is exercised
// and must still match the purely sequential reference.
TEST(CsrParallelPathTest, TokenRingMatchesReferenceAcrossThreadCounts) {
    auto sys = apps::make_token_ring(6, 6);  // 46656 states, one big level
    const reference::RefTransitionSystem ref(sys.ring, nullptr,
                                             Predicate::top());
    for (const unsigned threads : {1u, 2u, 8u}) {
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top(),
                                  threads);
        expect_same_system(ts, ref);
    }
}

TEST(CsrParallelPathTest, ByzantineWithFaultsMatchesReference) {
    auto sys = apps::make_byzantine(4, 1);  // 23328 states
    const reference::RefTransitionSystem ref(sys.masking,
                                             &sys.byzantine_fault,
                                             Predicate::top());
    for (const unsigned threads : {1u, 8u}) {
        const TransitionSystem ts(sys.masking, &sys.byzantine_fault,
                                  Predicate::top(), threads);
        expect_same_system(ts, ref);
    }
}

}  // namespace
}  // namespace dcft
