// Counterexample witnesses: failing checks name a path from an initial
// state to the violation.
#include <gtest/gtest.h>

#include <algorithm>

#include "verify/refinement.hpp"
#include "verify/transition_system.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(WitnessTest, PathFromInitialToNode) {
    auto sp = counter_space(6);
    const Program p = incrementer(sp, 5);
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    const NodeId target = ts.node_of(3);
    const std::vector<StateIndex> path = ts.witness_path(target);
    EXPECT_EQ(path, (std::vector<StateIndex>{0, 1, 2, 3}));
}

TEST(WitnessTest, InitialNodeHasSingletonPath) {
    auto sp = counter_space(6);
    const Program p = incrementer(sp, 5);
    const TransitionSystem ts(p, nullptr, at(*sp, 2));
    EXPECT_EQ(ts.witness_path(ts.node_of(2)),
              (std::vector<StateIndex>{2}));
}

TEST(WitnessTest, PathStepsAreActualTransitions) {
    auto sp = counter_space(8);
    Program p(sp, "p");
    p.add_action(incrementer(sp, 7).action(0));
    p.add_action(Action::assign_const(*sp, "jump", at(*sp, 1), "v", 5));
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    std::vector<StateIndex> succ;
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const auto path = ts.witness_path(n);
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            succ.clear();
            p.successors(path[i], succ);
            EXPECT_NE(std::find(succ.begin(), succ.end(), path[i + 1]),
                      succ.end());
        }
    }
}

TEST(WitnessTest, FormattedWitnessNamesStates) {
    auto sp = counter_space(6);
    const Program p = incrementer(sp, 5);
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    const std::string text = ts.format_witness(ts.node_of(2));
    EXPECT_EQ(text, "{v=0} -> {v=1} -> {v=2}");
}

TEST(WitnessTest, LongPathsAreElided) {
    auto sp = counter_space(20);
    const Program p = incrementer(sp, 19);
    const TransitionSystem ts(p, nullptr, at(*sp, 0));
    const std::string text = ts.format_witness(ts.node_of(15));
    EXPECT_EQ(text.rfind("... -> ", 0), 0u);
    EXPECT_NE(text.find("{v=15}"), std::string::npos);
}

TEST(WitnessTest, SafetyFailureCarriesWitness) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 5);
    const ProblemSpec spec("no-4", SafetySpec::never(at(*sp, 4)), {});
    const Predicate from("v<=5", [](const StateSpace&, StateIndex s) {
        return s <= 5;
    });
    const CheckResult r = refines_spec(p, spec, from);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("witness:"), std::string::npos);
}

TEST(WitnessTest, LivenessFailureCarriesWitness) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 3);
    LivenessSpec live;
    live.add_eventually(at(*sp, 7));
    const ProblemSpec spec("reach-7", SafetySpec(), std::move(live));
    const Predicate from("v<=3", [](const StateSpace&, StateIndex s) {
        return s <= 3;
    });
    const CheckResult r = refines_spec(p, spec, from);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("reached via:"), std::string::npos);
}

TEST(WitnessTest, FaultStepsAppearInWitnessPaths) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "leap", at(*sp, 2), "v", 6));
    const TransitionSystem ts(p, &f, at(*sp, 0));
    const auto path = ts.witness_path(ts.node_of(6));
    EXPECT_EQ(path, (std::vector<StateIndex>{0, 1, 2, 6}));
}

}  // namespace
}  // namespace dcft
