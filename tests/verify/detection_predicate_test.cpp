// Theorem 3.3 made executable: every action has a (weakest) detection
// predicate, and the family of detection predicates is closed under
// weakening-into and disjunction.
#include "verify/detection_predicate.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

TEST(DetectionPredicateTest, WeakestPredicateExcludesUnsafeStates) {
    auto sp = counter_space(5);
    // inc: v := v+1 (enabled when v < 4). Spec: never reach v == 3.
    const Action inc = Action::assign(
        *sp, "inc",
        Predicate("v<4",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 4;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        });
    const SafetySpec spec = SafetySpec::never(at(*sp, 3));
    const auto wdp = weakest_detection_set(*sp, inc, spec);
    // Executing inc at 2 lands on 3: unsafe. Everywhere else: safe
    // (including 4, where inc is disabled — vacuous).
    EXPECT_TRUE(wdp->contains(0));
    EXPECT_TRUE(wdp->contains(1));
    EXPECT_FALSE(wdp->contains(2));
    EXPECT_TRUE(wdp->contains(3));  // inc: 3 -> 4, which is allowed
    EXPECT_TRUE(wdp->contains(4));  // disabled
}

TEST(DetectionPredicateTest, BadTransitionsAlsoExcluded) {
    auto sp = counter_space(5);
    const Action inc = Action::assign(
        *sp, "inc",
        Predicate("v<4",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 4;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        });
    // Transition 1 -> 2 is forbidden, the state 2 itself is fine.
    const SafetySpec spec = SafetySpec::pair(at(*sp, 1), !at(*sp, 2));
    const auto wdp = weakest_detection_set(*sp, inc, spec);
    EXPECT_FALSE(wdp->contains(1));
    EXPECT_TRUE(wdp->contains(0));
    EXPECT_TRUE(wdp->contains(2));
}

TEST(DetectionPredicateTest, NondeterministicActionNeedsAllBranchesSafe) {
    auto sp = counter_space(5);
    const Action fork = Action::nondet(
        "fork", at(*sp, 0),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 1));
            out.push_back(space.set(s, 0, 3));
        });
    const SafetySpec spec = SafetySpec::never(at(*sp, 3));
    const auto wdp = weakest_detection_set(*sp, fork, spec);
    EXPECT_FALSE(wdp->contains(0));  // one branch is unsafe
}

TEST(DetectionPredicateTest, IsDetectionPredicateAcceptsStrengthenings) {
    // If sf is a detection predicate and X => sf, X is one too (the
    // weakening-into property noted after Theorem 3.3).
    auto sp = counter_space(5);
    const Action inc = Action::assign(
        *sp, "inc",
        Predicate("v<4",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 4;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        });
    const SafetySpec spec = SafetySpec::never(at(*sp, 3));
    const Predicate weakest = weakest_detection_predicate(*sp, inc, spec);
    EXPECT_TRUE(is_detection_predicate(*sp, weakest, inc, spec));
    EXPECT_TRUE(is_detection_predicate(*sp, at(*sp, 0), inc, spec));
    EXPECT_TRUE(is_detection_predicate(*sp, Predicate::bottom(), inc, spec));
    EXPECT_FALSE(is_detection_predicate(*sp, at(*sp, 2), inc, spec));
    EXPECT_FALSE(is_detection_predicate(*sp, Predicate::top(), inc, spec));
}

TEST(DetectionPredicateTest, DisjunctionOfDetectionPredicatesIsOne) {
    auto sp = counter_space(6);
    const Action inc = Action::assign(
        *sp, "inc",
        Predicate("v<5",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 5;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        });
    const SafetySpec spec = SafetySpec::never(at(*sp, 4));
    const Predicate sf1 = at(*sp, 0);
    const Predicate sf2 = at(*sp, 1);
    ASSERT_TRUE(is_detection_predicate(*sp, sf1, inc, spec));
    ASSERT_TRUE(is_detection_predicate(*sp, sf2, inc, spec));
    EXPECT_TRUE(is_detection_predicate(*sp, sf1 || sf2, inc, spec));
}

TEST(DetectionPredicateTest, WeakestIsTheWeakest) {
    // Every detection predicate implies the weakest one.
    auto sp = counter_space(6);
    const Action inc = Action::assign(
        *sp, "inc",
        Predicate("v<5",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 5;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        });
    const SafetySpec spec = SafetySpec::never(at(*sp, 4));
    const Predicate weakest = weakest_detection_predicate(*sp, inc, spec);
    for (Value c = 0; c < 6; ++c) {
        const Predicate candidate = at(*sp, c);
        if (is_detection_predicate(*sp, candidate, inc, spec)) {
            EXPECT_TRUE(implies_everywhere(*sp, candidate, weakest));
        }
    }
}

TEST(DetectionPredicateTest, TrueSpecGivesTruePredicate) {
    auto sp = counter_space(4);
    const Action inc = Action::assign(
        *sp, "inc",
        Predicate("v<3",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 3;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        });
    const auto wdp = weakest_detection_set(*sp, inc, SafetySpec());
    EXPECT_EQ(wdp->count(), sp->num_states());
}

}  // namespace
}  // namespace dcft
