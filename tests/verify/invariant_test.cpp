#include "verify/invariant.hpp"

#include <gtest/gtest.h>

#include "verify/closure.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(ReachableInvariantTest, IsTheForwardClosure) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 4);
    const Predicate inv = reachable_invariant(p, at(*sp, 1));
    for (StateIndex s = 0; s < 8; ++s)
        EXPECT_EQ(inv.eval(*sp, s), s >= 1 && s <= 4) << s;
    EXPECT_TRUE(check_closed(p, inv).ok);
}

TEST(LargestInvariantTest, ExcludesBadStatesAndTheirBasins) {
    auto sp = counter_space(8);
    // inc to 5; state 4 is forbidden. States 0..3 inevitably pass through
    // 4 (the only move is +1), so only {5, 6, 7} (where inc has stopped or
    // never passes 4) survive... careful: inc guard is v<5, so from 3 the
    // program *must* step to 4. From 5,6,7 the action is disabled.
    const Program p = incrementer(sp, 5);
    const SafetySpec safety = SafetySpec::never(at(*sp, 4));
    const Predicate inv = largest_safety_invariant(p, safety);
    for (StateIndex s = 0; s < 8; ++s)
        EXPECT_EQ(inv.eval(*sp, s), s >= 5) << s;
}

TEST(LargestInvariantTest, IsClosedAndSafe) {
    auto sp = counter_space(10);
    Program p(sp, "p");
    p.add_action(incrementer(sp, 6).action(0));
    p.add_action(Action::assign_const(*sp, "loop", at(*sp, 6), "v", 2));
    const SafetySpec safety = SafetySpec::never(at(*sp, 9));
    const Predicate inv = largest_safety_invariant(p, safety);
    EXPECT_TRUE(check_closed(p, inv).ok);
    for (StateIndex s = 0; s < 10; ++s) {
        if (inv.eval(*sp, s)) {
            EXPECT_TRUE(safety.state_allowed(*sp, s));
        }
    }
}

TEST(LargestInvariantTest, ContainsEveryOtherSafetyInvariant) {
    auto sp = counter_space(10);
    const Program p = incrementer(sp, 6);
    const SafetySpec safety = SafetySpec::never(at(*sp, 8));
    const Predicate largest = largest_safety_invariant(p, safety);
    // Candidate smaller invariants: closed, safe sets.
    for (Value c = 0; c < 10; ++c) {
        const Predicate candidate("tail", [c](const StateSpace&,
                                              StateIndex s) {
            return static_cast<Value>(s) >= c && s <= 6;
        });
        const bool closed = check_closed(p, candidate).ok;
        bool safe = true;
        for (StateIndex s = 0; s < 10; ++s)
            if (candidate.eval(*sp, s) && !safety.state_allowed(*sp, s))
                safe = false;
        if (closed && safe) {
            EXPECT_TRUE(implies_everywhere(*sp, candidate, largest)) << c;
        }
    }
}

TEST(LargestInvariantTest, BadTransitionsAlsoPrune) {
    auto sp = counter_space(6);
    const Program p = incrementer(sp, 5);
    // The transition 2 -> 3 is forbidden (states are all fine).
    const SafetySpec safety = SafetySpec::pair(at(*sp, 2), !at(*sp, 3));
    const Predicate inv = largest_safety_invariant(p, safety);
    EXPECT_FALSE(inv.eval(*sp, 2));  // must take 2 -> 3
    EXPECT_FALSE(inv.eval(*sp, 0));  // reaches 2 inevitably
    EXPECT_TRUE(inv.eval(*sp, 3));
    EXPECT_TRUE(inv.eval(*sp, 5));
}

TEST(LargestInvariantTest, CanBeEmpty) {
    auto sp = counter_space(4);
    Program p(sp, "p");
    p.add_action(Action::assign(
        *sp, "cycle", Predicate::top(), "v",
        [](const StateSpace& space, StateIndex s) {
            return (space.get(s, 0) + 1) % 4;
        }));
    const SafetySpec safety = SafetySpec::never(at(*sp, 0));
    const Predicate inv = largest_safety_invariant(p, safety);
    EXPECT_EQ(count_satisfying(*sp, inv), 0u);
}

TEST(LargestInvariantTest, NondeterministicEscapePrunes) {
    auto sp = counter_space(6);
    Program p(sp, "p");
    p.add_action(Action::nondet(
        "fork", at(*sp, 1),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 2));
            out.push_back(space.set(s, 0, 5));  // 5 is forbidden
        }));
    const SafetySpec safety = SafetySpec::never(at(*sp, 5));
    const Predicate inv = largest_safety_invariant(p, safety);
    EXPECT_FALSE(inv.eval(*sp, 1));  // one branch is fatal
    EXPECT_TRUE(inv.eval(*sp, 2));
}

}  // namespace
}  // namespace dcft
