// Masking-distance game tests (verify/masking_distance.hpp): the distance
// ladder on a hand-built threshold system (0 = program-only violation,
// 1 = breaks on the first fault, k = absorbs k-1 faults, inf = masking),
// the differential identity against the explicit tolerance checker
// (distance inf iff check_failsafe's in-presence obligation holds), and
// bit-identical results across exploration thread counts.
#include "verify/masking_distance.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/memory_access.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

/// Scoped environment override restoring the previous value on exit.
class EnvVarGuard {
public:
    EnvVarGuard(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvVarGuard() {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

private:
    std::string name_;
    bool had_ = false;
    std::string old_;
};

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 5, {}}});
}

Predicate v_below(const StateSpace&, Value limit) {
    return Predicate("v<" + std::to_string(limit),
                     [limit](const StateSpace& space, StateIndex s) {
                         return space.get(s, 0) < limit;
                     });
}

/// Threshold system: faults push v up by one while v < fault_cap, the
/// program repairs v down by one while v > 0. Safety forbids v == 4.
/// From the invariant v == 0 the adversary needs exactly four consecutive
/// faults to reach v == 4 (the repair action never helps it), so the
/// masking distance is 4 when fault_cap == 4 and infinite when the cap
/// keeps v below the forbidden value.
struct ThresholdSystem {
    std::shared_ptr<const StateSpace> space = counter_space();
    Program program{space, "repair"};
    FaultClass faults{space, "hit"};
    ProblemSpec spec;
    Predicate invariant;

    explicit ThresholdSystem(Value fault_cap)
        : invariant(Predicate::var_eq(*space, "v", 0)) {
        program.add_action(Action::assign(
            *space, "repair",
            Predicate("v>0",
                      [](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, 0) > 0;
                      }),
            "v",
            [](const StateSpace& sp, StateIndex s) {
                return sp.get(s, 0) - 1;
            }));
        faults.add_action(Action::assign(
            *space, "hit", v_below(*space, fault_cap), "v",
            [](const StateSpace& sp, StateIndex s) {
                return sp.get(s, 0) + 1;
            }));
        spec = ProblemSpec("avoid4",
                           SafetySpec::never(Predicate::var_eq(*space, "v", 4)),
                           LivenessSpec());
    }
};

TEST(MaskingDistanceTest, ProgramOnlyViolationIsDistanceZero) {
    // The "program" itself climbs into the forbidden state: the violation
    // needs no refuter move at all, so d = 0 — exactly the case where
    // check_failsafe already fails in the *absence* of faults.
    auto sp = counter_space();
    Program p(sp, "climb");
    p.add_action(Action::assign(
        *sp, "climb", v_below(*sp, 4), "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    FaultClass f(sp, "noop-fault");
    f.add_action(Action::assign_const(
        *sp, "reset", Predicate::var_eq(*sp, "v", 1), "v", 0));
    const ProblemSpec spec("avoid4",
                           SafetySpec::never(Predicate::var_eq(*sp, "v", 4)),
                           LivenessSpec());
    const Predicate inv = Predicate::var_eq(*sp, "v", 0);

    const MaskingDistanceResult r = masking_distance(p, f, spec, inv);
    EXPECT_FALSE(r.masking);
    EXPECT_EQ(r.distance, 0u);
    EXPECT_EQ(r.witness_faults(), 0u);
    ASSERT_FALSE(r.witness.empty());
    const ToleranceReport fs = check_failsafe(p, f, spec, inv);
    EXPECT_FALSE(fs.in_absence.ok);
}

TEST(MaskingDistanceTest, BreakOnFirstFaultIsDistanceOne) {
    // The fault jumps straight into the forbidden state: the violating
    // transition is itself a fault edge, which counts its own increment —
    // d = 1, and the witness ends with that fault step.
    auto sp = counter_space();
    Program p(sp, "idle");
    p.add_action(Action::assign(
        *sp, "repair",
        Predicate("v>0",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) > 0;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) - 1;
        }));
    FaultClass f(sp, "smash");
    f.add_action(Action::assign_const(
        *sp, "smash", v_below(*sp, 4), "v", 4));
    const ProblemSpec spec("avoid4",
                           SafetySpec::never(Predicate::var_eq(*sp, "v", 4)),
                           LivenessSpec());
    const Predicate inv = Predicate::var_eq(*sp, "v", 0);

    const MaskingDistanceResult r = masking_distance(p, f, spec, inv);
    EXPECT_FALSE(r.masking);
    EXPECT_EQ(r.distance, 1u);
    EXPECT_EQ(r.witness_faults(), 1u);
    ASSERT_GE(r.witness.size(), 2u);
    EXPECT_TRUE(r.witness.back().fault);
    EXPECT_EQ(r.witness.back().action, "smash");
}

TEST(MaskingDistanceTest, AbsorbsThreeFaultsBreaksOnFourth) {
    const ThresholdSystem sys(/*fault_cap=*/4);
    const MaskingDistanceResult r = masking_distance(
        sys.program, sys.faults, sys.spec, sys.invariant);
    EXPECT_FALSE(r.masking);
    EXPECT_EQ(r.distance, 4u);
    EXPECT_EQ(r.witness_faults(), 4u);
    // Layer 0 is the fault-free subgame; v reaches 4 in layer 4.
    EXPECT_EQ(r.game_layers, 5u);
    EXPECT_EQ(r.game_nodes, 5u);  // v = 0..4
}

TEST(MaskingDistanceTest, CappedFaultsAreMaskedForever) {
    // With the fault capped below the forbidden value no computation of
    // p [] F ever violates safety: distance infinite, no witness — and the
    // explicit checker's in-presence safety obligation agrees.
    const ThresholdSystem sys(/*fault_cap=*/3);
    const MaskingDistanceResult r = masking_distance(
        sys.program, sys.faults, sys.spec, sys.invariant);
    EXPECT_TRUE(r.masking);
    EXPECT_TRUE(r.witness.empty());
    EXPECT_EQ(r.game_nodes, 4u);  // v = 0..3
    const ToleranceReport fs = check_failsafe(sys.program, sys.faults,
                                              sys.spec, sys.invariant);
    EXPECT_TRUE(fs.in_presence.ok) << fs.in_presence.reason;
}

TEST(MaskingDistanceTest, AgreesWithExplicitCheckerOnMemory) {
    // Differential identity on a paper system, all four variants:
    // d == inf  iff  check_failsafe's in-presence obligation holds (same
    // safety property, quantified over the same fault span), and
    // check_masking ok implies d == inf (masking adds liveness on top).
    auto sys = apps::make_memory_access();
    const std::vector<std::pair<std::string, const Program*>> variants = {
        {"intolerant", &sys.intolerant},
        {"failsafe", &sys.failsafe},
        {"nonmasking", &sys.nonmasking},
        {"masking", &sys.masking}};
    for (const auto& [name, program] : variants) {
        const MaskingDistanceResult r =
            masking_distance(*program, sys.page_fault, sys.spec, sys.S);
        const ToleranceReport fs =
            check_failsafe(*program, sys.page_fault, sys.spec, sys.S);
        EXPECT_EQ(r.masking, fs.in_presence.ok)
            << name << ": game says "
            << (r.masking ? "masking" : "distance " +
                                            std::to_string(r.distance))
            << " but failsafe in_presence says " << fs.in_presence.reason;
        const ToleranceReport mk =
            check_masking(*program, sys.page_fault, sys.spec, sys.S);
        if (mk.ok()) EXPECT_TRUE(r.masking) << name;
        if (!r.masking) {
            EXPECT_EQ(r.witness_faults(), r.distance) << name;
            EXPECT_FALSE(r.witness.empty()) << name;
        }
    }
}

TEST(MaskingDistanceTest, BitIdenticalAcrossExplorationThreads) {
    // The game runs on the recorded CSR edges, which are thread-invariant;
    // the solver itself is serial and canonical. Distance, game counters,
    // reason string, and the full witness must match across 1/2/8-thread
    // explorations of the same system.
    const ThresholdSystem sys(/*fault_cap=*/4);
    MaskingDistanceResult base;
    bool first = true;
    for (const char* threads : {"1", "2", "8"}) {
        const EnvVarGuard tg("DCFT_VERIFIER_THREADS", threads);
        ExplorationCache::global().clear();
        const MaskingDistanceResult r = masking_distance(
            sys.program, sys.faults, sys.spec, sys.invariant);
        if (first) {
            base = r;
            first = false;
            continue;
        }
        EXPECT_EQ(base.masking, r.masking);
        EXPECT_EQ(base.distance, r.distance);
        EXPECT_EQ(base.game_nodes, r.game_nodes);
        EXPECT_EQ(base.game_layers, r.game_layers);
        EXPECT_EQ(base.reason, r.reason) << "threads=" << threads;
        ASSERT_EQ(base.witness.size(), r.witness.size());
        for (std::size_t i = 0; i < base.witness.size(); ++i) {
            EXPECT_EQ(base.witness[i].state, r.witness[i].state);
            EXPECT_EQ(base.witness[i].state_repr, r.witness[i].state_repr);
            EXPECT_EQ(base.witness[i].action, r.witness[i].action);
            EXPECT_EQ(base.witness[i].fault, r.witness[i].fault);
        }
    }
    ExplorationCache::global().clear();
}

}  // namespace
}  // namespace dcft
