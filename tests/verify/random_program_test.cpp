// Randomized cross-checks tying the kernel, verifier, and synthesis
// together: properties that must hold for *every* program are checked on
// randomly generated guarded-command programs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gc/composition.hpp"
#include "synth/add_failsafe.hpp"
#include "verify/closure.hpp"
#include "verify/encapsulation.hpp"
#include "verify/fault_span.hpp"
#include "verify/reachability.hpp"
#include "verify/refinement.hpp"

namespace dcft {
namespace {

struct RandomSystem {
    std::shared_ptr<const StateSpace> space;
    Program program;
    FaultClass faults;
    SafetySpec safety;
};

/// A random program over 3 small variables: each action guards on one
/// variable's value and assigns a constant to another.
RandomSystem random_system(std::uint64_t seed) {
    Rng rng(seed);
    auto space = make_space(
        {Variable{"a", 3, {}}, Variable{"b", 3, {}}, Variable{"c", 2, {}}});
    auto random_action = [&](const std::string& name) {
        const VarId gvar = rng.below(3);
        const Value gval =
            static_cast<Value>(rng.below(static_cast<std::uint64_t>(
                space->variable(gvar).domain_size)));
        const VarId tvar = rng.below(3);
        const Value tval =
            static_cast<Value>(rng.below(static_cast<std::uint64_t>(
                space->variable(tvar).domain_size)));
        const Predicate guard(
            "g", [gvar, gval](const StateSpace& sp, StateIndex s) {
                return sp.get(s, gvar) == gval;
            });
        return Action::assign_const(*space, name, guard,
                                    space->variable(tvar).name, tval);
    };

    Program p(space, "random");
    const std::size_t num_actions = 2 + rng.below(4);
    for (std::size_t i = 0; i < num_actions; ++i)
        p.add_action(random_action("ac" + std::to_string(i)));

    FaultClass f(space, "F");
    f.add_action(random_action("fault0"));

    // Random safety spec: forbid one state value combination and one
    // transition pattern.
    const Value bad_a =
        static_cast<Value>(rng.below(3));
    const Value bad_b = static_cast<Value>(rng.below(3));
    SafetySpec safety(
        "random-safety",
        Predicate("bad",
                  [bad_a, bad_b](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, 0) == bad_a && sp.get(s, 1) == bad_b &&
                             sp.get(s, 2) == 1;
                  }),
        [](const StateSpace& sp, StateIndex from, StateIndex to) {
            // Forbid simultaneously "leaving a==0" observations that also
            // flip c — an arbitrary but fixed transition constraint.
            return sp.get(from, 0) == 0 && sp.get(to, 0) != 0 &&
                   sp.get(from, 2) != sp.get(to, 2);
        });

    return RandomSystem{space, std::move(p), std::move(f),
                        std::move(safety)};
}

class RandomProgramTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomProgramTest, ReachableSetIsClosed) {
    RandomSystem sys = random_system(GetParam());
    const Predicate init = Predicate::var_eq(*sys.space, "a", 0);
    auto reach = std::make_shared<StateSet>(
        reachable_states(sys.program, nullptr, init));
    EXPECT_TRUE(
        check_closed(sys.program, predicate_of(reach, "reach")).ok);
}

TEST_P(RandomProgramTest, CanonicalSpanSatisfiesSpanDefinition) {
    RandomSystem sys = random_system(GetParam());
    const Predicate init = Predicate::var_eq(*sys.space, "b", 1);
    const FaultSpan span =
        compute_fault_span(sys.program, sys.faults, init);
    EXPECT_TRUE(
        check_is_fault_span(sys.program, sys.faults, init, span.predicate)
            .ok);
}

TEST_P(RandomProgramTest, FailsafeSynthesisNeverTakesBadStep) {
    RandomSystem sys = random_system(GetParam());
    const FailsafeSynthesis fs = add_failsafe(sys.program, sys.safety);
    std::vector<StateIndex> succ;
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        for (const auto& ac : fs.program.actions()) {
            succ.clear();
            ac.successors(*sys.space, s, succ);
            for (StateIndex t : succ) {
                EXPECT_TRUE(sys.safety.transition_allowed(*sys.space, s, t));
                EXPECT_TRUE(sys.safety.state_allowed(*sys.space, t));
            }
        }
    }
}

TEST_P(RandomProgramTest, FailsafeSynthesisRefinesTheBase) {
    RandomSystem sys = random_system(GetParam());
    const FailsafeSynthesis fs = add_failsafe(sys.program, sys.safety);
    EXPECT_TRUE(refines_program(fs.program, sys.program, Predicate::top()).ok);
}

TEST_P(RandomProgramTest, FailsafeSynthesisEncapsulatesTheBase) {
    RandomSystem sys = random_system(GetParam());
    const FailsafeSynthesis fs = add_failsafe(sys.program, sys.safety);
    EXPECT_TRUE(check_encapsulates(fs.program, sys.program).ok);
}

TEST_P(RandomProgramTest, ParallelCompositionSuccessorsAreUnion) {
    RandomSystem a = random_system(GetParam());
    // Second program over the same space.
    Program q(a.space, "q");
    q.add_action(Action::assign_const(*a.space, "qx", Predicate::top(), "c",
                                      1));
    const Program pq = parallel(a.program, q);
    std::vector<StateIndex> lhs, rhs;
    for (StateIndex s = 0; s < a.space->num_states(); ++s) {
        lhs.clear();
        rhs.clear();
        pq.successors(s, lhs);
        a.program.successors(s, rhs);
        q.successors(s, rhs);
        EXPECT_EQ(lhs, rhs);
    }
}

TEST_P(RandomProgramTest, RestrictionShrinksBehaviour) {
    RandomSystem sys = random_system(GetParam());
    const Predicate z = Predicate::var_eq(*sys.space, "c", 0);
    const Program gated = restrict_program(z, sys.program);
    std::vector<StateIndex> gated_succ, base_succ;
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        gated_succ.clear();
        base_succ.clear();
        gated.successors(s, gated_succ);
        sys.program.successors(s, base_succ);
        if (z.eval(*sys.space, s)) {
            EXPECT_EQ(gated_succ, base_succ);
        } else {
            EXPECT_TRUE(gated_succ.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace dcft
