#include "verify/refinement.hpp"

#include <gtest/gtest.h>

#include "gc/composition.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

/// v < limit --> v := v+1.
Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(RefinesSpecTest, SafetyAndLivenessBothChecked) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    LivenessSpec live;
    live.add_eventually(at(*sp, 3));
    const ProblemSpec good("good", SafetySpec::never(at(*sp, 4)),
                           std::move(live));
    // The `from` predicate must be closed in p (refinement is judged from
    // an invariant, Section 2.2.1) — v == 0 alone is not.
    const Predicate from("v<=3", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 3;
    });
    EXPECT_TRUE(refines_spec(p, good, from).ok);
    EXPECT_FALSE(refines_spec(p, good, at(*sp, 0)).ok);  // not closed
}

TEST(RefinesSpecTest, ClosureFailureReported) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    // v==0 is not closed (inc leaves it immediately).
    const CheckResult r =
        refines_spec(p, ProblemSpec("s", SafetySpec(), {}), at(*sp, 0) ||
                                                               at(*sp, 1));
    EXPECT_FALSE(r.ok);
}

TEST(RefinesSpecTest, BadStateDetected) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    const ProblemSpec spec("no-2", SafetySpec::never(at(*sp, 2)), {});
    const Predicate from("v<=3", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 3;
    });
    const CheckResult r = refines_spec(p, spec, from);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("safety violated"), std::string::npos);
}

TEST(RefinesSpecTest, BadTransitionDetected) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    const ProblemSpec spec(
        "no-1to2", SafetySpec::pair(at(*sp, 1), !at(*sp, 2)), {});
    const Predicate from("v<=3", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 3;
    });
    EXPECT_FALSE(refines_spec(p, spec, from).ok);
}

TEST(RefinesSpecTest, LivenessFailureDetected) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 2);  // stops at 2
    LivenessSpec live;
    live.add_eventually(at(*sp, 3));
    const ProblemSpec spec("reach-3", SafetySpec(), std::move(live));
    EXPECT_FALSE(refines_spec(p, spec, at(*sp, 0)).ok);
}

TEST(RefinesSpecTest, FaultStepsMustSatisfySafetyToo) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "corrupt", at(*sp, 1), "v", 4));
    const ProblemSpec spec(
        "never-jump-to-4", SafetySpec::pair(Predicate::top(), !at(*sp, 4)),
        {});
    const Predicate from("v<=2", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 2;
    });
    // Without faults the program satisfies the spec...
    EXPECT_TRUE(refines_spec(p, spec, from).ok);
    // ...but the fault's own transition violates it. Note `from` must also
    // be widened to stay closed under the fault.
    const Predicate span("v<=4", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 4;
    });
    const CheckResult r = refines_spec(p, spec, span, RefinesOptions{&f});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("fault step"), std::string::npos);
}

TEST(RefinesProgramTest, IdenticalProgramRefines) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    EXPECT_TRUE(refines_program(p, p, Predicate::top()).ok);
}

TEST(RefinesProgramTest, RestrictionRefines) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    const Program gated = restrict_program(at(*sp, 1), p);
    EXPECT_TRUE(refines_program(gated, p, Predicate::top()).ok);
}

TEST(RefinesProgramTest, ExtraVariableStuttersAreAllowed) {
    auto sp = make_space({Variable{"v", 3, {}}, Variable{"aux", 2, {}}});
    Program base(sp, sp->varset({"v"}), "base");
    base.add_action(Action::assign_const(
        *sp, "go", Predicate::var_eq(*sp, "v", 0), "v", 1));
    Program extended(sp, "ext");
    extended.add_action(base.action(0));
    extended.add_action(Action::assign_const(
        *sp, "mark", Predicate::var_eq(*sp, "aux", 0), "aux", 1));
    EXPECT_TRUE(refines_program(extended, base, Predicate::top()).ok);
}

TEST(RefinesProgramTest, ForeignStepRejected) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);
    Program rogue(sp, "rogue");
    rogue.add_action(Action::assign_const(*sp, "jump", at(*sp, 0), "v", 4));
    const CheckResult r = refines_program(rogue, p, Predicate::top());
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("refinement violated"), std::string::npos);
}

TEST(ConvergesTest, ReachesTarget) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 4);
    EXPECT_TRUE(converges(p, nullptr, Predicate::top(), at(*sp, 4)).ok);
}

TEST(ConvergesTest, FaultsCanBlockConvergence) {
    auto sp = counter_space(5);
    const Program p = incrementer(sp, 3);  // deadlocks at 3
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "reset", at(*sp, 2), "v", 0));
    // Without faults, converges to 3 from anywhere <= 3.
    const Predicate from("v<=3", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 3;
    });
    EXPECT_TRUE(converges(p, nullptr, from, at(*sp, 3)).ok);
    // The reset fault only delays convergence finitely often — still ok.
    EXPECT_TRUE(converges(p, &f, from, at(*sp, 3)).ok);
    // But a fault that jumps past the guard creates a stuck state.
    FaultClass g(sp, "G");
    g.add_action(Action::assign_const(*sp, "overshoot", at(*sp, 2), "v", 4));
    EXPECT_FALSE(converges(p, &g, from, at(*sp, 3)).ok);
}

TEST(RefinesWeakenedTest, GradesDifferInStrictness) {
    auto sp = counter_space(6);
    // Program: from 0, diverge to a "bad" detour 4 -> 5 -> target 3?
    // Simpler: inc to 3; spec requires never 2 (violated on the way).
    const Program p = incrementer(sp, 3);
    LivenessSpec live;
    live.add_eventually(at(*sp, 3));
    SafetySpec safety = SafetySpec::never(at(*sp, 1));
    const ProblemSpec spec("demo", safety, live);
    const Predicate from("v<=3", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 3;
    });
    // Masking: full spec — fails (state 1 occurs).
    EXPECT_FALSE(refines_weakened(p, nullptr, spec, Tolerance::Masking, from,
                                  at(*sp, 3))
                     .ok);
    // Fail-safe: safety only — still fails on state 1.
    EXPECT_FALSE(refines_weakened(p, nullptr, spec, Tolerance::FailSafe,
                                  from, at(*sp, 3))
                     .ok);
    // Nonmasking via v==3: converges to 3, and from 3 the spec holds
    // (state 1 never recurs, liveness already satisfied).
    EXPECT_TRUE(refines_weakened(p, nullptr, spec, Tolerance::Nonmasking,
                                 from, at(*sp, 3))
                    .ok);
}

}  // namespace
}  // namespace dcft
