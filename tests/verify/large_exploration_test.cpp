// Large-instance exploration engine tests (DESIGN.md §7, "Large-instance
// exploration"): sparse-vs-direct interner graph identity, early-exit
// witness determinism across thread counts, the ExplorationCache fragment
// discipline (early-exit fragments are never served as full graphs), and
// the first_bad_node / early-exit equivalence that makes stop-predicate
// verdicts agree with full-graph scans.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/token_ring.hpp"
#include "spec/safety_spec.hpp"
#include "verify/closure.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/reachability.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

namespace dcft {
namespace {

/// Scoped environment override restoring the previous value on exit.
class EnvVarGuard {
public:
    EnvVarGuard(const char* name, const char* value) : name_(name) {
        if (const char* old = std::getenv(name)) {
            had_ = true;
            old_ = old;
        }
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvVarGuard() {
        if (had_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }
    EnvVarGuard(const EnvVarGuard&) = delete;
    EnvVarGuard& operator=(const EnvVarGuard&) = delete;

private:
    std::string name_;
    bool had_ = false;
    std::string old_;
};

/// Full structural equality: numbering, roots, edges, witnesses.
void expect_identical(const TransitionSystem& a, const TransitionSystem& b) {
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    ASSERT_EQ(a.initial_nodes(), b.initial_nodes());
    ASSERT_EQ(a.num_program_edges(), b.num_program_edges());
    ASSERT_EQ(a.num_fault_edges(), b.num_fault_edges());
    ASSERT_EQ(a.complete(), b.complete());
    for (NodeId n = 0; n < a.num_nodes(); ++n) {
        ASSERT_EQ(a.state_of(n), b.state_of(n)) << "node " << n;
        const auto pa = a.program_edges(n);
        const auto pb = b.program_edges(n);
        ASSERT_EQ(pa.size(), pb.size()) << "node " << n;
        for (std::size_t i = 0; i < pa.size(); ++i) {
            ASSERT_EQ(pa[i].action, pb[i].action) << "node " << n;
            ASSERT_EQ(pa[i].to, pb[i].to) << "node " << n;
        }
        const auto fa = a.fault_edges(n);
        const auto fb = b.fault_edges(n);
        ASSERT_EQ(fa.size(), fb.size()) << "node " << n;
        for (std::size_t i = 0; i < fa.size(); ++i) {
            ASSERT_EQ(fa[i].action, fb[i].action) << "node " << n;
            ASSERT_EQ(fa[i].to, fb[i].to) << "node " << n;
        }
    }
    // Witness paths (BFS parents) agree on a spread of nodes.
    const NodeId last = static_cast<NodeId>(a.num_nodes() - 1);
    for (const NodeId n : {NodeId{0}, last / 3, last / 2, last}) {
        ASSERT_EQ(a.witness_path(n), b.witness_path(n)) << "node " << n;
    }
}

// ---------------------------------------------------------------------------
// Sparse interner vs direct map: bit-identical graphs on a >= 10^5-state
// system (token ring n=7, K=6: 279936 states, explored with faults from the
// legitimate set so the interner — not the identity fast path — is used).
// ---------------------------------------------------------------------------

TEST(SparseInternerTest, SparseAndDirectMappedGraphsAreIdentical) {
    const auto sys = apps::make_token_ring(7, 6);
    ASSERT_GE(sys.space->num_states(), 100000u);

    const TransitionSystem direct(sys.ring, &sys.corrupt_any, sys.legitimate,
                                  /*n_threads=*/2);
    ASSERT_TRUE(direct.complete());

    // Force the sparse sharded table at every size.
    const EnvVarGuard force("DCFT_DIRECT_MAP_MAX", "1024");
    for (const unsigned threads : {1u, 2u, 8u}) {
        const TransitionSystem sparse(sys.ring, &sys.corrupt_any,
                                      sys.legitimate, threads);
        expect_identical(direct, sparse);
        // Reverse lookups agree tier-to-tier.
        for (const NodeId n :
             {NodeId{0}, NodeId{17}, static_cast<NodeId>(sparse.num_nodes() - 1)}) {
            const StateIndex s = sparse.state_of(n);
            ASSERT_TRUE(sparse.has_state(s));
            ASSERT_EQ(sparse.node_of(s), n);
            ASSERT_EQ(direct.node_of(s), n);
        }
    }
}

// ---------------------------------------------------------------------------
// Early-exit semantics: bad_node() is the canonically least violating node,
// the fragment's numbering is a prefix of the full graph's, and verdicts /
// witnesses agree with full-graph scans — for every thread count.
// ---------------------------------------------------------------------------

TEST(EarlyExitTest, FragmentIsCanonicalPrefixAndAgreesWithFirstBadNode) {
    const auto sys = apps::make_token_ring(5, 5);  // 3125 states
    const Predicate bad = sys.spec.safety().bad_states();
    const TransitionSystem full(sys.ring, &sys.corrupt_any, sys.legitimate,
                                /*n_threads=*/1);
    const NodeId expect = full.first_bad_node(bad);
    ASSERT_NE(expect, TransitionSystem::kNoNode);

    for (const unsigned threads : {1u, 2u, 8u}) {
        ExploreOptions opts;
        opts.n_threads = threads;
        opts.stop_on = &bad;
        const TransitionSystem frag(sys.ring, &sys.corrupt_any,
                                    sys.legitimate, opts);
        ASSERT_FALSE(frag.complete());
        ASSERT_EQ(frag.bad_node(), expect);
        ASSERT_EQ(frag.witness_path(frag.bad_node()),
                  full.witness_path(expect));
        ASSERT_EQ(frag.format_witness(frag.bad_node()),
                  full.format_witness(expect));
        // Canonical-prefix property: every fragment node is the same node
        // of the full graph.
        ASSERT_LE(frag.num_nodes(), full.num_nodes());
        for (NodeId n = 0; n < frag.num_nodes(); ++n)
            ASSERT_EQ(frag.state_of(n), full.state_of(n)) << "node " << n;
    }
}

TEST(EarlyExitTest, StopPredicateThatNeverFiresYieldsTheCompleteGraph) {
    const auto sys = apps::make_token_ring(4, 4);
    const Predicate never("never-bad",
                          [](const StateSpace&, StateIndex) { return false; });
    ExploreOptions opts;
    opts.stop_on = &never;
    const TransitionSystem ts(sys.ring, &sys.corrupt_any, Predicate::top(),
                              opts);
    ASSERT_TRUE(ts.complete());
    const TransitionSystem plain(sys.ring, &sys.corrupt_any, Predicate::top(),
                                 1u);
    expect_identical(ts, plain);
    ASSERT_EQ(ts.first_bad_node(never), TransitionSystem::kNoNode);
}

// ---------------------------------------------------------------------------
// Early-exit obligations: check_unreachable / check_closed_reachable /
// check_tolerance(early_exit) agree with the full pipelines — verdicts,
// messages, and witness traces — across thread counts and cache bypass.
// ---------------------------------------------------------------------------

TEST(EarlyExitTest, CheckUnreachableMatchesFullGraphScan) {
    const auto sys = apps::make_token_ring(5, 5);
    const Predicate bad = sys.spec.safety().bad_states();

    // Reference: full exploration + canonical scan.
    const TransitionSystem full(sys.ring, &sys.corrupt_any, sys.legitimate,
                                1u);
    const NodeId b = full.first_bad_node(bad);
    ASSERT_NE(b, TransitionSystem::kNoNode);

    for (const char* threads : {"1", "2", "8"}) {
        const EnvVarGuard tg("DCFT_VERIFIER_THREADS", threads);
        for (const char* bypass :
             {static_cast<const char*>(nullptr), "1"}) {
            const EnvVarGuard cg("DCFT_NO_EXPLORE_CACHE", bypass);
            ExplorationCache::global().clear();
            const CheckResult r = check_unreachable(
                sys.ring, &sys.corrupt_any, sys.legitimate, bad);
            ASSERT_FALSE(r.ok);
            EXPECT_EQ(r.reason, "reachable: state " +
                                    sys.space->format(full.state_of(b)) +
                                    " satisfies " + bad.name() +
                                    "; witness: " + full.format_witness(b));
            ASSERT_EQ(r.witness.size(), full.witness_trace(b).size());
            EXPECT_EQ(r.witness, full.witness_trace(b));
        }
    }
    ExplorationCache::global().clear();

    // Unreachable case: nothing outside the fault span.
    const Predicate none("unreachable-bad", [](const StateSpace&,
                                               StateIndex) { return false; });
    EXPECT_TRUE(
        check_unreachable(sys.ring, &sys.corrupt_any, sys.legitimate, none)
            .ok);
}

TEST(EarlyExitTest, CheckClosedReachableMatchesCheckClosed) {
    const auto sys = apps::make_token_ring(5, 5);

    // Closed predicate: the legitimate set is closed in the ring.
    ExplorationCache::global().clear();
    EXPECT_TRUE(check_closed(sys.ring, sys.legitimate).ok);
    EXPECT_TRUE(check_closed_reachable(sys.ring, nullptr, sys.legitimate).ok);

    // Non-closed predicate: identical failure messages (program-only).
    const Predicate x0 = Predicate::var_eq(*sys.space, "x.0", 0);
    const CheckResult a = check_closed(sys.ring, x0);
    ExplorationCache::global().clear();
    const CheckResult b = check_closed_reachable(sys.ring, nullptr, x0);
    ASSERT_FALSE(a.ok);
    ASSERT_FALSE(b.ok);
    EXPECT_EQ(a.reason, b.reason);
    ASSERT_FALSE(b.witness.empty());

    // With faults: verdict-equivalent to check_closed && check_preserved.
    ExplorationCache::global().clear();
    const CheckResult c =
        check_closed_reachable(sys.ring, &sys.corrupt_any, sys.legitimate);
    const bool ref = check_closed(sys.ring, sys.legitimate).ok &&
                     check_preserved(sys.corrupt_any, sys.legitimate).ok;
    EXPECT_EQ(c.ok, ref);
}

TEST(EarlyExitTest, FailsafeToleranceEarlyExitMatchesDefaultPipeline) {
    const auto sys = apps::make_token_ring(5, 5);
    ASSERT_TRUE(sys.spec.safety().state_only());

    for (const char* threads : {"1", "2", "8"}) {
        const EnvVarGuard tg("DCFT_VERIFIER_THREADS", threads);
        ExplorationCache::global().clear();
        const ToleranceReport slow = check_tolerance(
            sys.ring, sys.corrupt_any, sys.spec, sys.legitimate,
            Tolerance::FailSafe);
        ExplorationCache::global().clear();
        ToleranceOptions opts;
        opts.early_exit = true;
        const ToleranceReport fast = check_tolerance(
            sys.ring, sys.corrupt_any, sys.spec, sys.legitimate,
            Tolerance::FailSafe, opts);

        // The corrupt-any faults break mutual exclusion: both pipelines
        // must fail with the exact same counterexample.
        ASSERT_FALSE(slow.ok()) << "threads=" << threads;
        ASSERT_FALSE(fast.ok()) << "threads=" << threads;
        EXPECT_EQ(slow.in_absence.ok, fast.in_absence.ok);
        EXPECT_EQ(slow.in_presence.reason, fast.in_presence.reason);
        EXPECT_EQ(slow.in_presence.witness, fast.in_presence.witness);
        EXPECT_TRUE(slow.span_complete);
        EXPECT_FALSE(fast.span_complete);
        EXPECT_LE(fast.span_size, slow.span_size);

        // With the full graph already cached, the early-exit path is
        // served the complete graph and reproduces the default report.
        const ToleranceReport cached = check_tolerance(
            sys.ring, sys.corrupt_any, sys.spec, sys.legitimate,
            Tolerance::FailSafe, opts);
        ExplorationCache::global().clear();
        // (cache kept from `fast`? fragments are never cached, so this
        //  rebuilt the fragment — still the same counterexample.)
        EXPECT_EQ(cached.in_presence.reason, fast.in_presence.reason);
        EXPECT_EQ(cached.in_presence.witness, fast.in_presence.witness);
    }
    ExplorationCache::global().clear();
}

TEST(EarlyExitTest, RefinesSpecEarlyExitAgreesWithDefault) {
    const auto sys = apps::make_token_ring(4, 4);
    const ProblemSpec failsafe = sys.spec.failsafe_weakening();
    ASSERT_TRUE(failsafe.safety().state_only());
    ASSERT_TRUE(failsafe.liveness().obligations().empty());

    RefinesOptions fast;
    fast.faults = &sys.corrupt_any;
    fast.early_exit = true;
    RefinesOptions slow;
    slow.faults = &sys.corrupt_any;

    // Failing query (faults escape the safety part of SPEC_token).
    ExplorationCache::global().clear();
    const CheckResult a = refines_spec(sys.ring, failsafe, sys.legitimate,
                                       slow);
    ExplorationCache::global().clear();
    const CheckResult b = refines_spec(sys.ring, failsafe, sys.legitimate,
                                       fast);
    EXPECT_EQ(a.ok, b.ok);
    ASSERT_FALSE(b.ok);
    ASSERT_FALSE(b.witness.empty());

    // Passing query: program-only refinement from the legitimate set.
    ExplorationCache::global().clear();
    RefinesOptions fast_nf;
    fast_nf.early_exit = true;
    EXPECT_TRUE(refines_spec(sys.ring, failsafe, sys.legitimate, fast_nf).ok);
    EXPECT_TRUE(refines_spec(sys.ring, failsafe, sys.legitimate, {}).ok);
    ExplorationCache::global().clear();
}

// ---------------------------------------------------------------------------
// ExplorationCache discipline: early-exit fragments are never served as
// full graphs; complete early-exit builds are published and shared.
// ---------------------------------------------------------------------------

TEST(ExplorationCacheFragmentTest, FragmentsAreNeverCachedAsFullGraphs) {
    const auto sys = apps::make_token_ring(4, 4);  // 256 states
    const Predicate bad = sys.spec.safety().bad_states();
    ExplorationCache& cache = ExplorationCache::global();
    cache.clear();

    // 1. Early-exit miss builds a fragment...
    const auto frag = cache.get_or_build_early_exit(
        sys.ring, &sys.corrupt_any, sys.legitimate, bad);
    ASSERT_FALSE(frag->complete());

    // 2. ...which must NOT satisfy a later full request for the same key.
    const auto full =
        cache.get_or_build(sys.ring, &sys.corrupt_any, sys.legitimate);
    ASSERT_TRUE(full->complete());
    EXPECT_NE(frag.get(), full.get());
    EXPECT_GT(full->num_nodes(), frag->num_nodes());

    // 3. With the full graph resident, early-exit requests are served the
    //    complete graph (same shared object).
    const auto hit = cache.get_or_build_early_exit(
        sys.ring, &sys.corrupt_any, sys.legitimate, bad);
    EXPECT_EQ(hit.get(), full.get());
    ASSERT_TRUE(hit->complete());
    EXPECT_NE(hit->first_bad_node(bad), TransitionSystem::kNoNode);

    // 4. A complete early-exit build (stop never fires) IS published: the
    //    next full request shares it.
    cache.clear();
    const Predicate never("never-bad",
                          [](const StateSpace&, StateIndex) { return false; });
    const auto done = cache.get_or_build_early_exit(
        sys.ring, &sys.corrupt_any, sys.legitimate, never);
    ASSERT_TRUE(done->complete());
    const auto shared =
        cache.get_or_build(sys.ring, &sys.corrupt_any, sys.legitimate);
    EXPECT_EQ(done.get(), shared.get());
    cache.clear();
}

}  // namespace
}  // namespace dcft
