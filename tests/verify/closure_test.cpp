#include "verify/closure.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 6, {}}});
}

TEST(ClosureTest, ClosedPredicateAccepted) {
    auto sp = counter_space();
    Program p(sp, "inc-to-3");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<3",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < 3;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    // v <= 3 is closed (the program never goes past 3).
    const Predicate le3("v<=3", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 3;
    });
    EXPECT_TRUE(check_closed(p, le3).ok);
    // v <= 2 is not closed: inc moves 2 -> 3.
    const Predicate le2("v<=2", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 2;
    });
    const CheckResult r = check_closed(p, le2);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.reason.find("not preserved"), std::string::npos);
}

TEST(ClosureTest, TrueAndFalseAreTriviallyClosed) {
    // The paper notes true and false are closed in every program.
    auto sp = counter_space();
    Program p(sp, "p");
    p.add_action(Action::nondet(
        "scramble", Predicate::top(),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            for (Value c = 0; c < 6; ++c) out.push_back(space.set(s, 0, c));
        }));
    EXPECT_TRUE(check_closed(p, Predicate::top()).ok);
    EXPECT_TRUE(check_closed(p, Predicate::bottom()).ok);
}

TEST(ClosureTest, NondeterministicSuccessorsAllChecked) {
    auto sp = counter_space();
    Program p(sp, "p");
    p.add_action(Action::nondet(
        "fork", Predicate::var_eq(*sp, "v", 0),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 1));
            out.push_back(space.set(s, 0, 5));  // escapes v <= 1
        }));
    const Predicate le1("v<=1", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 1;
    });
    EXPECT_FALSE(check_closed(p, le1).ok);
}

TEST(ClosureTest, FaultPreservationChecked) {
    auto sp = counter_space();
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "corrupt",
                                      Predicate::var_eq(*sp, "v", 1), "v", 4));
    const Predicate le2("v<=2", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 2;
    });
    EXPECT_FALSE(check_preserved(f, le2).ok);
    const Predicate le5("v<=5", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 5;
    });
    EXPECT_TRUE(check_preserved(f, le5).ok);
}

TEST(ClosureTest, EmptyProgramPreservesEverything) {
    auto sp = counter_space();
    const Program p(sp, "empty");
    EXPECT_TRUE(check_closed(p, Predicate::var_eq(*sp, "v", 2)).ok);
}

}  // namespace
}  // namespace dcft
