#include "verify/fault_span.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space(Value n) {
    return make_space({Variable{"v", n, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(FaultSpanTest, CanonicalSpanIsReachableClosure) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "bump", at(*sp, 2), "v", 5));
    const FaultSpan span = compute_fault_span(p, f, at(*sp, 0));
    // 0,1,2 by the program; 5 by the fault; 5 is terminal for inc? no:
    // inc guard v<2 is false at 5, so nothing further.
    EXPECT_EQ(span.states->count(), 4u);
    EXPECT_TRUE(span.predicate.eval(*sp, 5));
    EXPECT_FALSE(span.predicate.eval(*sp, 6));
}

TEST(FaultSpanTest, SpanSatisfiesDefinition) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "bump", at(*sp, 2), "v", 5));
    const FaultSpan span = compute_fault_span(p, f, at(*sp, 0));
    EXPECT_TRUE(check_is_fault_span(p, f, at(*sp, 0), span.predicate).ok);
}

TEST(FaultSpanTest, DefinitionRejectsNonSuperset) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    // T must contain S.
    EXPECT_FALSE(
        check_is_fault_span(p, f, at(*sp, 0), at(*sp, 1)).ok);
}

TEST(FaultSpanTest, DefinitionRejectsNonClosed) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 3);
    FaultClass f(sp, "F");
    // v <= 1 contains S = {0} but inc escapes it.
    const Predicate t("v<=1", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 1;
    });
    EXPECT_FALSE(check_is_fault_span(p, f, at(*sp, 0), t).ok);
}

TEST(FaultSpanTest, DefinitionRejectsFaultEscape) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "bump", at(*sp, 2), "v", 7));
    const Predicate t("v<=2", [](const StateSpace& space, StateIndex s) {
        return space.get(s, 0) <= 2;
    });
    EXPECT_FALSE(check_is_fault_span(p, f, at(*sp, 0), t).ok);
}

TEST(FaultSpanTest, WiderSpansAlsoSatisfyDefinition) {
    // The canonical span is the smallest; any closed superset qualifies.
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 2);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "bump", at(*sp, 2), "v", 5));
    EXPECT_TRUE(
        check_is_fault_span(p, f, at(*sp, 0), Predicate::top()).ok);
}

TEST(FaultSpanTest, NoFaultsMeansSpanIsProgramClosure) {
    auto sp = counter_space(8);
    const Program p = incrementer(sp, 3);
    FaultClass f(sp, "F");  // empty
    const FaultSpan span = compute_fault_span(p, f, at(*sp, 1));
    EXPECT_EQ(span.states->count(), 3u);  // 1, 2, 3
}

}  // namespace
}  // namespace dcft
