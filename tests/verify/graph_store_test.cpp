// Persistent graph store (verify/graph_store.hpp): snapshot round-trips
// are bit-identical to the explored graph across thread counts and
// in-core vs spill builds; keys are stable within a run and distinct
// across systems; corrupted/truncated/version-skewed files are rejected
// with clear errors (never a crash, never a silently wrong graph); the
// byte budget evicts least-recently-used entries; and the
// ExplorationCache serves repeat queries — including early-exit ones —
// from the store after its in-memory entries are gone.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "apps/token_ring.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/graph_store.hpp"

namespace dcft {
namespace {

/// Scoped environment override restoring the previous value on exit.
class EnvGuard {
public:
    EnvGuard(const char* name, const char* value) : name_(name) {
        if (const char* prev = ::getenv(name)) prev_ = prev;
        if (value != nullptr)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~EnvGuard() {
        if (prev_.has_value())
            ::setenv(name_, prev_->c_str(), 1);
        else
            ::unsetenv(name_);
    }

private:
    const char* name_;
    std::optional<std::string> prev_;
};

/// A fresh store directory, removed with its contents on destruction.
class TempStore {
public:
    TempStore() {
        char tmpl[] = "/tmp/dcft-store-test-XXXXXX";
        dir_ = ::mkdtemp(tmpl);
    }
    ~TempStore() {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    const std::string& dir() const { return dir_; }

private:
    std::string dir_;
};

template <typename T>
void expect_span_eq(std::span<const T> a, std::span<const T> b,
                    const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    ASSERT_TRUE(a.empty() ||
                std::memcmp(a.data(), b.data(), a.size_bytes()) == 0)
        << what << " differ";
}

/// Full structural comparison: every array the snapshot carries, plus the
/// rebuilt interner answering exactly like the original.
void expect_bit_identical(const TransitionSystem& a,
                          const TransitionSystem& b) {
    expect_span_eq(a.raw_states(), b.raw_states(), "states");
    expect_span_eq(a.raw_parent(), b.raw_parent(), "parent");
    expect_span_eq(a.raw_prog_offsets(), b.raw_prog_offsets(),
                   "prog_offsets");
    expect_span_eq(a.raw_prog_edges(), b.raw_prog_edges(), "prog_edges");
    expect_span_eq(a.raw_fault_offsets(), b.raw_fault_offsets(),
                   "fault_offsets");
    expect_span_eq(a.raw_fault_edges(), b.raw_fault_edges(), "fault_edges");
    ASSERT_EQ(a.initial_nodes(), b.initial_nodes());
    ASSERT_EQ(a.num_fault_actions(), b.num_fault_actions());
    for (std::uint32_t f = 0; f < a.num_fault_actions(); ++f)
        EXPECT_EQ(a.fault_action_name(f), b.fault_action_name(f));
    EXPECT_TRUE(b.complete());
    // Interner round-trip (forces the lazy rebuild on the adopted side).
    for (NodeId n = 0; n < a.num_nodes(); n += 7) {
        const StateIndex s = a.state_of(n);
        ASSERT_TRUE(b.has_state(s));
        ASSERT_EQ(b.node_of(s), n);
    }
}

GraphKey key_of(const apps::TokenRingSystem& sys, const Predicate& init) {
    return graph_key(sys.ring, &sys.corrupt_any,
                     eval_bits(*sys.space, init));
}

TEST(GraphStoreTest, RoundTripIsBitIdenticalAcrossThreadCounts) {
    auto sys = apps::make_token_ring(4, 4);
    TempStore tmp;
    GraphStore store(tmp.dir(), 0);
    const GraphKey key = key_of(sys, sys.legitimate);

    const TransitionSystem reference(sys.ring, &sys.corrupt_any,
                                     sys.legitimate, 1);
    ASSERT_TRUE(store.save(key, reference));
    ASSERT_TRUE(store.contains(key));

    for (unsigned threads : {1u, 2u, 8u}) {
        const TransitionSystem fresh(sys.ring, &sys.corrupt_any,
                                     sys.legitimate, threads);
        std::string error;
        auto loaded = store.load(key, sys.ring, &sys.corrupt_any, &error);
        ASSERT_NE(loaded, nullptr) << error;
        expect_bit_identical(fresh, *loaded);
    }
}

TEST(GraphStoreTest, SpillBuiltSnapshotMatchesInCoreBuild) {
    auto sys = apps::make_token_ring(4, 4);
    TempStore tmp;
    GraphStore store(tmp.dir(), 0);
    const GraphKey key = key_of(sys, sys.legitimate);

    ExploreOptions spill_opts;
    spill_opts.spill = true;
    const TransitionSystem spilled(sys.ring, &sys.corrupt_any,
                                   sys.legitimate, spill_opts);
    ASSERT_TRUE(spilled.spilled());
    ASSERT_TRUE(store.save(key, spilled));

    const TransitionSystem in_core(sys.ring, &sys.corrupt_any,
                                   sys.legitimate);
    auto loaded = store.load(key, sys.ring, &sys.corrupt_any);
    ASSERT_NE(loaded, nullptr);
    expect_bit_identical(in_core, *loaded);
    EXPECT_FALSE(loaded->spilled());
}

TEST(GraphStoreTest, KeysSeparateSystemsFaultsAndInitialSets) {
    auto sys = apps::make_token_ring(4, 4);
    auto other = apps::make_token_ring(3, 4);
    const BitVec legit = eval_bits(*sys.space, sys.legitimate);
    const BitVec top = eval_bits(*sys.space, Predicate::top());

    const GraphKey base = graph_key(sys.ring, &sys.corrupt_any, legit);
    EXPECT_EQ(base, graph_key(sys.ring, &sys.corrupt_any, legit))
        << "key must be deterministic";
    EXPECT_NE(base, graph_key(sys.ring, nullptr, legit));
    EXPECT_NE(base, graph_key(sys.ring, &sys.corrupt_any, top));
    EXPECT_NE(base, graph_key(other.ring, &other.corrupt_any,
                              eval_bits(*other.space, other.legitimate)));
}

TEST(GraphStoreTest, CorruptedTruncatedAndVersionSkewedFilesAreRejected) {
    auto sys = apps::make_token_ring(3, 3);
    TempStore tmp;
    GraphStore store(tmp.dir(), 0);
    const GraphKey key = key_of(sys, Predicate::top());
    const TransitionSystem ts(sys.ring, &sys.corrupt_any, Predicate::top());
    ASSERT_TRUE(store.save(key, ts));
    const std::string path = tmp.dir() + "/" + key.hex() + ".dcftg";
    const auto file_size = std::filesystem::file_size(path);

    auto patch = [&](std::size_t at, const void* bytes, std::size_t n) {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(static_cast<std::streamoff>(at));
        f.write(static_cast<const char*>(bytes),
                static_cast<std::streamsize>(n));
    };
    auto load_error = [&]() {
        std::string error;
        auto loaded = store.load(key, sys.ring, &sys.corrupt_any, &error);
        EXPECT_EQ(loaded, nullptr);
        return error;
    };

    // Payload corruption: flip one byte mid-file.
    {
        std::ifstream f(path, std::ios::binary);
        f.seekg(static_cast<std::streamoff>(file_size / 2));
        char byte = 0;
        f.read(&byte, 1);
        const char flipped = static_cast<char>(byte ^ 0x40);
        patch(file_size / 2, &flipped, 1);
        EXPECT_NE(load_error().find("checksum"), std::string::npos);
        patch(file_size / 2, &byte, 1);  // restore
    }
    // Version skew (validated before the header digest, so the message
    // names the version).
    {
        const std::uint32_t bad_version = 99;
        patch(8, &bad_version, sizeof(bad_version));
        EXPECT_NE(load_error().find("version"), std::string::npos);
        const std::uint32_t good_version = 1;
        patch(8, &good_version, sizeof(good_version));
    }
    // Header corruption (key bytes): caught by the header digest.
    {
        const std::uint64_t garbage = 0xDEADBEEF;
        patch(16, &garbage, sizeof(garbage));
        EXPECT_NE(load_error().find("checksum"), std::string::npos);
    }
    // Restore a clean copy, then truncate it.
    ASSERT_TRUE(store.save(key, ts));
    std::filesystem::resize_file(path, file_size / 2);
    EXPECT_NE(load_error().find("truncated"), std::string::npos);
    // Not a dcft.graph file at all.
    {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        const std::string junk(8192, 'x');
        f.write(junk.data(), static_cast<std::streamsize>(junk.size()));
    }
    EXPECT_NE(load_error().find("magic"), std::string::npos);
    // A sane file still loads after all that (save republishes).
    ASSERT_TRUE(store.save(key, ts));
    std::string error;
    auto loaded = store.load(key, sys.ring, &sys.corrupt_any, &error);
    ASSERT_NE(loaded, nullptr) << error;
    expect_bit_identical(ts, *loaded);
}

TEST(GraphStoreTest, ByteBudgetEvictsLeastRecentlyUsed) {
    auto sys = apps::make_token_ring(3, 3);
    TempStore tmp;
    const TransitionSystem with_faults(sys.ring, &sys.corrupt_any,
                                       Predicate::top());
    const TransitionSystem no_faults(sys.ring, nullptr, Predicate::top());
    const TransitionSystem legit(sys.ring, &sys.corrupt_any,
                                 sys.legitimate);
    const BitVec top = eval_bits(*sys.space, Predicate::top());
    const GraphKey k1 = graph_key(sys.ring, &sys.corrupt_any, top);
    const GraphKey k2 = graph_key(sys.ring, nullptr, top);
    const GraphKey k3 = key_of(sys, sys.legitimate);

    // Budget below three snapshots: the oldest (by mtime) must go. Use an
    // unlimited store first to learn the file sizes.
    {
        GraphStore probe(tmp.dir(), 0);
        ASSERT_TRUE(probe.save(k1, with_faults));
        const auto one = std::filesystem::file_size(
            tmp.dir() + "/" + k1.hex() + ".dcftg");
        std::filesystem::remove(tmp.dir() + "/" + k1.hex() + ".dcftg");

        GraphStore store(tmp.dir(), 2 * one + one / 2);
        ASSERT_TRUE(store.save(k1, with_faults));
        struct timespec times[2] = {{1, 0}, {1, 0}};  // age the first entry
        ASSERT_EQ(::utimensat(AT_FDCWD,
                              (tmp.dir() + "/" + k1.hex() + ".dcftg").c_str(),
                              times, 0),
                  0);
        ASSERT_TRUE(store.save(k2, no_faults));
        ASSERT_TRUE(store.save(k3, legit));
        EXPECT_FALSE(store.contains(k1)) << "oldest entry must be evicted";
        EXPECT_TRUE(store.contains(k3)) << "fresh entry must survive";
    }
}

TEST(GraphStoreTest, ExplorationCacheServesRepeatQueriesFromStore) {
    TempStore tmp;
    EnvGuard store_env("DCFT_GRAPH_STORE", tmp.dir().c_str());
    EnvGuard cache_env("DCFT_NO_EXPLORE_CACHE", nullptr);
    auto& cache = ExplorationCache::global();
    cache.clear();

    auto sys = apps::make_token_ring(4, 4);
    const auto cold =
        cache.get_or_build(sys.ring, &sys.corrupt_any, sys.legitimate);
    ASSERT_TRUE(cold->complete());

    // Forget the in-memory entry: the next query must come back from the
    // store as an adopted snapshot, not a re-exploration (pointer differs,
    // content identical).
    cache.clear();
    const auto warm =
        cache.get_or_build(sys.ring, &sys.corrupt_any, sys.legitimate);
    EXPECT_NE(cold.get(), warm.get());
    expect_bit_identical(*cold, *warm);

    // Early-exit queries are served from the store too: the stored graph
    // is complete, so the caller scans it via first_bad_node.
    cache.clear();
    const Predicate bad("two_privileges", [&sys](const StateSpace& sp,
                                                 StateIndex s) {
        int privileged = 0;
        for (int i = 0; i < sys.n; ++i)
            privileged += sys.privilege(i).eval(sp, s) ? 1 : 0;
        return privileged >= 2;
    });
    const auto early = cache.get_or_build_early_exit(
        sys.ring, &sys.corrupt_any, sys.legitimate, bad);
    ASSERT_TRUE(early->complete())
        << "store-served early-exit query must yield the full graph";
    expect_bit_identical(*cold, *early);

    cache.clear();
}

TEST(GraphStoreTest, ExplorationCacheByteBudgetEvictsReadyEntries) {
    EnvGuard bytes_env("DCFT_EXPLORE_CACHE_BYTES", "1");  // evict ~all
    EnvGuard store_env("DCFT_GRAPH_STORE", nullptr);
    auto& cache = ExplorationCache::global();
    cache.clear();

    auto sys = apps::make_token_ring(4, 4);
    const auto a =
        cache.get_or_build(sys.ring, &sys.corrupt_any, Predicate::top());
    const auto b = cache.get_or_build(sys.ring, nullptr, Predicate::top());
    // The MRU entry is always retained; older ready entries fall to the
    // 1-byte budget.
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_LE(cache.resident_bytes(), b->resident_bytes());

    // And without a budget the same pair coexists.
    cache.clear();
    {
        EnvGuard no_budget("DCFT_EXPLORE_CACHE_BYTES", nullptr);
        const auto c = cache.get_or_build(sys.ring, &sys.corrupt_any,
                                          Predicate::top());
        const auto d =
            cache.get_or_build(sys.ring, nullptr, Predicate::top());
        EXPECT_EQ(cache.size(), 2u);
        EXPECT_EQ(cache.resident_bytes(),
                  c->resident_bytes() + d->resident_bytes());
    }
    cache.clear();
}

}  // namespace
}  // namespace dcft
