// The shared DCFT_* environment parsing rule (common/env.hpp): one
// truthiness table for every boolean flag, one positive-integer parser for
// every numeric knob — and the consumers (telemetry, compile gate,
// exploration cache) all observe the shared rule, including the historical
// bugs it fixes ("00" and "false" used to count as enabled).
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hpp"
#include "obs/telemetry.hpp"
#include "verify/action_kernel.hpp"
#include "verify/exploration_cache.hpp"

namespace dcft {
namespace {

TEST(EnvTest, TruthinessTable) {
    // Falsy: unset, empty, pure zeros, false/off/no in any case.
    EXPECT_FALSE(env_value_truthy(nullptr));
    EXPECT_FALSE(env_value_truthy(""));
    EXPECT_FALSE(env_value_truthy("0"));
    EXPECT_FALSE(env_value_truthy("00"));
    EXPECT_FALSE(env_value_truthy("0000"));
    EXPECT_FALSE(env_value_truthy("false"));
    EXPECT_FALSE(env_value_truthy("FALSE"));
    EXPECT_FALSE(env_value_truthy("False"));
    EXPECT_FALSE(env_value_truthy("off"));
    EXPECT_FALSE(env_value_truthy("OFF"));
    EXPECT_FALSE(env_value_truthy("no"));
    EXPECT_FALSE(env_value_truthy("No"));

    // Truthy: everything else.
    EXPECT_TRUE(env_value_truthy("1"));
    EXPECT_TRUE(env_value_truthy("01"));
    EXPECT_TRUE(env_value_truthy("true"));
    EXPECT_TRUE(env_value_truthy("TRUE"));
    EXPECT_TRUE(env_value_truthy("yes"));
    EXPECT_TRUE(env_value_truthy("on"));
    EXPECT_TRUE(env_value_truthy("2"));
    EXPECT_TRUE(env_value_truthy("x"));
    EXPECT_TRUE(env_value_truthy("0x"));
    EXPECT_TRUE(env_value_truthy(" 0"));  // not *entirely* zeros
}

TEST(EnvTest, FlagReadsEnvironment) {
    unsetenv("DCFT_ENV_TEST_FLAG");
    EXPECT_FALSE(env_flag_enabled("DCFT_ENV_TEST_FLAG"));
    setenv("DCFT_ENV_TEST_FLAG", "1", 1);
    EXPECT_TRUE(env_flag_enabled("DCFT_ENV_TEST_FLAG"));
    setenv("DCFT_ENV_TEST_FLAG", "false", 1);
    EXPECT_FALSE(env_flag_enabled("DCFT_ENV_TEST_FLAG"));
    setenv("DCFT_ENV_TEST_FLAG", "00", 1);
    EXPECT_FALSE(env_flag_enabled("DCFT_ENV_TEST_FLAG"));
    unsetenv("DCFT_ENV_TEST_FLAG");
}

TEST(EnvTest, PositiveU64) {
    unsetenv("DCFT_ENV_TEST_NUM");
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), std::nullopt);
    setenv("DCFT_ENV_TEST_NUM", "", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), std::nullopt);
    setenv("DCFT_ENV_TEST_NUM", "0", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), std::nullopt);
    setenv("DCFT_ENV_TEST_NUM", "-3", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), std::nullopt);
    setenv("DCFT_ENV_TEST_NUM", "junk", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), std::nullopt);
    setenv("DCFT_ENV_TEST_NUM", "12junk", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), std::nullopt);
    setenv("DCFT_ENV_TEST_NUM", "8", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), 8u);
    setenv("DCFT_ENV_TEST_NUM", "123456789", 1);
    EXPECT_EQ(env_positive_u64("DCFT_ENV_TEST_NUM"), 123456789u);
    unsetenv("DCFT_ENV_TEST_NUM");
}

// -- consumers observe the shared rule (the historical divergences) --------

TEST(EnvTest, CompileGateTreatsFalseAndDoubleZeroAsDisabled) {
    setenv("DCFT_NO_COMPILE", "false", 1);
    EXPECT_FALSE(compile_disabled());
    setenv("DCFT_NO_COMPILE", "00", 1);
    EXPECT_FALSE(compile_disabled());
    setenv("DCFT_NO_COMPILE", "1", 1);
    EXPECT_TRUE(compile_disabled());
    unsetenv("DCFT_NO_COMPILE");
    EXPECT_FALSE(compile_disabled());
}

TEST(EnvTest, ExplorationCacheGateTreatsFalseAndDoubleZeroAsDisabled) {
    setenv("DCFT_NO_EXPLORE_CACHE", "false", 1);
    EXPECT_FALSE(exploration_cache_disabled());
    setenv("DCFT_NO_EXPLORE_CACHE", "00", 1);
    EXPECT_FALSE(exploration_cache_disabled());
    setenv("DCFT_NO_EXPLORE_CACHE", "on", 1);
    EXPECT_TRUE(exploration_cache_disabled());
    unsetenv("DCFT_NO_EXPLORE_CACHE");
    EXPECT_FALSE(exploration_cache_disabled());
}

TEST(EnvTest, ExplorationCacheCapacityUsesPositiveParser) {
    setenv("DCFT_EXPLORE_CACHE_CAP", "3", 1);
    EXPECT_EQ(ExplorationCache::capacity(), 3u);
    setenv("DCFT_EXPLORE_CACHE_CAP", "junk", 1);
    EXPECT_EQ(ExplorationCache::capacity(), 8u) << "fallback on junk";
    setenv("DCFT_EXPLORE_CACHE_CAP", "0", 1);
    EXPECT_EQ(ExplorationCache::capacity(), 8u) << "fallback on zero";
    unsetenv("DCFT_EXPLORE_CACHE_CAP");
    EXPECT_EQ(ExplorationCache::capacity(), 8u);
}

TEST(EnvTest, TelemetryResolvesThroughSharedRule) {
    // obs::enabled() caches its first resolution; exercise the resolver
    // through set_enabled-free re-resolution is not possible, so just pin
    // the setter/getter contract plus the parse rule used at resolve time.
    obs::set_enabled(false);
    EXPECT_FALSE(obs::enabled());
    obs::set_enabled(true);
    EXPECT_TRUE(obs::enabled());
    obs::set_enabled(false);
}

}  // namespace
}  // namespace dcft
