#include "common/rng.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <set>

namespace dcft {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b()) ++same;
    EXPECT_LT(same, 5);
}

TEST(RngTest, BelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(RngTest, BelowOneIsAlwaysZero) {
    Rng rng(7);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowZeroThrows) {
    Rng rng(7);
    EXPECT_THROW(rng.below(0), ContractError);
}

TEST(RngTest, BelowCoversAllResidues) {
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BetweenInclusive) {
    Rng rng(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        const auto v = rng.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, BetweenSingleton) {
    Rng rng(3);
    EXPECT_EQ(rng.between(5, 5), 5);
}

TEST(RngTest, BetweenBadRangeThrows) {
    Rng rng(3);
    EXPECT_THROW(rng.between(3, 2), ContractError);
}

TEST(RngTest, Uniform01InRange) {
    Rng rng(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(RngTest, ChanceApproximatesProbability) {
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (rng.chance(0.3)) ++hits;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
    Rng parent(17);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (parent() == child()) ++same;
    EXPECT_LT(same, 5);
}

TEST(RngTest, ZeroSeedIsValid) {
    Rng rng(0);
    // Must not be stuck at a fixed point.
    const auto a = rng();
    const auto b = rng();
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dcft
