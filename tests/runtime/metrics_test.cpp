#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace dcft {
namespace {

TEST(SummaryStatsTest, EmptyStats) {
    SummaryStats stats;
    EXPECT_TRUE(stats.empty());
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_THROW(stats.mean(), ContractError);
    EXPECT_THROW(stats.min(), ContractError);
}

TEST(SummaryStatsTest, EmptyPercentileIsQuietNaN) {
    // No ranks exist, so the percentile is NaN (not a throw, and certainly
    // not an out-of-range read); the q-range contract still applies first.
    SummaryStats stats;
    EXPECT_TRUE(std::isnan(stats.percentile(0.5)));
    EXPECT_TRUE(std::isnan(stats.p50()));
    EXPECT_TRUE(std::isnan(stats.p90()));
    EXPECT_TRUE(std::isnan(stats.p99()));
    EXPECT_THROW(stats.percentile(2.0), ContractError);
}

TEST(SummaryStatsTest, NamedPercentileAccessors) {
    SummaryStats stats;
    for (int i = 1; i <= 100; ++i) stats.add(i);
    EXPECT_DOUBLE_EQ(stats.p50(), stats.percentile(0.50));
    EXPECT_DOUBLE_EQ(stats.p90(), stats.percentile(0.90));
    EXPECT_DOUBLE_EQ(stats.p99(), stats.percentile(0.99));
    EXPECT_DOUBLE_EQ(stats.p50(), 50.0);
    EXPECT_DOUBLE_EQ(stats.p90(), 90.0);
    EXPECT_DOUBLE_EQ(stats.p99(), 99.0);
}

TEST(SummaryStatsTest, BasicAggregates) {
    SummaryStats stats;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) stats.add(x);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.8);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(SummaryStatsTest, Percentiles) {
    SummaryStats stats;
    for (int i = 1; i <= 100; ++i) stats.add(i);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
}

TEST(SummaryStatsTest, PercentileOutOfRangeThrows) {
    SummaryStats stats;
    stats.add(1.0);
    EXPECT_THROW(stats.percentile(1.5), ContractError);
    EXPECT_THROW(stats.percentile(-0.1), ContractError);
}

TEST(SummaryStatsTest, AddAfterQueryKeepsConsistency) {
    SummaryStats stats;
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
    stats.add(9.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    stats.add(1.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
}

TEST(SummaryStatsTest, SingleSample) {
    SummaryStats stats;
    stats.add(7.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 7.0);
}

}  // namespace
}  // namespace dcft
