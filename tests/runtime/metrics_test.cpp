#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace dcft {
namespace {

TEST(SummaryStatsTest, EmptyStats) {
    // Every aggregate of an empty accumulator is a quiet NaN — the same
    // contract percentile() documents — so report writers can serialize
    // "no data" (NaN prints as null) without per-field pre-checks.
    SummaryStats stats;
    EXPECT_TRUE(stats.empty());
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_TRUE(std::isnan(stats.mean()));
    EXPECT_TRUE(std::isnan(stats.min()));
    EXPECT_TRUE(std::isnan(stats.max()));
}

TEST(SummaryStatsTest, EmptyPercentileIsQuietNaN) {
    // No ranks exist, so the percentile is NaN (not a throw, and certainly
    // not an out-of-range read); the q-range contract still applies first.
    SummaryStats stats;
    EXPECT_TRUE(std::isnan(stats.percentile(0.5)));
    EXPECT_TRUE(std::isnan(stats.p50()));
    EXPECT_TRUE(std::isnan(stats.p90()));
    EXPECT_TRUE(std::isnan(stats.p99()));
    EXPECT_THROW(stats.percentile(2.0), ContractError);
}

TEST(SummaryStatsTest, NamedPercentileAccessors) {
    SummaryStats stats;
    for (int i = 1; i <= 100; ++i) stats.add(i);
    EXPECT_DOUBLE_EQ(stats.p50(), stats.percentile(0.50));
    EXPECT_DOUBLE_EQ(stats.p90(), stats.percentile(0.90));
    EXPECT_DOUBLE_EQ(stats.p99(), stats.percentile(0.99));
    EXPECT_DOUBLE_EQ(stats.p50(), 50.0);
    EXPECT_DOUBLE_EQ(stats.p90(), 90.0);
    EXPECT_DOUBLE_EQ(stats.p99(), 99.0);
}

TEST(SummaryStatsTest, BasicAggregates) {
    SummaryStats stats;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) stats.add(x);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.8);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
}

TEST(SummaryStatsTest, Percentiles) {
    SummaryStats stats;
    for (int i = 1; i <= 100; ++i) stats.add(i);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 1.0);
}

TEST(SummaryStatsTest, PercentileOutOfRangeThrows) {
    SummaryStats stats;
    stats.add(1.0);
    EXPECT_THROW(stats.percentile(1.5), ContractError);
    EXPECT_THROW(stats.percentile(-0.1), ContractError);
}

TEST(SummaryStatsTest, PercentileNonFiniteQThrows) {
    // NaN and ±inf fail the q-in-[0,1] contract (NaN compares false) —
    // they must never reach the rank computation and index out of range.
    SummaryStats stats;
    stats.add(1.0);
    stats.add(2.0);
    EXPECT_THROW(stats.percentile(std::nan("")), ContractError);
    EXPECT_THROW(stats.percentile(std::numeric_limits<double>::infinity()),
                 ContractError);
    EXPECT_THROW(stats.percentile(-std::numeric_limits<double>::infinity()),
                 ContractError);
}

TEST(SummaryStatsTest, PercentileBoundaryRanks) {
    // Nearest-rank boundaries: q=0 clamps to the first sample (rank 0 has
    // no predecessor), q=1 is exactly the max, and both are well-defined
    // on a single sample.
    SummaryStats one;
    one.add(7.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(one.percentile(1.0), 7.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 7.0);

    SummaryStats two;
    two.add(10.0);
    two.add(20.0);
    EXPECT_DOUBLE_EQ(two.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(two.percentile(0.5), 10.0);  // rank ceil(0.5*2) = 1
    EXPECT_DOUBLE_EQ(two.percentile(1.0), 20.0);
}

TEST(SummaryStatsTest, AddAfterQueryKeepsConsistency) {
    SummaryStats stats;
    stats.add(5.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
    stats.add(9.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    stats.add(1.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
}

TEST(SummaryStatsTest, SingleSample) {
    SummaryStats stats;
    stats.add(7.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 7.0);
}

}  // namespace
}  // namespace dcft
