#include "runtime/fault_injector.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 4, {}}});
}

FaultClass bump_fault(std::shared_ptr<const StateSpace> sp) {
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(
        *sp, "bump", Predicate::var_eq(*sp, "v", 0), "v", 3));
    return f;
}

TEST(FaultInjectorTest, ZeroProbabilityNeverFires) {
    auto sp = counter_space();
    const FaultClass f = bump_fault(sp);
    FaultInjector inj(f, 0.0, 100);
    Rng rng(1);
    for (std::size_t step = 0; step < 100; ++step)
        EXPECT_FALSE(inj.maybe_inject(*sp, 0, step, rng).has_value());
    EXPECT_EQ(inj.faults_injected(), 0u);
}

TEST(FaultInjectorTest, CertainProbabilityFiresWhenEnabled) {
    auto sp = counter_space();
    const FaultClass f = bump_fault(sp);
    FaultInjector inj(f, 1.0, 100);
    Rng rng(1);
    const auto hit = inj.maybe_inject(*sp, 0, 0, rng);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(sp->get(*hit, 0), 3);
    EXPECT_EQ(inj.faults_injected(), 1u);
}

TEST(FaultInjectorTest, DisabledFaultDoesNotFire) {
    auto sp = counter_space();
    const FaultClass f = bump_fault(sp);
    FaultInjector inj(f, 1.0, 100);
    Rng rng(1);
    // Fault guard requires v == 0; state v == 1 disables it.
    EXPECT_FALSE(inj.maybe_inject(*sp, 1, 0, rng).has_value());
}

TEST(FaultInjectorTest, BudgetIsRespected) {
    auto sp = counter_space();
    FaultClass f(sp, "F");
    f.add_action(
        Action::assign_const(*sp, "any", Predicate::top(), "v", 2));
    FaultInjector inj(f, 1.0, 3);
    Rng rng(1);
    std::size_t fired = 0;
    for (std::size_t step = 0; step < 50; ++step)
        if (inj.maybe_inject(*sp, 0, step, rng)) ++fired;
    EXPECT_EQ(fired, 3u);
    EXPECT_EQ(inj.faults_injected(), 3u);
}

TEST(FaultInjectorTest, ResetRestoresBudget) {
    auto sp = counter_space();
    FaultClass f(sp, "F");
    f.add_action(
        Action::assign_const(*sp, "any", Predicate::top(), "v", 2));
    FaultInjector inj(f, 1.0, 1);
    Rng rng(1);
    EXPECT_TRUE(inj.maybe_inject(*sp, 0, 0, rng).has_value());
    EXPECT_FALSE(inj.maybe_inject(*sp, 0, 1, rng).has_value());
    inj.reset();
    EXPECT_TRUE(inj.maybe_inject(*sp, 0, 2, rng).has_value());
}

TEST(FaultInjectorTest, ScriptedFaultFiresAtItsStep) {
    auto sp = counter_space();
    const FaultClass f = bump_fault(sp);
    FaultInjector inj(f, 0.0, 10);
    inj.schedule(5, 0);
    Rng rng(1);
    for (std::size_t step = 0; step < 5; ++step)
        EXPECT_FALSE(inj.maybe_inject(*sp, 0, step, rng).has_value());
    const auto hit = inj.maybe_inject(*sp, 0, 5, rng);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(sp->get(*hit, 0), 3);
}

TEST(FaultInjectorTest, ScheduleOutOfRangeThrows) {
    auto sp = counter_space();
    const FaultClass f = bump_fault(sp);
    FaultInjector inj(f, 0.0, 10);
    EXPECT_THROW(inj.schedule(1, 7), ContractError);
}

TEST(FaultInjectorTest, NondeterministicFaultPicksSomeBranch) {
    auto sp = counter_space();
    FaultClass f(sp, "F");
    f.add_action(Action::nondet(
        "fork", Predicate::top(),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 1));
            out.push_back(space.set(s, 0, 2));
        }));
    FaultInjector inj(f, 1.0, 100);
    Rng rng(7);
    bool saw1 = false, saw2 = false;
    for (std::size_t step = 0; step < 100; ++step) {
        const auto hit = inj.maybe_inject(*sp, 0, step, rng);
        ASSERT_TRUE(hit.has_value());
        if (sp->get(*hit, 0) == 1) saw1 = true;
        if (sp->get(*hit, 0) == 2) saw2 = true;
    }
    EXPECT_TRUE(saw1);
    EXPECT_TRUE(saw2);
}

}  // namespace
}  // namespace dcft
