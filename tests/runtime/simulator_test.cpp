#include "runtime/simulator.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "apps/memory_access.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 10, {}}});
}

Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(SimulatorTest, RunsToDeadlock) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 5);
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    const RunResult r = sim.run(0);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_EQ(r.final_state, 5u);
    EXPECT_EQ(r.program_steps, 5u);
    EXPECT_EQ(r.fault_steps, 0u);
}

TEST(SimulatorTest, MaxStepsBoundsTheRun) {
    auto sp = counter_space();
    Program p(sp, "spin");
    p.add_action(Action::skip("loop", Predicate::top()));
    RandomScheduler sched;
    Simulator sim(p, sched);
    RunOptions opts;
    opts.max_steps = 17;
    const RunResult r = sim.run(0, opts);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.steps, 17u);
}

TEST(SimulatorTest, StopWhenPredicateHaltsEarly) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 9);
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    RunOptions opts;
    opts.stop_when = Predicate::var_eq(*sp, "v", 3);
    const RunResult r = sim.run(0, opts);
    EXPECT_TRUE(r.stopped_early);
    EXPECT_EQ(r.final_state, 3u);
    EXPECT_EQ(r.program_steps, 3u);
}

TEST(SimulatorTest, TraceRecordsEveryStep) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 3);
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    RunOptions opts;
    opts.record_trace = true;
    const RunResult r = sim.run(0, opts);
    ASSERT_EQ(r.trace.size(), 3u);
    EXPECT_EQ(r.trace[0].to, 1u);
    EXPECT_EQ(r.trace[2].to, 3u);
    for (const auto& step : r.trace) EXPECT_FALSE(step.is_fault());
}

TEST(SimulatorTest, FaultInjectionInterleaves) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 5);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(
        *sp, "reset", Predicate::var_eq(*sp, "v", 2), "v", 0));
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    FaultInjector inj(f, 1.0, 2);  // fires whenever enabled, twice
    sim.set_fault_injector(&inj);
    RunOptions opts;
    opts.record_trace = true;
    const RunResult r = sim.run(0, opts);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_EQ(r.final_state, 5u);
    EXPECT_EQ(r.fault_steps, 2u);
    // 0..2 (2 steps? no: 0->1->2), reset, 0->1->2, reset, 0->..->5.
    EXPECT_EQ(r.program_steps, 2u + 2u + 5u);
    std::size_t faults_in_trace = 0;
    for (const auto& step : r.trace)
        if (step.is_fault()) ++faults_in_trace;
    EXPECT_EQ(faults_in_trace, 2u);
}

TEST(SimulatorTest, MonitorsObserveRun) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 4);
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    CorrectorMonitor mon(Predicate::var_eq(*sp, "v", 4));
    sim.add_monitor(&mon);
    sim.run(0);
    EXPECT_EQ(mon.disruptions(), 1u);  // starts broken
    EXPECT_FALSE(mon.unrecovered_at_end());
    EXPECT_EQ(mon.correction_latency().count(), 1u);
}

TEST(SimulatorTest, DeterministicGivenSeed) {
    auto sys = apps::make_memory_access();
    RandomScheduler sched;
    FaultInjector inj(sys.page_fault, 0.2, 3);

    auto run_once = [&](std::uint64_t seed) {
        Simulator sim(sys.nonmasking, sched, seed);
        sim.set_fault_injector(&inj);
        RunOptions opts;
        opts.max_steps = 50;
        opts.record_trace = true;
        return sim.run(sys.initial_state(), opts);
    };
    const RunResult a = run_once(123);
    const RunResult b = run_once(123);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].to, b.trace[i].to);
        EXPECT_EQ(a.trace[i].action, b.trace[i].action);
    }
}

TEST(SimulatorTest, InvalidInitialStateThrows) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 4);
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    EXPECT_THROW(sim.run(sp->num_states()), ContractError);
}

TEST(SimulatorTest, NondeterministicEffectsResolvedRandomly) {
    auto sp = counter_space();
    Program p(sp, "fork");
    p.add_action(Action::nondet(
        "fork", Predicate::var_eq(*sp, "v", 0),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            out.push_back(space.set(s, 0, 1));
            out.push_back(space.set(s, 0, 2));
        }));
    RandomScheduler sched;
    bool saw1 = false, saw2 = false;
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        Simulator sim(p, sched, seed);
        const RunResult r = sim.run(0);
        if (r.final_state == 1) saw1 = true;
        if (r.final_state == 2) saw2 = true;
    }
    EXPECT_TRUE(saw1);
    EXPECT_TRUE(saw2);
}

}  // namespace
}  // namespace dcft
