#include "runtime/monitor.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

// Space: x (condition), z (witness).
std::shared_ptr<const StateSpace> xz_space() {
    return make_space({Variable{"x", 2, {}}, Variable{"z", 2, {}}});
}

StateIndex st(const StateSpace& sp, Value x, Value z) {
    return sp.encode({{x, z}});
}

TEST(SafetyMonitorTest, CountsBadStatesAndTransitions) {
    auto sp = xz_space();
    SafetySpec spec = SafetySpec::conjunction(
        {SafetySpec::never(Predicate::var_eq(*sp, "x", 1)),
         SafetySpec::pair(Predicate::var_eq(*sp, "z", 1),
                          Predicate::var_eq(*sp, "z", 1))});
    SafetyMonitor mon(spec);
    mon.on_start(*sp, st(*sp, 0, 0));
    EXPECT_EQ(mon.bad_states(), 0u);
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), false, 0);  // bad state
    EXPECT_EQ(mon.bad_states(), 1u);
    EXPECT_EQ(mon.program_violations(), 1u);
    mon.on_step(*sp, st(*sp, 0, 1), st(*sp, 0, 0), true, 1);  // z retracted
    EXPECT_EQ(mon.fault_violations(), 1u);
    EXPECT_EQ(mon.program_violations(), 1u);
}

TEST(SafetyMonitorTest, BadInitialStateCounted) {
    auto sp = xz_space();
    SafetyMonitor mon(SafetySpec::never(Predicate::var_eq(*sp, "x", 1)));
    mon.on_start(*sp, st(*sp, 1, 0));
    EXPECT_EQ(mon.bad_states(), 1u);
}

TEST(DetectorMonitorTest, MeasuresDetectionLatency) {
    auto sp = xz_space();
    DetectorMonitor mon(Predicate::var_eq(*sp, "z", 1),
                        Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 0, 0));
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), true, 3);   // X up at 3
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 1, 0), false, 4);  // still hidden
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 1, 1), false, 7);  // Z up at 7
    ASSERT_EQ(mon.detection_latency().count(), 1u);
    EXPECT_DOUBLE_EQ(mon.detection_latency().mean(), 4.0);
    EXPECT_EQ(mon.safeness_violations(), 0u);
    EXPECT_EQ(mon.stability_violations(), 0u);
}

TEST(DetectorMonitorTest, CountsSafenessViolations) {
    auto sp = xz_space();
    DetectorMonitor mon(Predicate::var_eq(*sp, "z", 1),
                        Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 0, 0));
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 0, 1), false, 0);  // Z && !X
    EXPECT_EQ(mon.safeness_violations(), 1u);
}

TEST(DetectorMonitorTest, CountsStabilityViolations) {
    auto sp = xz_space();
    DetectorMonitor mon(Predicate::var_eq(*sp, "z", 1),
                        Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 1, 1));
    // Z retracted while X still holds: Stability broken.
    mon.on_step(*sp, st(*sp, 1, 1), st(*sp, 1, 0), false, 0);
    EXPECT_EQ(mon.stability_violations(), 1u);
    // Z retracted together with X: allowed.
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 1, 1), false, 1);
    mon.on_step(*sp, st(*sp, 1, 1), st(*sp, 0, 0), false, 2);
    EXPECT_EQ(mon.stability_violations(), 1u);
}

TEST(DetectorMonitorTest, XFlickerResetsEpisode) {
    auto sp = xz_space();
    DetectorMonitor mon(Predicate::var_eq(*sp, "z", 1),
                        Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 1, 0));  // X up at episode start
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 0, 0), false, 1);  // X down
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), false, 5);  // X up again
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 1, 1), false, 6);  // detected
    ASSERT_EQ(mon.detection_latency().count(), 1u);
    EXPECT_DOUBLE_EQ(mon.detection_latency().mean(), 1.0);  // 6 - 5
}

TEST(CorrectorMonitorTest, AvailabilityAndLatency) {
    auto sp = xz_space();
    CorrectorMonitor mon(Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 1, 0));                          // healthy
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 0, 0), true, 0);   // disrupted
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 0, 0), false, 1);  // still down
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), false, 2);  // corrected
    mon.on_finish(*sp, st(*sp, 1, 0), 3);
    EXPECT_EQ(mon.disruptions(), 1u);
    ASSERT_EQ(mon.correction_latency().count(), 1u);
    EXPECT_DOUBLE_EQ(mon.correction_latency().mean(), 2.0);
    EXPECT_DOUBLE_EQ(mon.availability(), 0.5);  // 2 of 4 observations
    EXPECT_FALSE(mon.unrecovered_at_end());
}

TEST(CorrectorMonitorTest, StartingBrokenCountsAsDisruption) {
    auto sp = xz_space();
    CorrectorMonitor mon(Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 0, 0));
    EXPECT_EQ(mon.disruptions(), 1u);
    EXPECT_TRUE(mon.unrecovered_at_end());
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), false, 0);
    EXPECT_FALSE(mon.unrecovered_at_end());
}

TEST(CorrectorMonitorTest, MultipleEpisodes) {
    auto sp = xz_space();
    CorrectorMonitor mon(Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 1, 0));
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 0, 0), true, 0);
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), false, 1);
    mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 0, 0), true, 2);
    mon.on_step(*sp, st(*sp, 0, 0), st(*sp, 1, 0), false, 3);
    EXPECT_EQ(mon.disruptions(), 2u);
    EXPECT_EQ(mon.correction_latency().count(), 2u);
}

TEST(CorrectorMonitorTest, PerfectAvailabilityWhenNeverBroken) {
    auto sp = xz_space();
    CorrectorMonitor mon(Predicate::var_eq(*sp, "x", 1));
    mon.on_start(*sp, st(*sp, 1, 0));
    for (int i = 0; i < 5; ++i)
        mon.on_step(*sp, st(*sp, 1, 0), st(*sp, 1, 0), false, i);
    EXPECT_DOUBLE_EQ(mon.availability(), 1.0);
    EXPECT_EQ(mon.disruptions(), 0u);
}

}  // namespace
}  // namespace dcft
