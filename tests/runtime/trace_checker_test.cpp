#include "runtime/trace_checker.hpp"

#include <gtest/gtest.h>

#include "apps/memory_access.hpp"
#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> xz_space() {
    return make_space({Variable{"x", 2, {}}, Variable{"z", 2, {}}});
}

/// Hand-builds a recorded run through the given states.
RunResult scripted_run(std::vector<StateIndex> states,
                       std::vector<bool> fault_steps = {}) {
    RunResult run;
    run.initial = states.front();
    for (std::size_t i = 1; i < states.size(); ++i) {
        const bool fault =
            i - 1 < fault_steps.size() && fault_steps[i - 1];
        run.trace.push_back(TraceStep{
            states[i],
            fault ? TraceStep::kFaultStep : std::size_t{0}});
    }
    run.steps = run.trace.size();
    run.final_state = states.back();
    return run;
}

StateIndex st(const StateSpace& sp, Value x, Value z) {
    return sp.encode({{x, z}});
}

TEST(TraceStatesTest, ReconstructsSequence) {
    auto sp = xz_space();
    const RunResult run =
        scripted_run({st(*sp, 0, 0), st(*sp, 1, 0), st(*sp, 1, 1)});
    EXPECT_EQ(trace_states(run).size(), 3u);
    EXPECT_EQ(trace_states(run).front(), st(*sp, 0, 0));
    EXPECT_EQ(trace_states(run).back(), st(*sp, 1, 1));
}

TEST(TraceStatesTest, RejectsUnrecordedRun) {
    RunResult run;
    run.steps = 5;  // steps happened but no trace was recorded
    EXPECT_THROW(trace_states(run), ContractError);
}

TEST(TraceSafetyTest, CleanTracePasses) {
    auto sp = xz_space();
    const SafetySpec safety =
        SafetySpec::never(Predicate::var_eq(*sp, "z", 1) &&
                          Predicate::var_eq(*sp, "x", 0));
    const RunResult run =
        scripted_run({st(*sp, 0, 0), st(*sp, 1, 0), st(*sp, 1, 1)});
    EXPECT_TRUE(check_trace_safety(*sp, run, safety).ok());
}

TEST(TraceSafetyTest, LocatesBadState) {
    auto sp = xz_space();
    const SafetySpec safety =
        SafetySpec::never(Predicate::var_eq(*sp, "z", 1) &&
                          Predicate::var_eq(*sp, "x", 0));
    const RunResult run =
        scripted_run({st(*sp, 0, 0), st(*sp, 0, 1), st(*sp, 1, 1)});
    const TraceReport report = check_trace_safety(*sp, run, safety);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].step, 1u);
}

TEST(TraceSafetyTest, LocatesBadTransitionIncludingFaultSteps) {
    auto sp = xz_space();
    // cl(x): x must never fall.
    const SafetySpec safety =
        SafetySpec::closure(Predicate::var_eq(*sp, "x", 1));
    const RunResult run = scripted_run(
        {st(*sp, 1, 0), st(*sp, 0, 0)}, {true});  // a fault step drops x
    const TraceReport report = check_trace_safety(*sp, run, safety);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_NE(report.violations[0].what.find("fault step"),
              std::string::npos);
}

TEST(TraceDetectorTest, SafenessAndStabilityLocated) {
    auto sp = xz_space();
    const DetectorClaim claim{Predicate::var_eq(*sp, "z", 1),
                              Predicate::var_eq(*sp, "x", 1),
                              Predicate::top()};
    // z raised while x false (step 1), then z dropped while x true (3) —
    // which also leaves an unwitnessed detection pending at the end.
    const RunResult run = scripted_run({st(*sp, 0, 0), st(*sp, 0, 1),
                                        st(*sp, 1, 1), st(*sp, 1, 0)});
    const TraceReport report = check_trace_detector(*sp, run, claim);
    ASSERT_EQ(report.violations.size(), 3u);
    EXPECT_NE(report.violations[0].what.find("Safeness"),
              std::string::npos);
    EXPECT_EQ(report.violations[0].step, 1u);
    EXPECT_NE(report.violations[1].what.find("Stability"),
              std::string::npos);
    EXPECT_EQ(report.violations[1].step, 3u);
    EXPECT_NE(report.violations[2].what.find("Progress"),
              std::string::npos);
}

TEST(TraceDetectorTest, UnwitnessedDetectionReported) {
    auto sp = xz_space();
    const DetectorClaim claim{Predicate::var_eq(*sp, "z", 1),
                              Predicate::var_eq(*sp, "x", 1),
                              Predicate::top()};
    const RunResult run = scripted_run(
        {st(*sp, 0, 0), st(*sp, 1, 0), st(*sp, 1, 0)});
    const TraceReport report = check_trace_detector(*sp, run, claim);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_NE(report.violations[0].what.find("Progress"),
              std::string::npos);
    EXPECT_EQ(report.violations[0].step, 1u);
}

TEST(TraceCorrectorTest, FaultMayFalsifyButProgramMayNot) {
    auto sp = xz_space();
    const CorrectorClaim claim{Predicate::var_eq(*sp, "x", 1),
                               Predicate::var_eq(*sp, "x", 1),
                               Predicate::top()};
    // Fault drops x: allowed. Program drops x: a violation.
    const RunResult fault_run = scripted_run(
        {st(*sp, 1, 0), st(*sp, 0, 0), st(*sp, 1, 0)}, {true, false});
    EXPECT_TRUE(check_trace_corrector(*sp, fault_run, claim).ok());
    const RunResult prog_run = scripted_run(
        {st(*sp, 1, 0), st(*sp, 0, 0), st(*sp, 1, 0)}, {false, false});
    const TraceReport report =
        check_trace_corrector(*sp, prog_run, claim);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_NE(report.violations[0].what.find("Convergence closure"),
              std::string::npos);
}

TEST(TraceCorrectorTest, UnconvergedEndingReported) {
    auto sp = xz_space();
    const CorrectorClaim claim{Predicate::var_eq(*sp, "x", 1),
                               Predicate::var_eq(*sp, "x", 1),
                               Predicate::top()};
    const RunResult run =
        scripted_run({st(*sp, 1, 0), st(*sp, 0, 0)}, {true});
    const TraceReport report = check_trace_corrector(*sp, run, claim);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_NE(report.violations[0].what.find("Convergence (finite-trace)"),
              std::string::npos);
}

TEST(TraceCheckerTest, EndToEndOnTheMaskingMemoryProgram) {
    // A real simulated run of pm under page faults passes all three trace
    // checks — the hybrid-validation workflow.
    auto sys = apps::make_memory_access();
    RoundRobinScheduler scheduler;
    Simulator sim(sys.masking, scheduler, 5);
    FaultInjector injector(sys.page_fault, 0.3, 2);
    sim.set_fault_injector(&injector);
    RunOptions options;
    options.record_trace = true;
    options.max_steps = 60;
    const RunResult run = sim.run(sys.initial_state(), options);

    EXPECT_TRUE(
        check_trace_safety(*sys.space, run, sys.spec.safety()).ok());
    const DetectorClaim detector{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_trace_detector(*sys.space, run, detector).ok());
    const CorrectorClaim corrector{sys.X1, sys.X1, sys.U1};
    EXPECT_TRUE(check_trace_corrector(*sys.space, run, corrector).ok());
}

TEST(TraceCheckerTest, EndToEndCatchesTheIntolerantProgram) {
    auto sys = apps::make_memory_access();
    RoundRobinScheduler scheduler;
    bool caught = false;
    for (std::uint64_t seed = 0; seed < 20 && !caught; ++seed) {
        Simulator sim(sys.intolerant, scheduler, seed);
        FaultInjector injector(sys.page_fault, 0.5, 2);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.record_trace = true;
        options.max_steps = 40;
        const RunResult run = sim.run(sys.initial_state(), options);
        if (!check_trace_safety(*sys.space, run, sys.spec.safety()).ok())
            caught = true;
    }
    EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace dcft
