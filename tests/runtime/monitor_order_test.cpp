// Monitor hook contract: the simulator invokes on_start once per monitor in
// registration order, on_step for every executed step (again in
// registration order, with the fault flag distinguishing injector steps
// from program steps), and on_finish exactly once, after the last step.
// SafetyMonitor relies on that contract to attribute violations to fault
// vs. program steps; the second half pins the attribution on a scripted
// run.
#include "runtime/simulator.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 10, {}}});
}

Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

/// Appends one line per hook invocation to a shared log.
class RecordingMonitor final : public Monitor {
public:
    RecordingMonitor(std::string name, std::vector<std::string>* log)
        : name_(std::move(name)), log_(log) {}

    void on_start(const StateSpace&, StateIndex initial) override {
        log_->push_back("start:" + name_ + ":" + std::to_string(initial));
    }
    void on_step(const StateSpace&, StateIndex from, StateIndex to,
                 bool fault, std::size_t step) override {
        log_->push_back("step:" + name_ + ":" + std::to_string(from) + "->" +
                        std::to_string(to) + (fault ? ":F" : ":P") + "@" +
                        std::to_string(step));
    }
    void on_finish(const StateSpace&, StateIndex last,
                   std::size_t steps) override {
        log_->push_back("finish:" + name_ + ":" + std::to_string(last) + "@" +
                        std::to_string(steps));
    }

private:
    std::string name_;
    std::vector<std::string>* log_;
};

TEST(MonitorOrderTest, HooksFireInRegistrationOrderAndFinishLast) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 2);
    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    std::vector<std::string> log;
    RecordingMonitor a("A", &log);
    RecordingMonitor b("B", &log);
    sim.add_monitor(&a);
    sim.add_monitor(&b);
    const RunResult r = sim.run(0);
    EXPECT_TRUE(r.deadlocked);

    const std::vector<std::string> expected = {
        "start:A:0",      "start:B:0",       // registration order
        "step:A:0->1:P@0", "step:B:0->1:P@0",  // A before B on every step
        "step:A:1->2:P@1", "step:B:1->2:P@1",
        "finish:A:2@2",   "finish:B:2@2",    // finish strictly last
    };
    EXPECT_EQ(log, expected);
}

TEST(MonitorOrderTest, FaultStepsAreFlaggedForMonitors) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 3);
    // Scripted fault: at step 2 (v==2) reset v to 0; no random faults.
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(
        *sp, "reset", Predicate::var_eq(*sp, "v", 2), "v", 0));
    FaultInjector inj(f, 0.0, 1);
    inj.schedule(2, 0);

    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    sim.set_fault_injector(&inj);
    std::vector<std::string> log;
    RecordingMonitor rec("M", &log);
    sim.add_monitor(&rec);
    const RunResult r = sim.run(0);
    EXPECT_EQ(r.fault_steps, 1u);

    const std::vector<std::string> expected = {
        "start:M:0",
        "step:M:0->1:P@0",
        "step:M:1->2:P@1",
        "step:M:2->0:F@2",  // the scripted fault, flagged as such
        "step:M:0->1:P@3",
        "step:M:1->2:P@4",
        "step:M:2->3:P@5",
        "finish:M:3@6",
    };
    EXPECT_EQ(log, expected);
}

TEST(MonitorOrderTest, SafetyMonitorAttributesFaultVsProgramViolations) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 5);
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(
        *sp, "reset", Predicate::var_eq(*sp, "v", 2), "v", 0));
    FaultInjector inj(f, 0.0, 1);
    inj.schedule(2, 0);

    // Bad transition: v decreases (only the fault reset does that).
    // Bad state: v == 5 (only the final program step reaches it).
    SafetySpec spec(
        "no-decrease-and-never-5", Predicate::var_eq(*sp, "v", 5),
        [](const StateSpace& space, StateIndex from, StateIndex to) {
            return space.get(to, 0) < space.get(from, 0);
        });

    RoundRobinScheduler sched;
    Simulator sim(p, sched);
    sim.set_fault_injector(&inj);
    SafetyMonitor mon(spec);
    sim.add_monitor(&mon);
    const RunResult r = sim.run(0);
    EXPECT_TRUE(r.deadlocked);
    EXPECT_EQ(r.fault_steps, 1u);

    // Exactly one violating fault step (2 -> 0) and one violating program
    // step (4 -> 5, a bad state): the attribution must not cross over.
    EXPECT_EQ(mon.fault_violations(), 1u);
    EXPECT_EQ(mon.program_violations(), 1u);
    EXPECT_EQ(mon.bad_states(), 1u);
}

}  // namespace
}  // namespace dcft
