#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"

namespace dcft {
namespace {

const std::vector<std::size_t> kEnabled{0, 2, 5};

TEST(RandomSchedulerTest, PicksOnlyEnabled) {
    RandomScheduler sched;
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const std::size_t a = sched.pick(kEnabled, rng);
        EXPECT_TRUE(a == 0 || a == 2 || a == 5);
    }
}

TEST(RandomSchedulerTest, CoversAllEnabled) {
    RandomScheduler sched;
    Rng rng(2);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 600; ++i) ++counts[sched.pick(kEnabled, rng)];
    EXPECT_EQ(counts.size(), 3u);
    for (const auto& [a, c] : counts) EXPECT_GT(c, 100) << a;
}

TEST(RandomSchedulerTest, EmptyEnabledThrows) {
    RandomScheduler sched;
    Rng rng(1);
    EXPECT_THROW(sched.pick({}, rng), ContractError);
}

TEST(RoundRobinSchedulerTest, CyclesThroughActions) {
    RoundRobinScheduler sched;
    Rng rng(1);
    EXPECT_EQ(sched.pick(kEnabled, rng), 0u);
    EXPECT_EQ(sched.pick(kEnabled, rng), 2u);
    EXPECT_EQ(sched.pick(kEnabled, rng), 5u);
    EXPECT_EQ(sched.pick(kEnabled, rng), 0u);  // wraps
}

TEST(RoundRobinSchedulerTest, SkipsDisabled) {
    RoundRobinScheduler sched;
    Rng rng(1);
    EXPECT_EQ(sched.pick(kEnabled, rng), 0u);
    const std::vector<std::size_t> only5{5};
    EXPECT_EQ(sched.pick(only5, rng), 5u);
    EXPECT_EQ(sched.pick(kEnabled, rng), 0u);  // cursor wrapped past 5
}

TEST(RoundRobinSchedulerTest, ResetRestartsCursor) {
    RoundRobinScheduler sched;
    Rng rng(1);
    sched.pick(kEnabled, rng);
    sched.pick(kEnabled, rng);
    sched.reset();
    EXPECT_EQ(sched.pick(kEnabled, rng), 0u);
}

TEST(RoundRobinSchedulerTest, IsWeaklyFair) {
    // Every always-enabled action is chosen within one full cycle.
    RoundRobinScheduler sched;
    Rng rng(1);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 30; ++i) ++counts[sched.pick(kEnabled, rng)];
    EXPECT_EQ(counts[0], 10);
    EXPECT_EQ(counts[2], 10);
    EXPECT_EQ(counts[5], 10);
}

TEST(AdversarialSchedulerTest, StarvesListedActions) {
    AdversarialScheduler sched({2});
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        const std::size_t a = sched.pick(kEnabled, rng);
        EXPECT_NE(a, 2u);
    }
}

TEST(AdversarialSchedulerTest, FallsBackWhenOnlyStarvedEnabled) {
    AdversarialScheduler sched({2, 5});
    Rng rng(3);
    const std::vector<std::size_t> only_starved{2, 5};
    const std::size_t a = sched.pick(only_starved, rng);
    EXPECT_TRUE(a == 2 || a == 5);
}

TEST(WeightedSchedulerTest, RespectsWeights) {
    WeightedScheduler sched({10.0, 0.0, 1.0});  // action 0 heavy, 1 never
    Rng rng(4);
    std::map<std::size_t, int> counts;
    const std::vector<std::size_t> enabled{0, 1, 2};
    for (int i = 0; i < 2000; ++i) ++counts[sched.pick(enabled, rng)];
    EXPECT_GT(counts[0], counts[2] * 5);
    EXPECT_EQ(counts[1], 0);
}

TEST(WeightedSchedulerTest, MissingWeightsDefaultToOne) {
    WeightedScheduler sched({});
    Rng rng(4);
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 600; ++i) ++counts[sched.pick(kEnabled, rng)];
    EXPECT_EQ(counts.size(), 3u);
}

}  // namespace
}  // namespace dcft
