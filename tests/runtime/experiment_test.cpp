#include "runtime/experiment.hpp"

#include <gtest/gtest.h>

#include "apps/memory_access.hpp"
#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 8, {}}});
}

Program incrementer(std::shared_ptr<const StateSpace> sp, Value limit) {
    Program p(sp, "inc");
    p.add_action(Action::assign(
        *sp, "inc",
        Predicate("v<lim",
                  [limit](const StateSpace& space, StateIndex s) {
                      return space.get(s, 0) < limit;
                  }),
        "v",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0) + 1;
        }));
    return p;
}

TEST(ExperimentTest, AggregatesBasicCounts) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 5);
    Experiment ex;
    ex.program = &p;
    ex.runs = 50;
    const BatchResult r = run_experiment(ex);
    EXPECT_EQ(r.runs, 50u);
    EXPECT_EQ(r.deadlocked, 50u);
    EXPECT_DOUBLE_EQ(r.steps.mean(), 5.0);
    EXPECT_DOUBLE_EQ(r.fault_steps.mean(), 0.0);
}

TEST(ExperimentTest, RequiresProgramAndRuns) {
    Experiment ex;
    EXPECT_THROW(run_experiment(ex), ContractError);
    auto sp = counter_space();
    const Program p = incrementer(sp, 5);
    ex.program = &p;
    ex.runs = 0;
    EXPECT_THROW(run_experiment(ex), ContractError);
}

TEST(ExperimentTest, FaultInjectionCounted) {
    auto sys = apps::make_memory_access();
    Experiment ex;
    ex.program = &sys.nonmasking;
    ex.initial = sys.initial_state();
    ex.runs = 100;
    ex.options.max_steps = 60;
    ex.faults = &sys.page_fault;
    ex.fault_probability = 0.5;
    ex.max_faults = 2;
    const BatchResult r = run_experiment(ex);
    EXPECT_GT(r.fault_steps.mean(), 0.5);
    EXPECT_LE(r.fault_steps.max(), 2.0);
}

TEST(ExperimentTest, MonitorsAggregate) {
    auto sys = apps::make_memory_access();
    Experiment ex;
    ex.program = &sys.masking;
    ex.initial = sys.initial_state();
    ex.runs = 100;
    ex.options.max_steps = 60;
    ex.faults = &sys.page_fault;
    ex.fault_probability = 0.3;
    ex.max_faults = 2;
    ex.safety = sys.spec.safety();
    ex.detector = std::make_pair(sys.Z1, sys.X1);
    ex.corrector = sys.X1;
    const BatchResult r = run_experiment(ex);
    EXPECT_EQ(r.safety_violations, 0u);  // pm is masking
    EXPECT_FALSE(r.availability.empty());
    EXPECT_FALSE(r.detection_latency.empty());
    EXPECT_GT(r.availability.mean(), 0.5);
}

TEST(ExperimentTest, MultithreadedMatchesSingleThreaded) {
    // Same seeds => same pooled statistics regardless of thread count.
    auto sys = apps::make_memory_access();
    Experiment ex;
    ex.program = &sys.nonmasking;
    ex.initial = sys.initial_state();
    ex.runs = 64;
    ex.options.max_steps = 50;
    ex.faults = &sys.page_fault;
    ex.fault_probability = 0.25;
    ex.max_faults = 3;
    ex.corrector = sys.X1;

    ex.threads = 1;
    const BatchResult single = run_experiment(ex);
    ex.threads = 4;
    const BatchResult multi = run_experiment(ex);

    EXPECT_EQ(single.runs, multi.runs);
    EXPECT_EQ(single.deadlocked, multi.deadlocked);
    EXPECT_DOUBLE_EQ(single.steps.mean(), multi.steps.mean());
    EXPECT_DOUBLE_EQ(single.fault_steps.mean(), multi.fault_steps.mean());
    EXPECT_DOUBLE_EQ(single.availability.mean(), multi.availability.mean());
}

TEST(ExperimentTest, BitIdenticalAcrossThreadCounts) {
    // Stronger than matching means: the pooled sample *vectors* must be
    // byte-for-byte identical for threads 1/2/8. Slices are merged in
    // slice-index order after the join, so pooled samples always appear in
    // run order — the regression this pins is the old completion-order
    // merge, where thread interleaving shuffled the pooled samples (and
    // float summation order, hence mean bits) between runs of the same
    // experiment.
    auto sys = apps::make_memory_access();
    Experiment ex;
    ex.program = &sys.nonmasking;
    ex.initial = sys.initial_state();
    ex.runs = 65;  // deliberately not a multiple of the thread counts
    ex.base_seed = 42;
    ex.options.max_steps = 50;
    ex.faults = &sys.page_fault;
    ex.fault_probability = 0.25;
    ex.max_faults = 3;
    ex.safety = sys.spec.safety();
    ex.detector = std::make_pair(sys.Z1, sys.X1);
    ex.corrector = sys.X1;

    ex.threads = 1;
    const BatchResult base = run_experiment(ex);
    for (const unsigned threads : {2u, 8u}) {
        ex.threads = threads;
        const BatchResult r = run_experiment(ex);
        EXPECT_EQ(base.runs, r.runs);
        EXPECT_EQ(base.deadlocked, r.deadlocked);
        EXPECT_EQ(base.stopped_early, r.stopped_early);
        EXPECT_EQ(base.safety_violations, r.safety_violations);
        EXPECT_EQ(base.violated_runs, r.violated_runs);
        // Vector equality compares every sample and its position.
        EXPECT_EQ(base.steps.samples(), r.steps.samples());
        EXPECT_EQ(base.fault_steps.samples(), r.fault_steps.samples());
        EXPECT_EQ(base.detection_latency.samples(),
                  r.detection_latency.samples());
        EXPECT_EQ(base.correction_latency.samples(),
                  r.correction_latency.samples());
        EXPECT_EQ(base.availability.samples(), r.availability.samples());
        EXPECT_EQ(base.time_to_violation.samples(),
                  r.time_to_violation.samples());
        EXPECT_EQ(base.faults_absorbed.samples(),
                  r.faults_absorbed.samples());
    }
}

TEST(ExperimentTest, GradedAggregatesTrackSafety) {
    // The intolerant memory program breaks safety under faults: violated
    // runs must be counted, carry a time-to-violation sample each, and
    // every run contributes a faults-absorbed sample.
    auto sys = apps::make_memory_access();
    Experiment ex;
    ex.program = &sys.intolerant;
    ex.initial = sys.initial_state();
    ex.runs = 50;
    ex.options.max_steps = 60;
    ex.faults = &sys.page_fault;
    ex.fault_probability = 0.5;
    ex.max_faults = 2;
    ex.safety = sys.spec.safety();
    const BatchResult r = run_experiment(ex);
    EXPECT_GT(r.violated_runs, 0u);
    EXPECT_EQ(r.time_to_violation.count(), r.violated_runs);
    EXPECT_EQ(r.faults_absorbed.count(), r.runs);
}

TEST(ExperimentTest, CustomSchedulerFactory) {
    auto sp = counter_space();
    Program p(sp, "two");
    p.add_action(Action::assign_const(
        *sp, "a", Predicate::var_eq(*sp, "v", 0), "v", 1));
    p.add_action(Action::assign_const(
        *sp, "b", Predicate::var_eq(*sp, "v", 0), "v", 2));
    Experiment ex;
    ex.program = &p;
    ex.runs = 10;
    ex.make_scheduler = [] {
        return std::make_unique<RoundRobinScheduler>();
    };
    const BatchResult r = run_experiment(ex);
    // Round-robin deterministically picks action "a" first from v=0.
    EXPECT_EQ(r.runs, 10u);
    EXPECT_DOUBLE_EQ(r.steps.mean(), 1.0);
}

TEST(ExperimentTest, StopWhenCounts) {
    auto sp = counter_space();
    const Program p = incrementer(sp, 7);
    Experiment ex;
    ex.program = &p;
    ex.runs = 10;
    ex.options.stop_when = Predicate::var_eq(*sp, "v", 3);
    const BatchResult r = run_experiment(ex);
    EXPECT_EQ(r.stopped_early, 10u);
    EXPECT_DOUBLE_EQ(r.steps.mean(), 3.0);
}

}  // namespace
}  // namespace dcft
