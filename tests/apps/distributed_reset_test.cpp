// Distributed reset: a wave corrector with a completion detector whose
// detection predicate is deliberately not closed (Remark, Section 3.1).
#include "apps/distributed_reset.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "verify/closure.hpp"
#include "verify/component_checker.hpp"
#include "verify/fairness.hpp"
#include "verify/invariant.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::DistributedResetSystem;
using apps::make_distributed_reset;

const std::vector<int> kTree{0, 0, 0, 1};

Predicate start_state(const DistributedResetSystem& sys) {
    const StateIndex init = sys.initial_state();
    return Predicate("init", [init](const StateSpace&, StateIndex s) {
        return s == init;
    });
}

TEST(DistributedResetTest, RefinesItsSpecInAbsenceOfFaults) {
    auto sys = make_distributed_reset(kTree);
    const Predicate inv = reachable_invariant(sys.system, start_state(sys));
    EXPECT_TRUE(refines_spec(sys.system, sys.spec, inv).ok);
}

TEST(DistributedResetTest, CompletionWitnessIsADetector) {
    // 'wc detects all-sessions-equal' — with a non-closed detection
    // predicate: the next wave falsifies X, and Stability's escape clause
    // (Z next-holds or X has been falsified) is what makes this legal.
    auto sys = make_distributed_reset(kTree);
    const Predicate inv = reachable_invariant(sys.system, start_state(sys));
    const DetectorClaim claim{sys.witness, sys.all_equal, inv};
    EXPECT_TRUE(check_detector(sys.system, claim).ok);
}

TEST(DistributedResetTest, DetectionPredicateIsNotClosed) {
    // The point of the Remark: starting a wave falsifies all-equal.
    auto sys = make_distributed_reset(kTree);
    EXPECT_FALSE(check_closed(sys.system, sys.all_equal).ok);
}

TEST(DistributedResetTest, EveryRequestLeadsToACompletedWave) {
    auto sys = make_distributed_reset(kTree);
    const Predicate inv = reachable_invariant(sys.system, start_state(sys));
    const TransitionSystem ts(sys.system, nullptr, inv);
    EXPECT_TRUE(check_leads_to(ts,
                               Predicate::var_eq(*sys.space, "req", 1),
                               sys.witness, false)
                    .ok);
}

TEST(DistributedResetTest, NonmaskingToSessionCorruption) {
    // After corruption the wave machinery re-converges to a truthful
    // witness; safety may be violated meanwhile (the witness can lie
    // transiently), so this is nonmasking, not masking.
    auto sys = make_distributed_reset(kTree);
    const Predicate inv = reachable_invariant(sys.system, start_state(sys));
    EXPECT_TRUE(
        check_nonmasking(sys.system, sys.corrupt_sessions, sys.spec, inv)
            .ok());
    EXPECT_FALSE(
        check_failsafe(sys.system, sys.corrupt_sessions, sys.spec, inv)
            .ok());
}

TEST(DistributedResetTest, AdoptionConvergesToAgreement) {
    auto sys = make_distributed_reset(kTree);
    // From any state (even corrupted), sessions converge to agreement
    // i.o.: true ~~> all-equal.
    EXPECT_TRUE(converges(sys.system, nullptr, Predicate::top(),
                          sys.all_equal)
                    .ok);
}

TEST(DistributedResetTest, NoPrematureWaveInFaultFreeRuns) {
    auto sys = make_distributed_reset(kTree);
    const Predicate inv = reachable_invariant(sys.system, start_state(sys));
    // Every reachable start of a wave (sn.0 change) departs from a
    // completed (all-equal) state: re-checked directly on the graph.
    const TransitionSystem ts(sys.system, nullptr, inv);
    for (NodeId n = 0; n < ts.num_nodes(); ++n) {
        const StateIndex s = ts.state_of(n);
        for (const auto& e : ts.program_edges(n)) {
            const StateIndex t = ts.state_of(e.to);
            if (sys.space->get(s, sys.sn[0]) !=
                sys.space->get(t, sys.sn[0])) {
                EXPECT_TRUE(sys.all_equal.eval(*sys.space, s))
                    << sys.space->format(s);
            }
        }
    }
}

TEST(DistributedResetTest, DeeperTreeStillWorks) {
    auto sys = make_distributed_reset({0, 0, 1, 2});  // a chain
    const Predicate inv = reachable_invariant(sys.system, start_state(sys));
    EXPECT_TRUE(refines_spec(sys.system, sys.spec, inv).ok);
    EXPECT_TRUE(
        check_nonmasking(sys.system, sys.corrupt_sessions, sys.spec, inv)
            .ok());
}

TEST(DistributedResetTest, RejectsMalformedTrees) {
    EXPECT_THROW(make_distributed_reset({0, 2, 1}), ContractError);
    EXPECT_THROW(make_distributed_reset({1, 0}), ContractError);
}

}  // namespace
}  // namespace dcft
