// Self-stabilizing BFS tree maintenance — a corrector hierarchy instance
// from the paper's application list (Sections 1, 7).
#include "apps/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "verify/component_checker.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::cycle_graph;
using apps::make_spanning_tree;
using apps::path_graph;
using apps::star_graph;

TEST(SpanningTreeTest, GraphConstructors) {
    const auto path = path_graph(4);
    EXPECT_EQ(path[0].size(), 1u);
    EXPECT_EQ(path[1].size(), 2u);
    const auto cycle = cycle_graph(4);
    EXPECT_EQ(cycle[0].size(), 2u);
    const auto star = star_graph(5);
    EXPECT_EQ(star[0].size(), 4u);
    EXPECT_EQ(star[3].size(), 1u);
}

TEST(SpanningTreeTest, LegitimateStateHasTrueDistances) {
    auto sys = make_spanning_tree(path_graph(4));
    EXPECT_EQ(sys.true_distances, (std::vector<Value>{0, 1, 2, 3}));
    EXPECT_TRUE(sys.legitimate.eval(*sys.space, sys.legitimate_state()));
    EXPECT_TRUE(sys.program.is_terminal(sys.legitimate_state()));
}

TEST(SpanningTreeTest, ConvergesFromAnyStateOnPaths) {
    auto sys = make_spanning_tree(path_graph(4));
    EXPECT_TRUE(
        converges(sys.program, nullptr, Predicate::top(), sys.legitimate)
            .ok);
}

TEST(SpanningTreeTest, ConvergesOnCyclesAndStars) {
    for (auto graph : {cycle_graph(4), star_graph(5)}) {
        auto sys = make_spanning_tree(graph);
        EXPECT_TRUE(converges(sys.program, nullptr, Predicate::top(),
                              sys.legitimate)
                        .ok);
    }
}

TEST(SpanningTreeTest, NonmaskingTolerantToDistanceCorruption) {
    auto sys = make_spanning_tree(path_graph(4));
    const ToleranceReport r = check_nonmasking(
        sys.program, sys.corrupt_any, sys.spec, sys.legitimate);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(SpanningTreeTest, ProgramIsACorrectorOfItsLegitimacy) {
    auto sys = make_spanning_tree(path_graph(4));
    const CorrectorClaim claim{sys.legitimate, sys.legitimate,
                               Predicate::top()};
    EXPECT_TRUE(check_corrector(sys.program, claim).ok);
}

TEST(SpanningTreeTest, LocalConsistencyIsTheDetectionPredicate) {
    // The conjunction of the per-node local-consistency predicates is
    // exactly legitimacy — the hierarchical-detector decomposition.
    auto sys = make_spanning_tree(path_graph(4));
    Predicate all_consistent = sys.locally_consistent(0);
    for (int i = 1; i < 4; ++i)
        all_consistent = all_consistent && sys.locally_consistent(i);
    EXPECT_TRUE(equivalent(*sys.space, all_consistent, sys.legitimate));
}

TEST(SpanningTreeTest, NotMaskingUnderCorruption) {
    // Corruption immediately falsifies cl(legitimate) on the fault step.
    auto sys = make_spanning_tree(path_graph(3));
    EXPECT_FALSE(check_masking(sys.program, sys.corrupt_any, sys.spec,
                               sys.legitimate)
                     .ok());
}

TEST(SpanningTreeTest, DisconnectedGraphRejected) {
    apps::Graph g(3);  // no edges at all
    EXPECT_THROW(make_spanning_tree(g), ContractError);
}

}  // namespace
}  // namespace dcft
