// Dijkstra's K-state token ring: the paper's PVS case study (Section 7)
// and the canonical corrector (Remark, Section 4.1).
#include "apps/token_ring.hpp"

#include <gtest/gtest.h>

#include "verify/component_checker.hpp"
#include "verify/fairness.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::make_token_ring;
using apps::TokenRingSystem;

TEST(TokenRingTest, LegitimateStatesHaveExactlyOnePrivilege) {
    auto sys = make_token_ring(4, 4);
    EXPECT_TRUE(sys.legitimate.eval(*sys.space, sys.initial_state()));
    // All-equal states: only the bottom process is privileged.
    StateIndex bad = sys.initial_state();
    bad = sys.space->set(bad, sys.x[1], 2);
    bad = sys.space->set(bad, sys.x[3], 1);
    EXPECT_FALSE(sys.legitimate.eval(*sys.space, bad));
}

TEST(TokenRingTest, RefinesMutualExclusionFromLegitimateStates) {
    auto sys = make_token_ring(4, 4);
    EXPECT_TRUE(refines_spec(sys.ring, sys.spec, sys.legitimate).ok);
}

TEST(TokenRingTest, RingIsItsOwnCorrector) {
    // 'S corrects S' in the ring from true — the Arora-Gouda
    // closure-and-convergence shape (Z = X = legitimate).
    auto sys = make_token_ring(4, 4);
    const CorrectorClaim claim{sys.legitimate, sys.legitimate,
                               Predicate::top()};
    EXPECT_TRUE(check_corrector(sys.ring, claim).ok);
}

TEST(TokenRingTest, SelfStabilizesWhenKAtLeastN) {
    for (int n = 3; n <= 5; ++n) {
        auto sys = make_token_ring(n, n);
        EXPECT_TRUE(
            converges(sys.ring, nullptr, Predicate::top(), sys.legitimate)
                .ok)
            << "n=" << n;
    }
}

TEST(TokenRingTest, KOneLessThanNStillStabilizes) {
    // The classical sharpening: K >= n-1 suffices for the unidirectional
    // K-state ring (n >= 3).
    for (int n = 4; n <= 5; ++n) {
        auto sys = make_token_ring(n, n - 1);
        EXPECT_TRUE(
            converges(sys.ring, nullptr, Predicate::top(), sys.legitimate)
                .ok)
            << "n=" << n;
    }
}

TEST(TokenRingTest, TooSmallKFailsToStabilize) {
    // K = n-2 admits a fair execution that never reaches a legitimate
    // state: the checker finds it.
    auto sys = make_token_ring(5, 3);
    EXPECT_FALSE(
        converges(sys.ring, nullptr, Predicate::top(), sys.legitimate).ok);
}

TEST(TokenRingTest, NonmaskingTolerantToCounterCorruption) {
    auto sys = make_token_ring(4, 4);
    const ToleranceReport r = check_nonmasking(
        sys.ring, sys.corrupt_any, sys.spec, sys.legitimate);
    EXPECT_TRUE(r.ok()) << r.reason();
    // The span is the whole space: faults corrupt counters arbitrarily.
    EXPECT_EQ(r.span_size, sys.space->num_states());
}

TEST(TokenRingTest, NotMaskingTolerant) {
    // During stabilization several processes can be privileged at once —
    // the safety of SPEC_token is violated, so tolerance is only
    // nonmasking. (This is the paper's point about nonmasking tolerance.)
    auto sys = make_token_ring(4, 4);
    EXPECT_FALSE(
        check_masking(sys.ring, sys.corrupt_any, sys.spec, sys.legitimate)
            .ok());
    EXPECT_FALSE(
        check_failsafe(sys.ring, sys.corrupt_any, sys.spec, sys.legitimate)
            .ok());
}

TEST(TokenRingTest, TokenCirculatesFairly) {
    auto sys = make_token_ring(4, 4);
    // From legitimate states, each process is privileged again and again:
    // privilege.i ~~> privilege.((i+1) mod n).
    const TransitionSystem ts(sys.ring, nullptr, sys.legitimate);
    for (int i = 0; i < sys.n; ++i) {
        EXPECT_TRUE(check_leads_to(ts, sys.privilege(i),
                                   sys.privilege((i + 1) % sys.n), false)
                        .ok)
            << i;
    }
}

TEST(TokenRingTest, PrivilegePredicatesPartitionLegitimateStates) {
    auto sys = make_token_ring(4, 5);
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        if (!sys.legitimate.eval(*sys.space, s)) continue;
        int count = 0;
        for (int i = 0; i < sys.n; ++i)
            if (sys.privilege(i).eval(*sys.space, s)) ++count;
        EXPECT_EQ(count, 1);
    }
}

TEST(TokenRingTest, TwoProcessRing) {
    auto sys = make_token_ring(2, 3);
    EXPECT_TRUE(
        converges(sys.ring, nullptr, Predicate::top(), sys.legitimate).ok);
}

}  // namespace
}  // namespace dcft
