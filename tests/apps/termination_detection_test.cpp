// Termination detection (the DFG probe ring) as a verified *detector*:
// 'done detects all-passive'. Safeness is DFG soundness; Progress is its
// eventual-detection property; both decided by the model checker.
#include "apps/termination_detection.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gc/composition.hpp"
#include "verify/closure.hpp"
#include "verify/component_checker.hpp"
#include "verify/fairness.hpp"
#include "verify/invariant.hpp"
#include "verify/refinement.hpp"

namespace dcft {
namespace {

using apps::make_termination_detection;
using apps::TerminationDetectionSystem;

TEST(TerminationDetectionTest, DetectorClaimHolds) {
    for (int n : {2, 3, 4}) {
        auto sys = make_termination_detection(n);
        const Predicate inv =
            reachable_invariant(sys.system, sys.initial);
        const DetectorClaim claim{sys.done, sys.all_passive, inv};
        EXPECT_TRUE(check_detector(sys.system, claim).ok) << "n=" << n;
    }
}

TEST(TerminationDetectionTest, DetectionPredicateIsClosed) {
    // All-passive is stable: only an active process can activate another.
    auto sys = make_termination_detection(3);
    EXPECT_TRUE(check_closed(sys.system, sys.all_passive).ok);
}

TEST(TerminationDetectionTest, SoundnessNeverLies) {
    // Explicitly: in every reachable state, done implies all-passive.
    auto sys = make_termination_detection(3);
    const Predicate inv = reachable_invariant(sys.system, sys.initial);
    EXPECT_TRUE(implies_everywhere(
        *sys.space, (inv && sys.done).renamed("reach&&done"),
        sys.all_passive));
}

TEST(TerminationDetectionTest, EventualDetection) {
    // Once the computation terminates, the probe eventually declares it:
    // all-passive ~~> done, from every reachable state.
    auto sys = make_termination_detection(3);
    const Predicate inv = reachable_invariant(sys.system, sys.initial);
    const TransitionSystem ts(sys.system, nullptr, inv);
    EXPECT_TRUE(check_leads_to(ts, sys.all_passive, sys.done, false).ok);
}

TEST(TerminationDetectionTest, ProbeNeedsAtMostTwoRounds) {
    // Bounded-latency sanity: from any reachable all-passive state, the
    // witness path to `done` exists within 2 full probe rounds.
    auto sys = make_termination_detection(3);
    const Predicate inv = reachable_invariant(sys.system, sys.initial);
    // Statically: count probe steps needed — handled by the liveness
    // check above; here check the specific canonical run.
    const StateIndex start = sys.initial_state({false, false, false});
    const TransitionSystem ts(sys.system, nullptr,
                              Predicate("s0",
                                        [start](const StateSpace&,
                                                StateIndex s) {
                                            return s == start;
                                        }));
    bool found_done = false;
    for (NodeId node = 0; node < ts.num_nodes(); ++node) {
        if (sys.done.eval(*sys.space, ts.state_of(node))) {
            found_done = true;
            // retry + n passes + judge, twice, is a generous bound.
            EXPECT_LE(ts.witness_path(node).size(),
                      2u * (static_cast<std::size_t>(sys.n) + 2) + 1);
        }
    }
    EXPECT_TRUE(found_done);
}

TEST(TerminationDetectionTest, SpuriousActivationBreaksSafeness) {
    // If the environment can re-activate a passive process, the claim is
    // not even fail-safe F-tolerant: a fault right after `done` leaves a
    // lying witness. This is the (documented) diffusing-computation
    // contract.
    auto sys = make_termination_detection(3);
    const Predicate inv = reachable_invariant(sys.system, sys.initial);
    const DetectorClaim claim{sys.done, sys.all_passive, inv};
    const Predicate span = reachable_invariant(
        with_faults(sys.system, sys.spurious_activation), sys.initial);
    EXPECT_FALSE(check_tolerant_detector(sys.system,
                                         sys.spurious_activation, claim,
                                         Tolerance::FailSafe, span)
                     .ok);
}

TEST(TerminationDetectionTest, DeadlocksOnlyAfterDetection) {
    auto sys = make_termination_detection(3);
    const Predicate inv = reachable_invariant(sys.system, sys.initial);
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        if (!inv.eval(*sys.space, s)) continue;
        if (sys.system.is_terminal(s)) {
            EXPECT_TRUE(sys.done.eval(*sys.space, s))
                << sys.space->format(s);
        }
    }
}

TEST(TerminationDetectionTest, InitialStateShape) {
    auto sys = make_termination_detection(3);
    const StateIndex s = sys.initial_state({true, false, true});
    EXPECT_EQ(sys.space->get(s, sys.active_var[0]), 1);
    EXPECT_EQ(sys.space->get(s, sys.active_var[1]), 0);
    EXPECT_EQ(sys.space->get(s, sys.token_var), 0);
    EXPECT_EQ(sys.space->get(s, sys.done_var), 0);
    EXPECT_TRUE(sys.initial.eval(*sys.space, s));
    EXPECT_THROW(sys.initial_state({true}), ContractError);
}

}  // namespace
}  // namespace dcft
