// Section 6.1: triple modular redundancy decomposed into IR + DR + CR.
#include "apps/tmr.hpp"

#include <gtest/gtest.h>

#include "verify/component_checker.hpp"
#include "verify/encapsulation.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::make_tmr;
using apps::TmrSystem;

class TmrTest : public ::testing::Test {
protected:
    TmrSystem sys = make_tmr(2);
};

TEST_F(TmrTest, IntolerantRefinesSpecInAbsenceOfFaults) {
    EXPECT_TRUE(refines_spec(sys.intolerant, sys.spec, sys.invariant).ok);
}

TEST_F(TmrTest, IntolerantViolatesSafetyUnderCorruption) {
    EXPECT_FALSE(check_failsafe(sys.intolerant, sys.corrupt_one_input,
                                sys.spec, sys.invariant)
                     .ok());
}

// --- DR ; IR: fail-safe (Theorem 3.6 instance, Section 6.1). ---

TEST_F(TmrTest, TheoremHypothesis_DrIrRefinesIr) {
    EXPECT_TRUE(
        refines_program(sys.failsafe, sys.intolerant, sys.invariant).ok);
}

TEST_F(TmrTest, TheoremHypothesis_DrIrEncapsulatesIr) {
    EXPECT_TRUE(check_encapsulates(sys.failsafe, sys.intolerant).ok);
}

TEST_F(TmrTest, DrIrIsFailsafeTolerant) {
    const ToleranceReport r = check_failsafe(
        sys.failsafe, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(TmrTest, DrIrDeadlocksWhenXCorrupted) {
    // "Program DR;IR deadlocks when the value of x gets corrupted" — that
    // is exactly why it is not masking.
    EXPECT_FALSE(check_masking(sys.failsafe, sys.corrupt_one_input, sys.spec,
                               sys.invariant)
                     .ok());
    // Concretely: x != y == z and out unassigned leaves no enabled action.
    StateIndex s = sys.initial_state(0);
    s = sys.space->set(s, sys.x_var, 1);  // corrupt x
    EXPECT_TRUE(sys.failsafe.is_terminal(s));
    EXPECT_FALSE(sys.masking.is_terminal(s));
}

TEST_F(TmrTest, DrWitnessDetectsXUncorrupted) {
    // 'Z_DR detects X_DR' in DR;IR from the invariant: the witness
    // (x=y \/ x=z) correctly witnesses "x equals an uncorrupted input".
    const DetectorClaim claim{sys.dr_witness, sys.x_uncorrupted,
                              sys.invariant};
    EXPECT_TRUE(check_detector(sys.failsafe, claim).ok);
}

TEST_F(TmrTest, DrIsAFailsafeTolerantDetector) {
    const DetectorClaim claim{sys.dr_witness, sys.x_uncorrupted,
                              sys.invariant};
    // Span: the states reachable under faults — at most one corruption.
    const ToleranceReport fs = check_failsafe(
        sys.failsafe, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(check_tolerant_detector(sys.failsafe, sys.corrupt_one_input,
                                        claim, Tolerance::FailSafe,
                                        fs.fault_span)
                    .ok);
}

// --- DR ; IR || CR: masking (Section 6.1's main construction). ---

TEST_F(TmrTest, MaskingTmrIsMaskingTolerant) {
    const ToleranceReport r = check_masking(
        sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(TmrTest, MaskingTmrIsAlsoFailsafe) {
    EXPECT_TRUE(check_failsafe(sys.masking, sys.corrupt_one_input, sys.spec,
                               sys.invariant)
                    .ok());
}

TEST_F(TmrTest, CrIsACorrectorOfOutputCorrectness) {
    // CR's correction predicate and witness predicate are both
    // out = uncorrupted value; within the masking composition it corrects
    // the output from every span state.
    const ToleranceReport mk = check_masking(
        sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant);
    const CorrectorClaim claim{sys.output_correct, sys.output_correct,
                               mk.fault_span};
    EXPECT_TRUE(check_corrector(sys.masking, claim).ok);
}

TEST_F(TmrTest, MaskedOutputIsAlwaysTheMajorityValue) {
    // Enumerate the whole span: every terminal state has out = majority.
    const ToleranceReport mk = check_masking(
        sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant);
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        if (!mk.fault_span.eval(*sys.space, s)) continue;
        if (sys.masking.is_terminal(s)) {
            EXPECT_TRUE(sys.output_correct.eval(*sys.space, s))
                << sys.space->format(s);
        }
    }
}

TEST_F(TmrTest, LargerValueDomains) {
    for (Value domain : {3, 4}) {
        auto sys2 = make_tmr(domain);
        const ToleranceReport r = check_masking(
            sys2.masking, sys2.corrupt_one_input, sys2.spec, sys2.invariant);
        EXPECT_TRUE(r.ok()) << "domain=" << domain << ": " << r.reason();
    }
}

TEST_F(TmrTest, SpanIsAtMostOneCorruption) {
    const ToleranceReport mk = check_masking(
        sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant);
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        if (!mk.fault_span.eval(*sys.space, s)) continue;
        // At least two of the three inputs agree in every span state.
        const Value x = sys.space->get(s, sys.x_var);
        const Value y = sys.space->get(s, sys.y_var);
        const Value z = sys.space->get(s, sys.z_var);
        EXPECT_TRUE(x == y || y == z || x == z) << sys.space->format(s);
    }
}

}  // namespace
}  // namespace dcft
