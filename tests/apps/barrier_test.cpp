// Barrier synchronization with a hierarchical witness tree: the
// "hierarchical construction of detectors" the paper's companion method
// provides, with the trusting-vs-rechecking ablation adjudicated by the
// checker.
#include "apps/barrier.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "verify/component_checker.hpp"
#include "verify/fairness.hpp"
#include "verify/invariant.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::BarrierSystem;
using apps::make_barrier;

Predicate start_state(const BarrierSystem& sys) {
    const StateIndex init = sys.initial_state();
    return Predicate("init", [init](const StateSpace&, StateIndex s) {
        return s == init;
    });
}

TEST(BarrierTest, BothDesignsCorrectWithoutFaults) {
    for (int n : {2, 4}) {
        auto sys = make_barrier(n);
        for (const Program* p : {&sys.trusting, &sys.rechecking}) {
            const Predicate inv = reachable_invariant(*p, start_state(sys));
            EXPECT_TRUE(refines_spec(*p, sys.spec, inv).ok)
                << p->name() << " n=" << n;
        }
    }
}

TEST(BarrierTest, RootWitnessIsAHierarchicalDetector) {
    auto sys = make_barrier(4);
    const Predicate inv =
        reachable_invariant(sys.rechecking, start_state(sys));
    const DetectorClaim claim{sys.root_witness, sys.all_arrived, inv};
    EXPECT_TRUE(check_detector(sys.rechecking, claim).ok);
}

TEST(BarrierTest, WitnessesAreTruthfulInFaultFreeRuns) {
    auto sys = make_barrier(4);
    const Predicate inv =
        reachable_invariant(sys.trusting, start_state(sys));
    EXPECT_TRUE(implies_everywhere(*sys.space, inv,
                                   sys.witnesses_truthful));
}

TEST(BarrierTest, TrustingDesignIsNotFailsafeToWitnessCorruption) {
    auto sys = make_barrier(4);
    const Predicate inv =
        reachable_invariant(sys.trusting, start_state(sys));
    const ToleranceReport r = check_failsafe(
        sys.trusting, sys.corrupt_witness, sys.spec, inv);
    EXPECT_FALSE(r.ok());
    // The failure is a premature release, not some setup artifact.
    EXPECT_NE(r.reason().find("safety violated"), std::string::npos);
}

TEST(BarrierTest, RecheckingDesignIsMaskingToWitnessCorruption) {
    auto sys = make_barrier(4);
    const Predicate inv =
        reachable_invariant(sys.rechecking, start_state(sys));
    const ToleranceReport r = check_masking(
        sys.rechecking, sys.corrupt_witness, sys.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(BarrierTest, ReleaseClearsEverything) {
    auto sys = make_barrier(4);
    StateIndex s = sys.initial_state();
    for (VarId a : sys.arrived) s = sys.space->set(s, a, 1);
    for (int k = 1; k < sys.n; ++k)
        s = sys.space->set(s, sys.w[static_cast<std::size_t>(k)], 1);
    const Action& release = sys.rechecking.action_named("release");
    ASSERT_TRUE(release.enabled(*sys.space, s));
    const StateIndex t = release.apply(*sys.space, s);
    EXPECT_EQ(sys.space->get(t, sys.round_var), 1);
    for (VarId a : sys.arrived) EXPECT_EQ(sys.space->get(t, a), 0);
    for (int k = 1; k < sys.n; ++k)
        EXPECT_EQ(
            sys.space->get(t, sys.w[static_cast<std::size_t>(k)]), 0);
}

TEST(BarrierTest, RoundsKeepAlternating) {
    auto sys = make_barrier(2);
    const Predicate inv =
        reachable_invariant(sys.rechecking, start_state(sys));
    const TransitionSystem ts(sys.rechecking, nullptr, inv);
    EXPECT_TRUE(check_leads_to(ts, Predicate::var_eq(*sys.space, "round", 0),
                               Predicate::var_eq(*sys.space, "round", 1),
                               false)
                    .ok);
    EXPECT_TRUE(check_leads_to(ts, Predicate::var_eq(*sys.space, "round", 1),
                               Predicate::var_eq(*sys.space, "round", 0),
                               false)
                    .ok);
}

TEST(BarrierTest, RejectsNonPowerOfTwo) {
    EXPECT_THROW(make_barrier(3), ContractError);
    EXPECT_THROW(make_barrier(0), ContractError);
}

TEST(BarrierTest, EightWorkers) {
    auto sys = make_barrier(8);
    const Predicate inv =
        reachable_invariant(sys.rechecking, start_state(sys));
    EXPECT_TRUE(refines_spec(sys.rechecking, sys.spec, inv).ok);
}

}  // namespace
}  // namespace dcft
