// Section 6.2: Byzantine agreement decomposed into IB + DB + CB, with the
// 3f+1 threshold recovered as a verification outcome.
#include "apps/byzantine.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "verify/component_checker.hpp"
#include "verify/reachability.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::ByzantineSystem;
using apps::make_byzantine;

/// The invariant we verify from: all states reachable by the given program
/// in the absence of faults, from the canonical initial states.
Predicate reachable_invariant(const ByzantineSystem& sys,
                              const Program& program) {
    const Predicate init(
        "init", [&sys](const StateSpace& sp, StateIndex s) {
            if (sp.get(s, sys.b_g) != 0) return false;
            for (std::size_t i = 0; i < sys.d.size(); ++i) {
                if (sp.get(s, sys.b[i]) != 0) return false;
                if (sp.get(s, sys.d[i]) != 2) return false;    // bot
                if (sp.get(s, sys.out[i]) != 2) return false;  // bot
            }
            return true;  // d.g free: both initial decisions included
        });
    auto reach = std::make_shared<StateSet>(
        reachable_states(program, nullptr, init));
    return predicate_of(std::move(reach), "reach(" + program.name() + ")");
}

class ByzantineTest : public ::testing::Test {
protected:
    ByzantineSystem sys = make_byzantine(4, 1);
};

TEST_F(ByzantineTest, IntolerantRefinesSpecWithoutByzantineProcesses) {
    const Predicate inv = reachable_invariant(sys, sys.intolerant);
    EXPECT_TRUE(refines_spec(sys.intolerant, sys.spec, inv).ok);
}

TEST_F(ByzantineTest, IntolerantViolatesSafetyUnderByzantineGeneral) {
    const Predicate inv = reachable_invariant(sys, sys.intolerant);
    EXPECT_FALSE(check_failsafe(sys.intolerant, sys.byzantine_fault,
                                sys.spec, inv)
                     .ok());
}

TEST_F(ByzantineTest, DetectorGatedVersionIsFailsafeTolerant) {
    const Predicate inv = reachable_invariant(sys, sys.failsafe);
    const ToleranceReport r = check_failsafe(
        sys.failsafe, sys.byzantine_fault, sys.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(ByzantineTest, FailsafeVersionIsNotMasking) {
    // A Byzantine general that equivocates can block one process forever —
    // fail-safe, but liveness is lost without the corrector.
    const Predicate inv = reachable_invariant(sys, sys.failsafe);
    EXPECT_FALSE(check_masking(sys.failsafe, sys.byzantine_fault, sys.spec,
                               inv)
                     .ok());
}

TEST_F(ByzantineTest, FullConstructionIsMaskingTolerant) {
    const Predicate inv = reachable_invariant(sys, sys.masking);
    const ToleranceReport r =
        check_masking(sys.masking, sys.byzantine_fault, sys.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(ByzantineTest, MaskingVersionIsAlsoFailsafe) {
    const Predicate inv = reachable_invariant(sys, sys.masking);
    EXPECT_TRUE(check_failsafe(sys.masking, sys.byzantine_fault, sys.spec,
                               inv)
                    .ok());
}

TEST_F(ByzantineTest, DbWitnessIsADetectorOfCorrectDecision) {
    // 'W.j detects (d.j = corrdecn)' in the masking program, from its
    // fault-free invariant.
    const Predicate inv = reachable_invariant(sys, sys.masking);
    for (int j = 1; j < sys.num_processes; ++j) {
        const DetectorClaim claim{sys.witness(j), sys.detection(j), inv};
        EXPECT_TRUE(check_detector(sys.masking, claim).ok) << "process " << j;
    }
}

TEST_F(ByzantineTest, ThreeProcessesCannotMaskOneByzantine) {
    // n = 3, f = 1 < the 3f+1 threshold: the construction must fail.
    ByzantineSystem small = make_byzantine(3, 1);
    const Predicate inv = reachable_invariant(small, small.masking);
    EXPECT_FALSE(check_masking(small.masking, small.byzantine_fault,
                               small.spec, inv)
                     .ok());
}

TEST_F(ByzantineTest, NoFaultBudgetMeansTrivialTolerance) {
    ByzantineSystem calm = make_byzantine(4, 0);
    const Predicate inv = reachable_invariant(calm, calm.masking);
    EXPECT_TRUE(check_masking(calm.masking, calm.byzantine_fault, calm.spec,
                              inv)
                    .ok());
}

TEST_F(ByzantineTest, FiveProcessesTolerateOneByzantine) {
    // n = 5 > 3f+1 also works (more slack than the tight bound).
    ByzantineSystem five = make_byzantine(5, 1);
    const Predicate inv = reachable_invariant(five, five.masking);
    const ToleranceReport r = check_masking(
        five.masking, five.byzantine_fault, five.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(ByzantineTest, InitialStateShape) {
    const StateIndex s0 = sys.initial_state(1);
    EXPECT_EQ(sys.space->get(s0, sys.d_g), 1);
    EXPECT_EQ(sys.space->get(s0, sys.b_g), 0);
    for (std::size_t i = 0; i < sys.d.size(); ++i) {
        EXPECT_EQ(sys.space->get(s0, sys.d[i]), 2);
        EXPECT_EQ(sys.space->get(s0, sys.out[i]), 2);
        EXPECT_EQ(sys.space->get(s0, sys.b[i]), 0);
    }
    EXPECT_THROW(sys.initial_state(2), ContractError);
}

TEST_F(ByzantineTest, WitnessRequiresAllDecisionsPresent) {
    StateIndex s = sys.initial_state(1);
    EXPECT_FALSE(sys.witness(1).eval(*sys.space, s));
    for (std::size_t i = 0; i < sys.d.size(); ++i)
        s = sys.space->set(s, sys.d[i], 1);
    EXPECT_TRUE(sys.witness(1).eval(*sys.space, s));
    s = sys.space->set(s, sys.d[0], 0);  // minority now
    EXPECT_FALSE(sys.witness(1).eval(*sys.space, s));
    EXPECT_TRUE(sys.witness(2).eval(*sys.space, s));
}

}  // namespace
}  // namespace dcft
