// The alternating-bit protocol: masking tolerant to loss and duplication,
// not tolerant to corruption — channel fault classes meet the paper's
// tolerance taxonomy.
#include "apps/alternating_bit.hpp"

#include <gtest/gtest.h>

#include "runtime/simulator.hpp"
#include "verify/fairness.hpp"
#include "verify/invariant.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::AlternatingBitSystem;
using apps::make_alternating_bit;

Predicate start_state(const AlternatingBitSystem& sys) {
    const StateIndex init = sys.initial_state();
    return Predicate("init", [init](const StateSpace&, StateIndex s) {
        return s == init;
    });
}

TEST(AlternatingBitTest, RefinesSpecOverReliableChannels) {
    auto sys = make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    EXPECT_TRUE(refines_spec(sys.protocol, sys.spec, inv).ok);
}

TEST(AlternatingBitTest, PhaseInvariantHoldsOnReachableStates) {
    auto sys = make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    EXPECT_TRUE(implies_everywhere(*sys.space, inv, sys.in_sync));
}

TEST(AlternatingBitTest, MaskingTolerantToMessageLoss) {
    auto sys = make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    const ToleranceReport r =
        check_masking(sys.protocol, sys.loss, sys.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(AlternatingBitTest, MaskingTolerantToDuplication) {
    auto sys = make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    const ToleranceReport r =
        check_masking(sys.protocol, sys.duplication, sys.spec, inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(AlternatingBitTest, NotEvenFailsafeUnderCorruption) {
    // The classic limit: without checksums (a detector!), a flipped bit
    // makes a retransmission look like a fresh message — duplicate
    // delivery, a safety violation.
    auto sys = make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    const ToleranceReport r =
        check_failsafe(sys.protocol, sys.corruption, sys.spec, inv);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(r.reason().find("safety violated"), std::string::npos);
}

TEST(AlternatingBitTest, StreamKeepsFlowing) {
    auto sys = make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    const TransitionSystem ts(sys.protocol, nullptr, inv);
    // delivered also advances round the window, not just sent.
    for (Value c = 0; c < sys.window_mod; ++c) {
        EXPECT_TRUE(
            check_leads_to(
                ts, Predicate::var_eq(*sys.space, "delivered", c),
                Predicate::var_eq(*sys.space, "delivered",
                                  (c + 1) % sys.window_mod),
                false)
                .ok)
            << c;
    }
}

TEST(AlternatingBitTest, SimulatedDeliveryUnderHeavyLoss) {
    auto sys = make_alternating_bit();
    RandomScheduler scheduler;
    Simulator sim(sys.protocol, scheduler, 21);
    FaultInjector injector(sys.loss, 0.3, 10);
    sim.set_fault_injector(&injector);
    RunOptions options;
    options.max_steps = 4000;
    options.stop_when = Predicate(
        "wrapped", [sent = sys.sent](const StateSpace& sp, StateIndex s) {
            return sp.get(s, sent) == 3;
        });
    const RunResult run = sim.run(sys.initial_state(), options);
    EXPECT_TRUE(run.stopped_early);  // three messages through, despite loss
    EXPECT_GT(run.fault_steps, 0u);
}

TEST(AlternatingBitTest, ParameterSweep) {
    for (int capacity : {1, 2, 3}) {
        for (int window : {2, 4}) {
            auto sys = make_alternating_bit(capacity, window);
            const Predicate inv =
                reachable_invariant(sys.protocol, start_state(sys));
            EXPECT_TRUE(
                check_masking(sys.protocol, sys.loss, sys.spec, inv).ok())
                << "capacity=" << capacity << " window=" << window;
        }
    }
}

TEST(AlternatingBitTest, BadParametersRejected) {
    EXPECT_THROW(make_alternating_bit(0, 4), ContractError);
    EXPECT_THROW(make_alternating_bit(2, 1), ContractError);
}

}  // namespace
}  // namespace dcft
