// Self-stabilizing leader election on a rooted tree — the corrector
// hierarchy: an aggregation corrector feeding a broadcast corrector.
#include "apps/leader_election.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "verify/component_checker.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::LeaderElectionSystem;
using apps::make_leader_election;

// A 4-node tree: 0 is the root, children 1 and 2; 3 under 1.
const std::vector<int> kTree{0, 0, 0, 1};

TEST(LeaderElectionTest, TrueLeaderIsMaxId) {
    auto sys = make_leader_election(kTree, {2, 0, 3, 1});
    EXPECT_EQ(sys.true_leader, 3);
    auto identity = make_leader_election(kTree);
    EXPECT_EQ(identity.true_leader, 3);
}

TEST(LeaderElectionTest, LegitimateStateIsTerminalAndCorrect) {
    auto sys = make_leader_election(kTree, {2, 0, 3, 1});
    const StateIndex s = sys.legitimate_state();
    EXPECT_TRUE(sys.legitimate.eval(*sys.space, s));
    EXPECT_TRUE(sys.program.is_terminal(s));
    // agg of node 1 covers subtree {1,3}: max(0,1) = 1.
    EXPECT_EQ(sys.space->get(s, sys.agg[1]), 1);
    // agg of the root covers everything.
    EXPECT_EQ(sys.space->get(s, sys.agg[0]), 3);
}

TEST(LeaderElectionTest, ConvergesFromAnyState) {
    auto sys = make_leader_election(kTree, {2, 0, 3, 1});
    EXPECT_TRUE(
        converges(sys.program, nullptr, Predicate::top(), sys.legitimate)
            .ok);
}

TEST(LeaderElectionTest, NonmaskingTolerantToStateCorruption) {
    auto sys = make_leader_election(kTree);
    const ToleranceReport r = check_nonmasking(
        sys.program, sys.corrupt_any, sys.spec, sys.legitimate);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(LeaderElectionTest, AggregationCorrectorUnderliesBroadcast) {
    // The hierarchy: 'aggregation-correct corrects itself' from anywhere,
    // and given aggregation, 'leader-agreed' is corrected too.
    auto sys = make_leader_election(kTree, {2, 0, 3, 1});
    const CorrectorClaim agg_claim{sys.aggregation_correct,
                                   sys.aggregation_correct,
                                   Predicate::top()};
    EXPECT_TRUE(check_corrector(sys.program, agg_claim).ok);
    const CorrectorClaim ldr_claim{sys.legitimate, sys.legitimate,
                                   sys.aggregation_correct};
    EXPECT_TRUE(check_corrector(sys.program, ldr_claim).ok);
}

TEST(LeaderElectionTest, ChainTopology) {
    auto sys = make_leader_election({0, 0, 1}, {1, 2, 0});
    EXPECT_EQ(sys.true_leader, 2);
    EXPECT_TRUE(
        converges(sys.program, nullptr, Predicate::top(), sys.legitimate)
            .ok);
}

TEST(LeaderElectionTest, BadTreeRejected) {
    EXPECT_THROW(make_leader_election({0, 2, 1}), ContractError);
    EXPECT_THROW(make_leader_election({1, 0}), ContractError);
}

}  // namespace
}  // namespace dcft
