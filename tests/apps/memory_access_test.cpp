// The paper's running example, Figures 1-3 (Sections 3.3, 4.3, 5.1):
// every claim made about p, pf, pn, pm is verified mechanically, plus the
// negative results that delimit them.
#include "apps/memory_access.hpp"

#include <gtest/gtest.h>

#include "verify/component_checker.hpp"
#include "verify/encapsulation.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

using apps::MemoryAccessSystem;
using apps::make_memory_access;

class MemoryAccessTest : public ::testing::Test {
protected:
    MemoryAccessSystem sys = make_memory_access();
};

// --- The intolerant program p. ---

TEST_F(MemoryAccessTest, IntolerantRefinesSpecInAbsenceOfFaults) {
    EXPECT_TRUE(refines_spec(sys.intolerant, sys.spec, sys.S).ok);
}

TEST_F(MemoryAccessTest, IntolerantIsNotFailsafeTolerant) {
    // Once the page fault removes <addr, val>, the unguarded read returns
    // an arbitrary value: safety breaks.
    const ToleranceReport r = check_failsafe(sys.intolerant, sys.page_fault,
                                             sys.spec, sys.S);
    EXPECT_FALSE(r.ok());
}

// --- Figure 1: pf is fail-safe tolerant (Theorem 3.6 instance). ---

TEST_F(MemoryAccessTest, TheoremHypothesis_PfRefinesP) {
    EXPECT_TRUE(refines_program(sys.failsafe, sys.intolerant, sys.S).ok);
}

TEST_F(MemoryAccessTest, TheoremHypothesis_PfEncapsulatesP) {
    EXPECT_TRUE(check_encapsulates(sys.failsafe, sys.intolerant).ok);
}

TEST_F(MemoryAccessTest, PfIsFailsafePageFaultTolerant) {
    const ToleranceReport r =
        check_failsafe(sys.failsafe, sys.page_fault, sys.spec, sys.S);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(MemoryAccessTest, PfContainsAFailsafeTolerantDetector) {
    // "pf is a fail-safe 'page fault'-tolerant detector of a detection
    // predicate of p": witness Z1, detection predicate X1, context S,
    // fault span U1 (Section 3.3).
    const DetectorClaim claim{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_tolerant_detector(sys.failsafe, sys.page_fault, claim,
                                        Tolerance::FailSafe, sys.U1)
                    .ok);
}

TEST_F(MemoryAccessTest, PfIsNotNonmaskingTolerant) {
    // pf deadlocks after a page fault — it never recovers the memory.
    EXPECT_FALSE(
        check_nonmasking(sys.failsafe, sys.page_fault, sys.spec, sys.S)
            .ok());
}

TEST_F(MemoryAccessTest, PfIsNotMaskingTolerant) {
    EXPECT_FALSE(
        check_masking(sys.failsafe, sys.page_fault, sys.spec, sys.S).ok());
}

TEST_F(MemoryAccessTest, UnrestrictedPageFaultBreaksPf) {
    // If the fault may strike *after* detection (between Z1 := true and
    // the gated read), pf is no longer fail-safe — the justification for
    // reading the paper's "initially removed" as a guard on the fault.
    const ToleranceReport r = check_failsafe(
        sys.failsafe, sys.unrestricted_page_fault, sys.spec, sys.S);
    EXPECT_FALSE(r.ok());
}

// --- Figure 2: pn is nonmasking tolerant (Theorem 4.3 instance). ---

TEST_F(MemoryAccessTest, TheoremHypothesis_PnRefinesP) {
    EXPECT_TRUE(refines_program(sys.nonmasking, sys.intolerant, sys.S).ok);
}

TEST_F(MemoryAccessTest, PnIsNonmaskingPageFaultTolerant) {
    const ToleranceReport r =
        check_nonmasking(sys.nonmasking, sys.page_fault, sys.spec, sys.S);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(MemoryAccessTest, PnSurvivesEvenUnrestrictedPageFaults) {
    const ToleranceReport r = check_nonmasking(
        sys.nonmasking, sys.unrestricted_page_fault, sys.spec, sys.S);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(MemoryAccessTest, PnContainsANonmaskingTolerantCorrector) {
    // "pn is a nonmasking 'page fault'-tolerant corrector of an invariant
    // of p": correction and witness predicate are both X1 (Section 4.3).
    const CorrectorClaim claim{sys.X1, sys.X1, sys.S};
    EXPECT_TRUE(check_tolerant_corrector(sys.nonmasking, sys.page_fault,
                                         claim, Tolerance::Nonmasking,
                                         sys.U1)
                    .ok);
}

TEST_F(MemoryAccessTest, PnIsNotFailsafeTolerant) {
    // During recovery pn's read may return an arbitrary value: the safety
    // specification is violated in the presence of faults.
    EXPECT_FALSE(
        check_failsafe(sys.nonmasking, sys.page_fault, sys.spec, sys.S)
            .ok());
}

// --- Figure 3: pm is masking tolerant (Theorem 5.5 instance). ---

TEST_F(MemoryAccessTest, TheoremHypothesis_PmEncapsulatesPn) {
    EXPECT_TRUE(check_encapsulates(sys.masking, sys.nonmasking).ok);
}

TEST_F(MemoryAccessTest, PmIsMaskingPageFaultTolerant) {
    const ToleranceReport r =
        check_masking(sys.masking, sys.page_fault, sys.spec, sys.S);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST_F(MemoryAccessTest, PmIsAlsoFailsafeAndNonmasking) {
    // Masking is the strictest grade.
    EXPECT_TRUE(
        check_failsafe(sys.masking, sys.page_fault, sys.spec, sys.S).ok());
    EXPECT_TRUE(
        check_nonmasking(sys.masking, sys.page_fault, sys.spec, sys.S)
            .ok());
}

TEST_F(MemoryAccessTest, PmContainsAMaskingTolerantDetector) {
    const DetectorClaim claim{sys.Z1, sys.X1, sys.S};
    EXPECT_TRUE(check_tolerant_detector(sys.masking, sys.page_fault, claim,
                                        Tolerance::Masking, sys.U1)
                    .ok);
}

TEST_F(MemoryAccessTest, PmContainsAMaskingTolerantCorrector) {
    // Theorem 5.5: pm is a *masking tolerant* corrector — it refines the
    // (unweakened) corrects specification from the span T = U1 under
    // program steps alone...
    const CorrectorClaim claim{sys.X1, sys.X1, sys.U1};
    EXPECT_TRUE(check_corrector(sys.masking, claim).ok);
    // ...but only a *nonmasking F-tolerant* corrector: the page fault
    // itself falsifies X1, violating the corrector's Convergence closure
    // on the fault step (the asymmetry Theorem 5.5 calls out).
    EXPECT_TRUE(check_tolerant_corrector(sys.masking, sys.page_fault, claim,
                                         Tolerance::Nonmasking, sys.U1)
                    .ok);
    EXPECT_FALSE(check_tolerant_corrector(sys.masking, sys.page_fault,
                                          claim, Tolerance::Masking, sys.U1)
                     .ok);
}

// --- Structural facts about the model. ---

TEST_F(MemoryAccessTest, U1IsTheFaultSpanShape) {
    // The canonical span of pm from S is contained in U1 (Section 5.1
    // takes T := U1).
    const ToleranceReport r =
        check_masking(sys.masking, sys.page_fault, sys.spec, sys.S);
    for (StateIndex s = 0; s < sys.space->num_states(); ++s) {
        if (r.fault_span.eval(*sys.space, s)) {
            EXPECT_TRUE(sys.U1.eval(*sys.space, s)) << sys.space->format(s);
        }
    }
}

TEST_F(MemoryAccessTest, PredicateAlgebra) {
    EXPECT_TRUE(implies_everywhere(*sys.space, sys.S, sys.U1));
    EXPECT_TRUE(implies_everywhere(*sys.space, sys.S, sys.X1));
    EXPECT_FALSE(implies_everywhere(*sys.space, sys.U1, sys.X1));
    EXPECT_TRUE(sys.X1.eval(*sys.space, sys.initial_state()));
    EXPECT_FALSE(sys.Z1.eval(*sys.space, sys.initial_state()));
}

TEST_F(MemoryAccessTest, DifferentDomainsAndValues) {
    for (Value domain : {2, 4, 5}) {
        for (Value v = 0; v < domain; v += domain - 1) {
            auto sys2 = make_memory_access(domain, v);
            EXPECT_TRUE(check_masking(sys2.masking, sys2.page_fault,
                                      sys2.spec, sys2.S)
                            .ok())
                << "domain=" << domain << " v=" << v;
        }
    }
}

}  // namespace
}  // namespace dcft
