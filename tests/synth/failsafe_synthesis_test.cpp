// Question 2 of the paper, fail-safe direction: adding detectors to a
// fault-intolerant program yields a fail-safe tolerant program.
#include "synth/add_failsafe.hpp"

#include <gtest/gtest.h>

#include "apps/memory_access.hpp"
#include "apps/tmr.hpp"
#include "verify/detection_predicate.hpp"
#include "verify/encapsulation.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

TEST(FailsafeSynthesisTest, GatesEveryActionWithItsWeakestPredicate) {
    auto sys = apps::make_tmr(2);
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());
    ASSERT_EQ(fs.program.num_actions(), sys.intolerant.num_actions());
    ASSERT_EQ(fs.detection_predicates.size(), sys.intolerant.num_actions());
    for (std::size_t i = 0; i < fs.program.num_actions(); ++i) {
        EXPECT_TRUE(equivalent(
            *sys.space, fs.detection_predicates[i],
            weakest_detection_predicate(*sys.space, sys.intolerant.action(i),
                                        sys.spec.safety())));
    }
}

TEST(FailsafeSynthesisTest, SynthesizedTmrIsFailsafeTolerant) {
    auto sys = apps::make_tmr(2);
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());
    const ToleranceReport r = check_failsafe(
        fs.program, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(FailsafeSynthesisTest, SynthesizedTmrMatchesHandBuiltDetectorGating) {
    // The synthesized guard g /\ wdp must be equivalent to the paper's
    // hand-chosen DR witness gating wherever the intolerant guard holds:
    // IR may fire exactly when out = bot and x is a majority value.
    auto sys = apps::make_tmr(2);
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());
    const Action& synthesized = fs.program.action(0);
    const Action& hand_built = sys.failsafe.action_named(
        sys.failsafe.action(0).name());
    for (StateIndex s = 0; s < sys.space->num_states(); ++s)
        EXPECT_EQ(synthesized.enabled(*sys.space, s),
                  hand_built.enabled(*sys.space, s))
            << sys.space->format(s);
}

TEST(FailsafeSynthesisTest, SynthesizedMemoryAccessIsFailsafeTolerant) {
    auto sys = apps::make_memory_access();
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());
    const ToleranceReport r =
        check_failsafe(fs.program, sys.page_fault, sys.spec, sys.S);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(FailsafeSynthesisTest, SynthesisEncapsulatesTheIntolerantProgram) {
    auto sys = apps::make_memory_access();
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());
    EXPECT_TRUE(check_encapsulates(fs.program, sys.intolerant).ok);
}

TEST(FailsafeSynthesisTest, IntolerantProgramItselfFailsTheCheck) {
    // Sanity: the synthesis is doing real work.
    auto sys = apps::make_tmr(2);
    EXPECT_FALSE(check_failsafe(sys.intolerant, sys.corrupt_one_input,
                                sys.spec, sys.invariant)
                     .ok());
}

}  // namespace
}  // namespace dcft
