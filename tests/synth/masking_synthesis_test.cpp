// Question 2 of the paper, masking direction: detectors (fail-safe gating)
// plus a safety-respecting corrector yield masking tolerance — the
// constructive mirror of Theorem 5.2.
#include "synth/add_masking.hpp"

#include <gtest/gtest.h>

#include "apps/tmr.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 6, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

struct Fixture {
    std::shared_ptr<const StateSpace> space = counter_space();
    Program p{space, "climb"};
    FaultClass f{space, "throw"};
    ProblemSpec spec;
    Predicate inv;

    Fixture() {
        p.add_action(Action::assign(
            *space, "inc",
            Predicate("v<3",
                      [](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, 0) < 3;
                      }),
            "v",
            [](const StateSpace& sp, StateIndex s) {
                return sp.get(s, 0) + 1;
            }));
        f.add_action(Action::assign_const(
            *space, "throw",
            Predicate("v<=3",
                      [](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, 0) <= 3;
                      }),
            "v", 4));
        LivenessSpec live;
        live.add_eventually(at(*space, 3));
        spec = ProblemSpec("reach3-avoid5",
                           SafetySpec::never(at(*space, 5)),
                           std::move(live));
        inv = Predicate("v<=3", [](const StateSpace&, StateIndex s) {
            return s <= 3;
        });
    }
};

TEST(MaskingSynthesisTest, IntolerantProgramIsNotMasking) {
    Fixture fx;
    EXPECT_FALSE(check_masking(fx.p, fx.f, fx.spec, fx.inv).ok());
}

TEST(MaskingSynthesisTest, SynthesizedProgramIsMasking) {
    Fixture fx;
    const MaskingSynthesis mk =
        add_masking(fx.p, fx.f, fx.spec.safety(), fx.inv);
    EXPECT_TRUE(mk.complete);
    const ToleranceReport r =
        check_masking(mk.program, fx.f, fx.spec, fx.inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(MaskingSynthesisTest, SynthesizedProgramIsAlsoFailsafeAndNonmasking) {
    // Masking is the strictest grade; the synthesized program must pass
    // all three checks.
    Fixture fx;
    const MaskingSynthesis mk =
        add_masking(fx.p, fx.f, fx.spec.safety(), fx.inv);
    EXPECT_TRUE(check_failsafe(mk.program, fx.f, fx.spec, fx.inv).ok());
    EXPECT_TRUE(check_nonmasking(mk.program, fx.f, fx.spec, fx.inv).ok());
}

TEST(MaskingSynthesisTest, RecoveryAvoidsForbiddenStates) {
    // The forbidden state v == 5 sits right next to the perturbed state
    // v == 4 in single-variable-write space; safe recovery must route
    // around it.
    Fixture fx;
    const MaskingSynthesis mk =
        add_masking(fx.p, fx.f, fx.spec.safety(), fx.inv);
    std::vector<StateIndex> succ;
    for (StateIndex s = 0; s < fx.space->num_states(); ++s) {
        succ.clear();
        mk.corrector.successors(s, succ);
        for (StateIndex t : succ) EXPECT_NE(fx.space->get(t, 0), 5);
    }
}

TEST(MaskingSynthesisTest, ReportsDetectionPredicates) {
    Fixture fx;
    const MaskingSynthesis mk =
        add_masking(fx.p, fx.f, fx.spec.safety(), fx.inv);
    ASSERT_EQ(mk.detection_predicates.size(), fx.p.num_actions());
}

TEST(MaskingSynthesisTest, ImpossibleMaskingReportedIncomplete) {
    // Forbid every state except the perturbed one and the invariant is
    // unreachable by safe single-variable writes: synthesis must admit it.
    auto space = make_space({Variable{"v", 4, {}}});
    Program p(space, "p");  // no actions
    FaultClass f(space, "F");
    f.add_action(Action::assign_const(
        *space, "hit", Predicate::var_eq(*space, "v", 0), "v", 3));
    // Safety forbids entering states 1 and 2 — and also jumping 3 -> 0.
    SafetySpec safety(
        "wall", Predicate::bottom(),
        [](const StateSpace&, StateIndex from, StateIndex to) {
            if (from == to) return false;
            if (to == 1 || to == 2) return true;
            return from == 3 && to == 0;
        });
    const MaskingSynthesis mk =
        add_masking(p, f, safety, Predicate::var_eq(*space, "v", 0));
    EXPECT_FALSE(mk.complete);
    EXPECT_FALSE(mk.unrecoverable.empty());
}

TEST(MaskingSynthesisTest, TmrSynthesisMatchesPaperConstruction) {
    // Section 6.1 re-derived mechanically: gate IR with its weakest
    // detection predicate (the DR step), then synthesize a corrector whose
    // correction target is the *goal* 'out = uncorrupted value' — the CR
    // step — with recovery restricted to safe writes of `out`. The result
    // passes the same masking check as the hand-built DR;IR || CR.
    auto sys = apps::make_tmr(2);
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());

    NonmaskingOptions opts;
    opts.safety = &sys.spec.safety();
    opts.writable = {"out"};
    opts.span_from = sys.invariant;  // goal-correction: span from S_tmr
    const NonmaskingSynthesis nm = add_nonmasking(
        fs.program, sys.corrupt_one_input, sys.output_correct, opts);
    EXPECT_TRUE(nm.complete);

    const ToleranceReport synthesized = check_masking(
        nm.program, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(synthesized.ok()) << synthesized.reason();
    const ToleranceReport hand = check_masking(
        sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant);
    EXPECT_TRUE(hand.ok()) << hand.reason();
}

}  // namespace
}  // namespace dcft
