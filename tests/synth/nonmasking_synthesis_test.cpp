// Question 2 of the paper, nonmasking direction: composing a synthesized
// corrector with a fault-intolerant program yields recovery.
#include "synth/add_nonmasking.hpp"

#include <gtest/gtest.h>

#include "verify/component_checker.hpp"
#include "verify/tolerance_checker.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> counter_space() {
    return make_space({Variable{"v", 6, {}}});
}

Predicate at(const StateSpace& sp, Value v) {
    return Predicate::var_eq(sp, "v", v);
}

/// p: v < 3 --> v := v+1; goal 3; faults throw v to 4 or 5 where p stalls.
struct Fixture {
    std::shared_ptr<const StateSpace> space = counter_space();
    Program p{space, "climb"};
    FaultClass f{space, "throw"};
    ProblemSpec spec;
    Predicate inv;

    Fixture() {
        p.add_action(Action::assign(
            *space, "inc",
            Predicate("v<3",
                      [](const StateSpace& sp, StateIndex s) {
                          return sp.get(s, 0) < 3;
                      }),
            "v",
            [](const StateSpace& sp, StateIndex s) {
                return sp.get(s, 0) + 1;
            }));
        f.add_action(Action::nondet(
            "throw", Predicate::top(),
            [](const StateSpace& sp, StateIndex s,
               std::vector<StateIndex>& out) {
                out.push_back(sp.set(s, 0, 4));
                out.push_back(sp.set(s, 0, 5));
            }));
        LivenessSpec live;
        live.add_eventually(at(*space, 3));
        spec = ProblemSpec("reach3", SafetySpec(), std::move(live));
        inv = Predicate("v<=3", [](const StateSpace&, StateIndex s) {
            return s <= 3;
        });
    }
};

TEST(NonmaskingSynthesisTest, IntolerantProgramStallsOutsideInvariant) {
    Fixture fx;
    EXPECT_FALSE(check_nonmasking(fx.p, fx.f, fx.spec, fx.inv).ok());
}

TEST(NonmaskingSynthesisTest, SingleStepCorrectorRestoresTolerance) {
    Fixture fx;
    const NonmaskingSynthesis nm = add_nonmasking(fx.p, fx.f, fx.inv);
    EXPECT_TRUE(nm.complete);
    const ToleranceReport r =
        check_nonmasking(nm.program, fx.f, fx.spec, fx.inv);
    EXPECT_TRUE(r.ok()) << r.reason();
}

TEST(NonmaskingSynthesisTest, AtomicResetCorrectorAlsoWorks) {
    Fixture fx;
    NonmaskingOptions opts;
    opts.single_step = false;
    const NonmaskingSynthesis nm = add_nonmasking(fx.p, fx.f, fx.inv, opts);
    EXPECT_TRUE(nm.complete);
    const ToleranceReport r =
        check_nonmasking(nm.program, fx.f, fx.spec, fx.inv);
    EXPECT_TRUE(r.ok()) << r.reason();
    // The atomic corrector jumps straight into the invariant.
    std::vector<StateIndex> succ;
    for (StateIndex s = 4; s <= 5; ++s) {
        succ.clear();
        nm.corrector.successors(s, succ);
        ASSERT_EQ(succ.size(), 1u);
        EXPECT_TRUE(fx.inv.eval(*fx.space, succ[0]));
    }
}

TEST(NonmaskingSynthesisTest, CorrectorIsDisabledInsideInvariant) {
    Fixture fx;
    const NonmaskingSynthesis nm = add_nonmasking(fx.p, fx.f, fx.inv);
    for (StateIndex s = 0; s <= 3; ++s)
        EXPECT_TRUE(nm.corrector.is_terminal(s)) << s;
}

TEST(NonmaskingSynthesisTest, SynthesizedCompositionIsACorrector) {
    // The composed program refines 'S corrects S' from the fault span —
    // the Arora-Gouda special case (Remark, Section 4.1).
    Fixture fx;
    const NonmaskingSynthesis nm = add_nonmasking(fx.p, fx.f, fx.inv);
    const CorrectorClaim claim{fx.inv, fx.inv, nm.fault_span};
    EXPECT_TRUE(check_corrector(nm.program, claim).ok);
}

TEST(NonmaskingSynthesisTest, RestrictedWritablesReportIncompleteness) {
    // If the corrector may not write v, nothing can recover: the synthesis
    // must say so rather than emit a bogus corrector.
    auto space = make_space({Variable{"v", 4, {}}, Variable{"w", 2, {}}});
    Program p(space, "p");
    p.add_action(Action::assign_const(
        *space, "fix-w", Predicate::var_eq(*space, "w", 1), "w", 0));
    FaultClass f(space, "F");
    f.add_action(Action::assign_const(
        *space, "hit-v", Predicate::var_eq(*space, "v", 0), "v", 2));
    const Predicate inv =
        (Predicate::var_eq(*space, "v", 0) && Predicate::var_eq(*space, "w",
                                                                0))
            .renamed("inv");
    NonmaskingOptions limited;
    limited.writable = {"w"};  // cannot undo the v corruption
    const NonmaskingSynthesis nm = add_nonmasking(p, f, inv, limited);
    EXPECT_FALSE(nm.complete);
    EXPECT_FALSE(nm.unrecoverable.empty());
    NonmaskingOptions full;
    const NonmaskingSynthesis ok = add_nonmasking(p, f, inv, full);
    EXPECT_TRUE(ok.complete);
}

TEST(NonmaskingSynthesisTest, RecoveryStaysInsideFaultSpan) {
    Fixture fx;
    const NonmaskingSynthesis nm = add_nonmasking(fx.p, fx.f, fx.inv);
    std::vector<StateIndex> succ;
    for (StateIndex s = 0; s < fx.space->num_states(); ++s) {
        if (!nm.fault_span.eval(*fx.space, s)) continue;
        succ.clear();
        nm.corrector.successors(s, succ);
        for (StateIndex t : succ)
            EXPECT_TRUE(nm.fault_span.eval(*fx.space, t));
    }
}

}  // namespace
}  // namespace dcft
