#include "gc/composition.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space2x3() {
    return make_space({Variable{"a", 2, {}}, Variable{"b", 3, {}}});
}

Program single(std::shared_ptr<const StateSpace> sp, std::string name,
               Action ac) {
    Program p(sp, std::move(name));
    p.add_action(std::move(ac));
    return p;
}

TEST(CompositionTest, ParallelIsActionUnion) {
    auto sp = space2x3();
    const Program p = single(
        sp, "p", Action::assign_const(*sp, "pa", Predicate::top(), "a", 1));
    const Program q = single(
        sp, "q", Action::assign_const(*sp, "qb", Predicate::top(), "b", 2));
    const Program pq = parallel(p, q);
    EXPECT_EQ(pq.num_actions(), 2u);
    EXPECT_EQ(pq.action(0).name(), "pa");
    EXPECT_EQ(pq.action(1).name(), "qb");
}

TEST(CompositionTest, ParallelRequiresSharedSpace) {
    auto sp1 = space2x3();
    auto sp2 = space2x3();
    const Program p = single(
        sp1, "p", Action::assign_const(*sp1, "x", Predicate::top(), "a", 1));
    const Program q = single(
        sp2, "q", Action::assign_const(*sp2, "y", Predicate::top(), "a", 1));
    EXPECT_THROW(parallel(p, q), ContractError);
}

TEST(CompositionTest, ParallelUnionsVarSets) {
    auto sp = space2x3();
    Program p(sp, sp->varset({"a"}), "p");
    Program q(sp, sp->varset({"b"}), "q");
    const Program pq = parallel(p, q);
    EXPECT_EQ(pq.vars().count(), 2u);
}

TEST(CompositionTest, RestrictGatesEveryAction) {
    auto sp = space2x3();
    Program p(sp, "p");
    p.add_action(Action::assign_const(*sp, "x", Predicate::top(), "a", 1));
    p.add_action(Action::assign_const(*sp, "y", Predicate::top(), "b", 0));
    const Predicate z = Predicate::var_eq(*sp, "b", 2);
    const Program zp = restrict_program(z, p);
    ASSERT_EQ(zp.num_actions(), 2u);
    const StateIndex outside = sp->encode({{0, 1}});
    const StateIndex inside = sp->encode({{0, 2}});
    for (const auto& ac : zp.actions()) {
        EXPECT_FALSE(ac.enabled(*sp, outside));
        EXPECT_TRUE(ac.enabled(*sp, inside));
    }
}

TEST(CompositionTest, RestrictRecordsProvenance) {
    auto sp = space2x3();
    Program p(sp, "p");
    Action base = Action::assign_const(*sp, "x", Predicate::top(), "a", 1);
    p.add_action(base);
    const Program zp = restrict_program(Predicate::top(), p);
    EXPECT_EQ(zp.action(0).root_base().id(), base.id());
}

TEST(CompositionTest, SequenceIsParallelWithRestriction) {
    // p ;_Z q == p || (Z /\ q): q's actions run only under Z, p's freely.
    auto sp = space2x3();
    const Program p = single(
        sp, "p", Action::assign_const(*sp, "pa", Predicate::top(), "a", 1));
    const Program q = single(
        sp, "q", Action::assign_const(*sp, "qb", Predicate::top(), "b", 0));
    const Predicate z = Predicate::var_eq(*sp, "a", 1);
    const Program seq = sequence(p, z, q);
    ASSERT_EQ(seq.num_actions(), 2u);
    const StateIndex a0 = sp->encode({{0, 2}});
    EXPECT_TRUE(seq.action(0).enabled(*sp, a0));   // p unrestricted
    EXPECT_FALSE(seq.action(1).enabled(*sp, a0));  // q gated by Z
    const StateIndex a1 = sp->encode({{1, 2}});
    EXPECT_TRUE(seq.action(1).enabled(*sp, a1));
}

TEST(CompositionTest, WithFaultsAppendsFaultActions) {
    auto sp = space2x3();
    const Program p = single(
        sp, "p", Action::assign_const(*sp, "pa", Predicate::top(), "a", 1));
    FaultClass f(sp, "F");
    f.add_action(Action::assign_const(*sp, "fb", Predicate::top(), "b", 1));
    const Program pf = with_faults(p, f);
    EXPECT_EQ(pf.num_actions(), 2u);
}

TEST(CompositionTest, CompositionNamesAreDescriptive) {
    auto sp = space2x3();
    const Program p = single(
        sp, "p", Action::assign_const(*sp, "pa", Predicate::top(), "a", 1));
    const Program q = single(
        sp, "q", Action::assign_const(*sp, "qb", Predicate::top(), "b", 0));
    EXPECT_EQ(parallel(p, q).name(), "(p || q)");
    EXPECT_NE(restrict_program(Predicate::top(), p).name().find("/\\"),
              std::string::npos);
}

}  // namespace
}  // namespace dcft
