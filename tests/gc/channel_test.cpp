#include "gc/channel.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dcft {
namespace {

struct Fixture {
    std::shared_ptr<const StateSpace> space;
    Channel chan;

    static Fixture make(int capacity, Value domain) {
        auto builder = std::make_shared<StateSpace>();
        Channel chan(*builder, "c", capacity, domain);
        builder->add_variable("pad", 2);  // another variable alongside
        builder->freeze();
        return Fixture{builder, chan};
    }
};

TEST(ChannelTest, DomainSizeIsGeometricSum) {
    auto fx = Fixture::make(2, 3);
    // lengths 0,1,2 over 3 values: 1 + 3 + 9 = 13 encodings.
    EXPECT_EQ(fx.space->variable(fx.chan.var()).domain_size, 13);
    auto fx2 = Fixture::make(3, 2);
    EXPECT_EQ(fx2.space->variable(fx2.chan.var()).domain_size,
              1 + 2 + 4 + 8);
}

TEST(ChannelTest, PushPopFifoOrder) {
    auto fx = Fixture::make(3, 4);
    StateIndex s = 0;
    EXPECT_TRUE(fx.chan.empty(*fx.space, s));
    s = fx.chan.push(*fx.space, s, 2);
    s = fx.chan.push(*fx.space, s, 0);
    s = fx.chan.push(*fx.space, s, 3);
    EXPECT_TRUE(fx.chan.full(*fx.space, s));
    EXPECT_EQ(fx.chan.size(*fx.space, s), 3);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 2);
    s = fx.chan.pop(*fx.space, s);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 0);
    s = fx.chan.pop(*fx.space, s);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 3);
    s = fx.chan.pop(*fx.space, s);
    EXPECT_TRUE(fx.chan.empty(*fx.space, s));
}

TEST(ChannelTest, EncodingIsInjective) {
    auto fx = Fixture::make(2, 3);
    // Every distinct queue content maps to a distinct variable value:
    // enumerate all queues and collect encodings.
    std::vector<StateIndex> seen;
    std::vector<std::vector<Value>> queues{{}};
    for (Value a = 0; a < 3; ++a) {
        queues.push_back({a});
        for (Value b = 0; b < 3; ++b) queues.push_back({a, b});
    }
    for (const auto& queue : queues) {
        StateIndex s = 0;
        for (Value v : queue) s = fx.chan.push(*fx.space, s, v);
        const StateIndex enc =
            static_cast<StateIndex>(fx.space->get(s, fx.chan.var()));
        EXPECT_EQ(std::count(seen.begin(), seen.end(), enc), 0);
        seen.push_back(enc);
    }
    EXPECT_EQ(seen.size(), 13u);
}

TEST(ChannelTest, OverflowAndUnderflowThrow) {
    auto fx = Fixture::make(1, 2);
    StateIndex s = fx.chan.push(*fx.space, 0, 1);
    EXPECT_THROW(fx.chan.push(*fx.space, s, 0), ContractError);
    EXPECT_THROW(fx.chan.pop(*fx.space, 0), ContractError);
    EXPECT_THROW(fx.chan.front(*fx.space, 0), ContractError);
}

TEST(ChannelTest, PredicatesTrackState) {
    auto fx = Fixture::make(2, 2);
    StateIndex s = 0;
    EXPECT_TRUE(fx.chan.is_empty().eval(*fx.space, s));
    EXPECT_FALSE(fx.chan.is_full().eval(*fx.space, s));
    s = fx.chan.push(*fx.space, s, 1);
    EXPECT_TRUE(fx.chan.nonempty().eval(*fx.space, s));
    EXPECT_FALSE(fx.chan.is_full().eval(*fx.space, s));
    s = fx.chan.push(*fx.space, s, 0);
    EXPECT_TRUE(fx.chan.is_full().eval(*fx.space, s));
}

TEST(ChannelTest, SendActionPushesAndRespectsCapacity) {
    auto fx = Fixture::make(1, 2);
    const Action send = fx.chan.send(
        "send", Predicate::top(),
        [](const StateSpace&, StateIndex) { return Value{1}; });
    EXPECT_TRUE(send.enabled(*fx.space, 0));
    const StateIndex s = send.apply(*fx.space, 0);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 1);
    EXPECT_FALSE(send.enabled(*fx.space, s));  // full
}

TEST(ChannelTest, ReceiveActionPopsAndHandsValue) {
    auto fx = Fixture::make(2, 3);
    const VarId pad = fx.space->find("pad");
    const Action recv = fx.chan.receive(
        "recv", Predicate::top(),
        [pad](const StateSpace& sp, StateIndex s, Value v) {
            return sp.set(s, pad, v == 2 ? 1 : 0);
        });
    EXPECT_FALSE(recv.enabled(*fx.space, 0));  // empty
    StateIndex s = fx.chan.push(*fx.space, 0, 2);
    ASSERT_TRUE(recv.enabled(*fx.space, s));
    s = recv.apply(*fx.space, s);
    EXPECT_TRUE(fx.chan.empty(*fx.space, s));
    EXPECT_EQ(fx.space->get(s, pad), 1);  // handler saw the value 2
}

TEST(ChannelTest, LoseDropsHead) {
    auto fx = Fixture::make(2, 2);
    const Action lose = fx.chan.lose("lose");
    StateIndex s = fx.chan.push(*fx.space, 0, 1);
    s = fx.chan.push(*fx.space, s, 0);
    s = lose.apply(*fx.space, s);
    EXPECT_EQ(fx.chan.size(*fx.space, s), 1);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 0);
}

TEST(ChannelTest, DuplicateCopiesHeadToTail) {
    auto fx = Fixture::make(3, 2);
    const Action dup = fx.chan.duplicate("dup");
    StateIndex s = fx.chan.push(*fx.space, 0, 1);
    s = fx.chan.push(*fx.space, s, 0);
    s = dup.apply(*fx.space, s);
    EXPECT_EQ(fx.chan.size(*fx.space, s), 3);
    // FIFO: 1, 0, then the duplicate of the head (1).
    EXPECT_EQ(fx.chan.front(*fx.space, s), 1);
    s = fx.chan.pop(*fx.space, s);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 0);
    s = fx.chan.pop(*fx.space, s);
    EXPECT_EQ(fx.chan.front(*fx.space, s), 1);
}

TEST(ChannelTest, CorruptReplacesHeadWithEveryOtherValue) {
    auto fx = Fixture::make(2, 3);
    const Action corrupt = fx.chan.corrupt("corrupt");
    StateIndex s = fx.chan.push(*fx.space, 0, 1);
    s = fx.chan.push(*fx.space, s, 2);
    std::vector<StateIndex> succ;
    corrupt.successors(*fx.space, s, succ);
    ASSERT_EQ(succ.size(), 2u);  // head 1 -> 0 or 2
    for (StateIndex t : succ) {
        EXPECT_NE(fx.chan.front(*fx.space, t), 1);
        EXPECT_EQ(fx.chan.size(*fx.space, t), 2);
        // The tail is untouched.
        EXPECT_EQ(fx.chan.front(*fx.space, fx.chan.pop(*fx.space, t)), 2);
    }
}

TEST(ChannelTest, TwoChannelsCoexist) {
    auto builder = std::make_shared<StateSpace>();
    Channel a(*builder, "a", 2, 2);
    Channel b(*builder, "b", 2, 2);
    builder->freeze();
    StateIndex s = a.push(*builder, 0, 1);
    s = b.push(*builder, s, 0);
    EXPECT_EQ(a.size(*builder, s), 1);
    EXPECT_EQ(b.size(*builder, s), 1);
    EXPECT_EQ(a.front(*builder, s), 1);
    EXPECT_EQ(b.front(*builder, s), 0);
}

TEST(ChannelTest, BadParametersRejected) {
    auto builder = std::make_shared<StateSpace>();
    EXPECT_THROW(Channel(*builder, "c", 0, 2), ContractError);
    EXPECT_THROW(Channel(*builder, "d", 2, 0), ContractError);
}

}  // namespace
}  // namespace dcft
