#include "gc/state_space.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> small_space() {
    return make_space({Variable{"a", 2, {}}, Variable{"b", 3, {}},
                       Variable{"c", 5, {}}});
}

TEST(StateSpaceTest, NumStatesIsDomainProduct) {
    auto sp = small_space();
    EXPECT_EQ(sp->num_states(), 2u * 3u * 5u);
    EXPECT_EQ(sp->num_vars(), 3u);
}

TEST(StateSpaceTest, EncodeDecodeRoundTrip) {
    auto sp = small_space();
    for (Value a = 0; a < 2; ++a)
        for (Value b = 0; b < 3; ++b)
            for (Value c = 0; c < 5; ++c) {
                const std::vector<Value> values{a, b, c};
                const StateIndex s = sp->encode(values);
                EXPECT_EQ(sp->decode(s), values);
            }
}

TEST(StateSpaceTest, EncodeIsBijective) {
    auto sp = small_space();
    std::vector<bool> seen(sp->num_states(), false);
    for (Value a = 0; a < 2; ++a)
        for (Value b = 0; b < 3; ++b)
            for (Value c = 0; c < 5; ++c) {
                const StateIndex s = sp->encode({{a, b, c}});
                ASSERT_LT(s, sp->num_states());
                EXPECT_FALSE(seen[s]);
                seen[s] = true;
            }
}

TEST(StateSpaceTest, GetReadsEncodedValue) {
    auto sp = small_space();
    const StateIndex s = sp->encode({{1, 2, 4}});
    EXPECT_EQ(sp->get(s, 0), 1);
    EXPECT_EQ(sp->get(s, 1), 2);
    EXPECT_EQ(sp->get(s, 2), 4);
}

TEST(StateSpaceTest, SetUpdatesOneVariableOnly) {
    auto sp = small_space();
    const StateIndex s = sp->encode({{1, 2, 4}});
    const StateIndex t = sp->set(s, 1, 0);
    EXPECT_EQ(sp->get(t, 0), 1);
    EXPECT_EQ(sp->get(t, 1), 0);
    EXPECT_EQ(sp->get(t, 2), 4);
    // Original state is unchanged (value semantics).
    EXPECT_EQ(sp->get(s, 1), 2);
}

TEST(StateSpaceTest, SetToSameValueIsIdentity) {
    auto sp = small_space();
    const StateIndex s = sp->encode({{0, 1, 3}});
    EXPECT_EQ(sp->set(s, 2, 3), s);
}

TEST(StateSpaceTest, SetOutOfDomainThrows) {
    auto sp = small_space();
    EXPECT_THROW(sp->set(0, 0, 2), ContractError);
    EXPECT_THROW(sp->set(0, 0, -1), ContractError);
}

TEST(StateSpaceTest, FindByName) {
    auto sp = small_space();
    EXPECT_EQ(sp->find("a"), 0u);
    EXPECT_EQ(sp->find("c"), 2u);
    EXPECT_TRUE(sp->has_variable("b"));
    EXPECT_FALSE(sp->has_variable("zz"));
    EXPECT_THROW(sp->find("zz"), ContractError);
}

TEST(StateSpaceTest, DuplicateVariableNameRejected) {
    StateSpace sp;
    sp.add_variable("x", 2);
    EXPECT_THROW(sp.add_variable("x", 3), ContractError);
}

TEST(StateSpaceTest, EmptyDomainRejected) {
    StateSpace sp;
    EXPECT_THROW(sp.add_variable("x", 0), ContractError);
}

TEST(StateSpaceTest, UseBeforeFreezeRejected) {
    StateSpace sp;
    sp.add_variable("x", 2);
    EXPECT_THROW(sp.num_states(), ContractError);
    EXPECT_THROW(sp.get(0, 0), ContractError);
}

TEST(StateSpaceTest, AddAfterFreezeRejected) {
    StateSpace sp;
    sp.add_variable("x", 2);
    sp.freeze();
    EXPECT_THROW(sp.add_variable("y", 2), ContractError);
    EXPECT_THROW(sp.freeze(), ContractError);
}

TEST(StateSpaceTest, OverflowingSpaceRejected) {
    StateSpace sp;
    for (int i = 0; i < 8; ++i)
        sp.add_variable("v" + std::to_string(i), 1'000'000'000);
    EXPECT_THROW(sp.freeze(), ContractError);
}

TEST(StateSpaceTest, ProjectionAgreesWithVarEquality) {
    auto sp = small_space();
    const VarSet ab = sp->varset({"a", "b"});
    for (StateIndex s = 0; s < sp->num_states(); ++s)
        for (StateIndex t = 0; t < sp->num_states(); ++t) {
            const bool same_ab =
                sp->get(s, 0) == sp->get(t, 0) && sp->get(s, 1) == sp->get(t, 1);
            EXPECT_EQ(sp->project(s, ab) == sp->project(t, ab), same_ab);
        }
}

TEST(StateSpaceTest, ProjectionOntoFullSetIsInjective) {
    auto sp = small_space();
    const VarSet all = sp->full_varset();
    for (StateIndex s = 0; s < sp->num_states(); ++s)
        EXPECT_EQ(sp->project(s, all), s);
}

TEST(StateSpaceTest, ProjectionOntoEmptySetIsConstant) {
    auto sp = small_space();
    const VarSet none = sp->empty_varset();
    for (StateIndex s = 0; s < sp->num_states(); ++s)
        EXPECT_EQ(sp->project(s, none), 0u);
}

TEST(StateSpaceTest, FormatUsesValueNames) {
    auto sp = make_space({Variable{"flag", 0, {"off", "on"}},
                          Variable{"n", 3, {}}});
    const StateIndex s = sp->encode({{1, 2}});
    EXPECT_EQ(sp->format(s), "{flag=on, n=2}");
}

TEST(VarSetTest, BasicMembership) {
    VarSet vs(4);
    EXPECT_EQ(vs.count(), 0u);
    vs.add(1);
    vs.add(3);
    EXPECT_TRUE(vs.contains(1));
    EXPECT_FALSE(vs.contains(0));
    EXPECT_EQ(vs.count(), 2u);
    EXPECT_EQ(vs.members(), (std::vector<VarId>{1, 3}));
}

TEST(VarSetTest, UnionAndComplement) {
    VarSet a(3), b(3);
    a.add(0);
    b.add(2);
    const VarSet u = a.unioned(b);
    EXPECT_TRUE(u.contains(0));
    EXPECT_FALSE(u.contains(1));
    EXPECT_TRUE(u.contains(2));
    const VarSet c = u.complement();
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(1));
}

TEST(VarSetTest, AddOutOfRangeThrows) {
    VarSet vs(2);
    EXPECT_THROW(vs.add(2), ContractError);
}

}  // namespace
}  // namespace dcft
