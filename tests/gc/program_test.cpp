#include "gc/program.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space2x3() {
    return make_space({Variable{"a", 2, {}}, Variable{"b", 3, {}}});
}

Program counter_program(std::shared_ptr<const StateSpace> sp) {
    Program p(sp, "counter");
    p.add_action(Action::assign(
        *sp, "inc-b",
        Predicate("b<2",
                  [](const StateSpace& space, StateIndex s) {
                      return space.get(s, 1) < 2;
                  }),
        "b",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 1) + 1;
        }));
    return p;
}

TEST(ProgramTest, ActionsAccumulate) {
    auto sp = space2x3();
    Program p = counter_program(sp);
    EXPECT_EQ(p.num_actions(), 1u);
    p.add_action(Action::skip("noop", Predicate::top()));
    EXPECT_EQ(p.num_actions(), 2u);
    EXPECT_EQ(p.action(0).name(), "inc-b");
    EXPECT_THROW(p.action(2), ContractError);
}

TEST(ProgramTest, ActionNamedFindsUnique) {
    auto sp = space2x3();
    Program p = counter_program(sp);
    EXPECT_EQ(p.action_named("inc-b").name(), "inc-b");
    EXPECT_THROW(p.action_named("none"), ContractError);
    p.add_action(Action::skip("inc-b", Predicate::top()));
    EXPECT_THROW(p.action_named("inc-b"), ContractError);  // ambiguous
}

TEST(ProgramTest, SuccessorsUnionOverActions) {
    auto sp = space2x3();
    Program p = counter_program(sp);
    p.add_action(Action::assign_const(*sp, "flip-a",
                                      Predicate::var_eq(*sp, "a", 0), "a", 1));
    std::vector<StateIndex> succ;
    p.successors(sp->encode({{0, 0}}), succ);
    EXPECT_EQ(succ.size(), 2u);  // inc-b and flip-a both enabled
}

TEST(ProgramTest, TerminalWhenNoActionEnabled) {
    auto sp = space2x3();
    const Program p = counter_program(sp);
    EXPECT_FALSE(p.is_terminal(sp->encode({{0, 0}})));
    EXPECT_TRUE(p.is_terminal(sp->encode({{0, 2}})));  // b == 2: guard false
}

TEST(ProgramTest, WritesDetectsSemanticWrites) {
    auto sp = space2x3();
    const Program p = counter_program(sp);
    EXPECT_FALSE(p.writes(sp->find("a")));
    EXPECT_TRUE(p.writes(sp->find("b")));
}

TEST(ProgramTest, DefaultVarsIsFullSpace) {
    auto sp = space2x3();
    const Program p(sp, "p");
    EXPECT_EQ(p.vars().count(), sp->num_vars());
}

TEST(ProgramTest, ExplicitVarSubset) {
    auto sp = space2x3();
    const Program p(sp, sp->varset({"b"}), "p");
    EXPECT_EQ(p.vars().count(), 1u);
    EXPECT_TRUE(p.vars().contains(sp->find("b")));
}

TEST(ProgramTest, RenamedKeepsActions) {
    auto sp = space2x3();
    const Program p = counter_program(sp).renamed("other");
    EXPECT_EQ(p.name(), "other");
    EXPECT_EQ(p.num_actions(), 1u);
}

TEST(ProgramTest, RequiresFrozenSpace) {
    auto sp = std::make_shared<StateSpace>();
    sp->add_variable("x", 2);
    EXPECT_THROW(Program(sp, "p"), ContractError);
}

TEST(FaultClassTest, HoldsActions) {
    auto sp = space2x3();
    FaultClass f(sp, "faults");
    EXPECT_TRUE(f.empty());
    f.add_action(Action::assign_const(*sp, "corrupt-a",
                                      Predicate::var_eq(*sp, "a", 0), "a", 1));
    EXPECT_FALSE(f.empty());
    std::vector<StateIndex> succ;
    f.successors(sp->encode({{0, 0}}), succ);
    EXPECT_EQ(succ.size(), 1u);
    EXPECT_EQ(sp->get(succ[0], 0), 1);
}

}  // namespace
}  // namespace dcft
