#include "gc/action.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space2x3() {
    return make_space({Variable{"a", 2, {}}, Variable{"b", 3, {}}});
}

TEST(ActionTest, AssignConstUpdatesVariable) {
    auto sp = space2x3();
    const Action ac =
        Action::assign_const(*sp, "set-b", Predicate::top(), "b", 2);
    const StateIndex s = sp->encode({{1, 0}});
    const StateIndex t = ac.apply(*sp, s);
    EXPECT_EQ(sp->get(t, 1), 2);
    EXPECT_EQ(sp->get(t, 0), 1);
}

TEST(ActionTest, GuardControlsEnabledness) {
    auto sp = space2x3();
    const Predicate g = Predicate::var_eq(*sp, "a", 1);
    const Action ac = Action::assign_const(*sp, "x", g, "b", 0);
    EXPECT_FALSE(ac.enabled(*sp, sp->encode({{0, 2}})));
    EXPECT_TRUE(ac.enabled(*sp, sp->encode({{1, 2}})));
}

TEST(ActionTest, DisabledActionProducesNoSuccessors) {
    auto sp = space2x3();
    const Action ac = Action::assign_const(
        *sp, "x", Predicate::bottom(), "b", 0);
    std::vector<StateIndex> succ;
    ac.successors(*sp, 0, succ);
    EXPECT_TRUE(succ.empty());
}

TEST(ActionTest, ApplyOnDisabledThrows) {
    auto sp = space2x3();
    const Action ac = Action::assign_const(
        *sp, "x", Predicate::bottom(), "b", 0);
    EXPECT_THROW(ac.apply(*sp, 0), ContractError);
}

TEST(ActionTest, AssignUsesValueFunction) {
    auto sp = space2x3();
    const Action ac = Action::assign(
        *sp, "copy", Predicate::top(), "b",
        [](const StateSpace& space, StateIndex s) {
            return space.get(s, 0);  // b := a
        });
    const StateIndex t = ac.apply(*sp, sp->encode({{1, 2}}));
    EXPECT_EQ(sp->get(t, 1), 1);
}

TEST(ActionTest, NondetProducesAllSuccessors) {
    auto sp = space2x3();
    const Action ac = Action::nondet(
        "any-b", Predicate::top(),
        [](const StateSpace& space, StateIndex s,
           std::vector<StateIndex>& out) {
            for (Value c = 0; c < 3; ++c)
                out.push_back(space.set(s, 1, c));
        });
    std::vector<StateIndex> succ;
    ac.successors(*sp, sp->encode({{0, 0}}), succ);
    EXPECT_EQ(succ.size(), 3u);
    EXPECT_THROW(ac.apply(*sp, 0), ContractError);  // nondeterministic
}

TEST(ActionTest, SkipIsSelfLoop) {
    auto sp = space2x3();
    const Action ac = Action::skip("noop", Predicate::top());
    for (StateIndex s = 0; s < sp->num_states(); ++s)
        EXPECT_EQ(ac.apply(*sp, s), s);
}

TEST(ActionTest, RestrictedConjoinsGuard) {
    auto sp = space2x3();
    const Action base =
        Action::assign_const(*sp, "x", Predicate::var_eq(*sp, "a", 1), "b", 0);
    const Action gated = base.restricted(Predicate::var_eq(*sp, "b", 2));
    EXPECT_FALSE(gated.enabled(*sp, sp->encode({{1, 1}})));
    EXPECT_FALSE(gated.enabled(*sp, sp->encode({{0, 2}})));
    EXPECT_TRUE(gated.enabled(*sp, sp->encode({{1, 2}})));
    // Effect unchanged where enabled.
    EXPECT_EQ(gated.apply(*sp, sp->encode({{1, 2}})),
              base.apply(*sp, sp->encode({{1, 2}})));
}

TEST(ActionTest, ProvenanceTracksBase) {
    auto sp = space2x3();
    const Action base =
        Action::assign_const(*sp, "x", Predicate::top(), "b", 0);
    EXPECT_FALSE(base.has_base());
    EXPECT_EQ(base.root_base().id(), base.id());

    const Action once = base.restricted(Predicate::top());
    EXPECT_TRUE(once.has_base());
    EXPECT_EQ(once.base().id(), base.id());

    const Action twice = once.restricted(Predicate::top());
    EXPECT_EQ(twice.base().id(), once.id());
    EXPECT_EQ(twice.root_base().id(), base.id());
}

TEST(ActionTest, BaseOnRootThrows) {
    auto sp = space2x3();
    const Action base =
        Action::assign_const(*sp, "x", Predicate::top(), "b", 0);
    EXPECT_THROW(base.base(), ContractError);
}

TEST(ActionTest, EncapsulatedRunsBothStatements) {
    auto sp = space2x3();
    // base: b := 2 ; extra: a := old value of b (reads the pre-state).
    const Action base =
        Action::assign_const(*sp, "set-b", Predicate::top(), "b", 2);
    const Action wrapped = base.encapsulated(
        "set-b-and-a", Predicate::top(),
        [sp](const StateSpace& space, StateIndex before, StateIndex after) {
            const Value old_b = space.get(before, 1);
            return space.set(after, 0, old_b == 0 ? 0 : 1);
        });
    const StateIndex s = sp->encode({{0, 1}});
    const StateIndex t = wrapped.apply(*sp, s);
    EXPECT_EQ(sp->get(t, 1), 2);  // st ran
    EXPECT_EQ(sp->get(t, 0), 1);  // st' read the pre-state b == 1
    EXPECT_EQ(wrapped.base().id(), base.id());
}

TEST(ActionTest, EncapsulatedGuardConjoins) {
    auto sp = space2x3();
    const Action base = Action::assign_const(
        *sp, "x", Predicate::var_eq(*sp, "a", 1), "b", 0);
    const Action wrapped = base.encapsulated(
        "w", Predicate::var_eq(*sp, "b", 2),
        [](const StateSpace&, StateIndex, StateIndex after) { return after; });
    EXPECT_FALSE(wrapped.enabled(*sp, sp->encode({{1, 1}})));
    EXPECT_FALSE(wrapped.enabled(*sp, sp->encode({{0, 2}})));
    EXPECT_TRUE(wrapped.enabled(*sp, sp->encode({{1, 2}})));
}

TEST(ActionTest, RenamedKeepsSemanticsAndProvenance) {
    auto sp = space2x3();
    const Action base =
        Action::assign_const(*sp, "x", Predicate::top(), "b", 1);
    const Action renamed = base.restricted(Predicate::top()).renamed("fresh");
    EXPECT_EQ(renamed.name(), "fresh");
    EXPECT_EQ(renamed.root_base().id(), base.id());
    EXPECT_EQ(renamed.apply(*sp, 0), base.apply(*sp, 0));
}

}  // namespace
}  // namespace dcft
