#include "gc/predicate.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space2x3() {
    return make_space({Variable{"a", 2, {}}, Variable{"b", 3, {}}});
}

TEST(PredicateTest, TopAndBottom) {
    auto sp = space2x3();
    for (StateIndex s = 0; s < sp->num_states(); ++s) {
        EXPECT_TRUE(Predicate::top().eval(*sp, s));
        EXPECT_FALSE(Predicate::bottom().eval(*sp, s));
    }
    EXPECT_EQ(Predicate::top().name(), "true");
    EXPECT_EQ(Predicate::bottom().name(), "false");
}

TEST(PredicateTest, DefaultConstructedIsTop) {
    auto sp = space2x3();
    Predicate p;
    EXPECT_TRUE(p.eval(*sp, 0));
}

TEST(PredicateTest, VarEq) {
    auto sp = space2x3();
    const Predicate p = Predicate::var_eq(*sp, "b", 2);
    for (StateIndex s = 0; s < sp->num_states(); ++s)
        EXPECT_EQ(p.eval(*sp, s), sp->get(s, 1) == 2);
}

TEST(PredicateTest, VarEqOutOfDomainThrows) {
    auto sp = space2x3();
    EXPECT_THROW(Predicate::var_eq(*sp, "b", 3), ContractError);
    EXPECT_THROW(Predicate::var_eq(*sp, "nope", 0), ContractError);
}

TEST(PredicateTest, BooleanAlgebraIsPointwise) {
    auto sp = space2x3();
    const Predicate a = Predicate::var_eq(*sp, "a", 1);
    const Predicate b = Predicate::var_eq(*sp, "b", 0);
    for (StateIndex s = 0; s < sp->num_states(); ++s) {
        const bool av = a.eval(*sp, s), bv = b.eval(*sp, s);
        EXPECT_EQ((a && b).eval(*sp, s), av && bv);
        EXPECT_EQ((a || b).eval(*sp, s), av || bv);
        EXPECT_EQ((!a).eval(*sp, s), !av);
        EXPECT_EQ(implies(a, b).eval(*sp, s), !av || bv);
    }
}

TEST(PredicateTest, DeMorgan) {
    auto sp = space2x3();
    const Predicate a = Predicate::var_eq(*sp, "a", 0);
    const Predicate b = Predicate::var_eq(*sp, "b", 1);
    EXPECT_TRUE(equivalent(*sp, !(a && b), (!a) || (!b)));
    EXPECT_TRUE(equivalent(*sp, !(a || b), (!a) && (!b)));
}

TEST(PredicateTest, ImpliesEverywhere) {
    auto sp = space2x3();
    const Predicate narrow =
        Predicate::var_eq(*sp, "a", 1) && Predicate::var_eq(*sp, "b", 1);
    const Predicate wide = Predicate::var_eq(*sp, "a", 1);
    EXPECT_TRUE(implies_everywhere(*sp, narrow, wide));
    EXPECT_FALSE(implies_everywhere(*sp, wide, narrow));
    EXPECT_TRUE(implies_everywhere(*sp, Predicate::bottom(), narrow));
    EXPECT_TRUE(implies_everywhere(*sp, narrow, Predicate::top()));
}

TEST(PredicateTest, CountSatisfying) {
    auto sp = space2x3();
    EXPECT_EQ(count_satisfying(*sp, Predicate::top()), 6u);
    EXPECT_EQ(count_satisfying(*sp, Predicate::bottom()), 0u);
    EXPECT_EQ(count_satisfying(*sp, Predicate::var_eq(*sp, "a", 0)), 3u);
    EXPECT_EQ(count_satisfying(*sp, Predicate::var_ne(*sp, "b", 1)), 4u);
}

TEST(PredicateTest, NamesComposeReadably) {
    auto sp = space2x3();
    const Predicate a = Predicate::var_eq(*sp, "a", 0);
    EXPECT_EQ(a.name(), "a==0");
    EXPECT_EQ((!a).name(), "!a==0");
    EXPECT_EQ((a && a).name(), "(a==0 && a==0)");
    EXPECT_EQ(a.renamed("fresh").name(), "fresh");
}

TEST(PredicateTest, RenamedPreservesSemantics) {
    auto sp = space2x3();
    const Predicate a = Predicate::var_eq(*sp, "a", 0);
    EXPECT_TRUE(equivalent(*sp, a, a.renamed("other")));
}

TEST(PredicateTest, NullFunctionRejected) {
    EXPECT_THROW(Predicate("bad", nullptr), ContractError);
}

}  // namespace
}  // namespace dcft
