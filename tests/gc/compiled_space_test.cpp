// Differential tests pinning CompiledSpace (multiply/shift mixed-radix
// arithmetic) to StateSpace (plain divmod): for every valid (state, var,
// value), get/set/set_digit/unpack must agree bit-for-bit, across small
// exhaustive spaces, randomized spaces with awkward domain mixes, and a
// >2^32-state space that exercises the non-fast fallback.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "gc/compiled.hpp"
#include "gc/state_space.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space_with_domains(
    const std::vector<Value>& domains) {
    auto builder = std::make_shared<StateSpace>();
    for (std::size_t i = 0; i < domains.size(); ++i)
        builder->add_variable("v" + std::to_string(i), domains[i]);
    builder->freeze();
    return builder;
}

/// Differential check of every CompiledSpace entry point at state s.
void check_state(const StateSpace& sp, const CompiledSpace& cs,
                 StateIndex s) {
    std::vector<Value> digits(cs.num_vars());
    cs.unpack(s, digits);
    for (VarId v = 0; v < cs.num_vars(); ++v) {
        const Value expect = sp.get(s, v);
        ASSERT_EQ(cs.get(s, v), expect) << "get s=" << s << " v=" << v;
        ASSERT_EQ(digits[v], expect) << "unpack s=" << s << " v=" << v;
        for (Value c = 0; c < cs.domain(v); ++c) {
            const StateIndex expect_set = sp.set(s, v, c);
            ASSERT_EQ(cs.set(s, v, c), expect_set)
                << "set s=" << s << " v=" << v << " c=" << c;
            ASSERT_EQ(cs.set_digit(s, v, expect, c), expect_set)
                << "set_digit s=" << s << " v=" << v << " c=" << c;
        }
    }
}

TEST(CompiledSpaceTest, ExhaustiveSmallMixedRadix) {
    // Domains deliberately mix 1 (identity), powers of two (mask path),
    // and odd sizes (magic-multiply path); the top variable exercises the
    // mod-identity shortcut.
    const auto sp = space_with_domains({3, 1, 4, 7, 2, 5});
    const CompiledSpace cs(*sp);
    EXPECT_TRUE(cs.fast());
    ASSERT_EQ(cs.num_states(), sp->num_states());
    for (StateIndex s = 0; s < sp->num_states(); ++s) check_state(*sp, cs, s);
}

TEST(CompiledSpaceTest, StridesMatchDeclarationOrderProducts) {
    const auto sp = space_with_domains({4, 3, 5, 2});
    const CompiledSpace cs(*sp);
    StateIndex expect = 1;
    for (VarId v = 0; v < cs.num_vars(); ++v) {
        EXPECT_EQ(cs.stride(v), expect) << "v=" << v;
        EXPECT_EQ(cs.domain(v), sp->variable(v).domain_size);
        expect *= static_cast<StateIndex>(cs.domain(v));
    }
    EXPECT_EQ(cs.num_states(), expect);
}

TEST(CompiledSpaceTest, RandomizedSpacesDifferential) {
    Rng meta(0xC0DE5EEDULL);
    for (int round = 0; round < 24; ++round) {
        const std::size_t n_vars = 2 + meta.below(7);
        std::vector<Value> domains;
        StateIndex states = 1;
        for (std::size_t i = 0; i < n_vars; ++i) {
            // Weighted mix: tiny domains dominate real models, but keep
            // some large ones so strides stress the 32-bit Lemire bound.
            const Value d = meta.chance(0.15)
                                ? static_cast<Value>(1 + meta.below(2))
                                : static_cast<Value>(2 + meta.below(15));
            if (states * static_cast<StateIndex>(d) > (StateIndex{1} << 22))
                break;
            domains.push_back(d);
            states *= static_cast<StateIndex>(d);
        }
        if (domains.size() < 2) domains = {3, 5};
        const auto sp = space_with_domains(domains);
        const CompiledSpace cs(*sp);
        ASSERT_EQ(cs.num_states(), sp->num_states());

        Rng rng(0xABCD0000ULL + static_cast<std::uint64_t>(round));
        for (int i = 0; i < 512; ++i)
            check_state(*sp, cs, rng.below(sp->num_states()));
        // Boundary states are where stride/carry bugs live.
        check_state(*sp, cs, 0);
        check_state(*sp, cs, sp->num_states() - 1);
    }
}

TEST(CompiledSpaceTest, HugeSpaceFallbackDifferential) {
    // 13^9 ≈ 1.06e10 > 2^32: the Lemire fast path must disengage and the
    // divmod fallback must still agree with StateSpace everywhere probed.
    const auto sp =
        space_with_domains({13, 13, 13, 13, 13, 13, 13, 13, 13});
    const CompiledSpace cs(*sp);
    EXPECT_FALSE(cs.fast());
    ASSERT_EQ(cs.num_states(), sp->num_states());
    Rng rng(0xB16ULL);
    for (int i = 0; i < 256; ++i) {
        const StateIndex s = rng.below(sp->num_states());
        for (VarId v = 0; v < cs.num_vars(); ++v) {
            ASSERT_EQ(cs.get(s, v), sp->get(s, v));
            const Value c = static_cast<Value>(rng.below(13));
            ASSERT_EQ(cs.set(s, v, c), sp->set(s, v, c));
        }
    }
    check_state(*sp, cs, sp->num_states() - 1);
}

TEST(CompiledSpaceTest, CompileSpaceKeepsSpaceAlive) {
    std::shared_ptr<const CompiledSpace> cs;
    {
        auto sp = space_with_domains({3, 4, 5});
        cs = compile_space(sp);
    }  // the only external reference to the space dies here
    EXPECT_EQ(cs->num_states(), 60u);
    EXPECT_EQ(cs->space().num_states(), 60u);
    EXPECT_EQ(cs->get(59, 2), 4);
}

}  // namespace
}  // namespace dcft
