#include "spec/safety_spec.hpp"

#include <gtest/gtest.h>

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space4() {
    return make_space({Variable{"v", 4, {}}});
}

TEST(SafetySpecTest, DefaultAllowsEverything) {
    auto sp = space4();
    SafetySpec spec;
    for (StateIndex s = 0; s < 4; ++s) {
        EXPECT_TRUE(spec.state_allowed(*sp, s));
        for (StateIndex t = 0; t < 4; ++t)
            EXPECT_TRUE(spec.transition_allowed(*sp, s, t));
    }
}

TEST(SafetySpecTest, NeverExcludesStates) {
    auto sp = space4();
    const SafetySpec spec = SafetySpec::never(Predicate::var_eq(*sp, "v", 2));
    EXPECT_TRUE(spec.state_allowed(*sp, 0));
    EXPECT_FALSE(spec.state_allowed(*sp, 2));
    // never() constrains states only, not transitions.
    EXPECT_TRUE(spec.transition_allowed(*sp, 0, 2));
}

TEST(SafetySpecTest, PairConstrainsSuccessors) {
    auto sp = space4();
    // ({v==1}, {v==2}): from v==1, only v==2 next.
    const SafetySpec spec = SafetySpec::pair(Predicate::var_eq(*sp, "v", 1),
                                             Predicate::var_eq(*sp, "v", 2));
    EXPECT_TRUE(spec.transition_allowed(*sp, 1, 2));
    EXPECT_FALSE(spec.transition_allowed(*sp, 1, 3));
    EXPECT_FALSE(spec.transition_allowed(*sp, 1, 1));
    EXPECT_TRUE(spec.transition_allowed(*sp, 0, 3));  // antecedent false
}

TEST(SafetySpecTest, ClosureIsPairWithItself) {
    auto sp = space4();
    const Predicate s1 = Predicate::var_eq(*sp, "v", 1);
    const SafetySpec cl = SafetySpec::closure(s1);
    EXPECT_TRUE(cl.transition_allowed(*sp, 1, 1));
    EXPECT_FALSE(cl.transition_allowed(*sp, 1, 0));
    EXPECT_TRUE(cl.transition_allowed(*sp, 0, 1));
    EXPECT_TRUE(cl.transition_allowed(*sp, 0, 3));
    EXPECT_EQ(cl.name(), "cl(v==1)");
}

TEST(SafetySpecTest, ConjunctionIntersects) {
    auto sp = space4();
    const SafetySpec a = SafetySpec::never(Predicate::var_eq(*sp, "v", 0));
    const SafetySpec b = SafetySpec::pair(Predicate::var_eq(*sp, "v", 1),
                                          Predicate::var_eq(*sp, "v", 2));
    const SafetySpec both = SafetySpec::conjunction({a, b});
    EXPECT_FALSE(both.state_allowed(*sp, 0));
    EXPECT_TRUE(both.state_allowed(*sp, 1));
    EXPECT_FALSE(both.transition_allowed(*sp, 1, 3));
    EXPECT_TRUE(both.transition_allowed(*sp, 1, 2));
}

TEST(SafetySpecTest, NestedConjunction) {
    auto sp = space4();
    const SafetySpec inner = SafetySpec::conjunction(
        {SafetySpec::never(Predicate::var_eq(*sp, "v", 0))});
    const SafetySpec outer = SafetySpec::conjunction(
        {inner, SafetySpec::never(Predicate::var_eq(*sp, "v", 1))});
    EXPECT_FALSE(outer.state_allowed(*sp, 0));
    EXPECT_FALSE(outer.state_allowed(*sp, 1));
    EXPECT_TRUE(outer.state_allowed(*sp, 2));
}

TEST(SafetySpecTest, MaintainsChecksAllStatesAndSteps) {
    auto sp = space4();
    const SafetySpec spec = SafetySpec::conjunction(
        {SafetySpec::never(Predicate::var_eq(*sp, "v", 3)),
         SafetySpec::closure(Predicate::var_eq(*sp, "v", 1))});
    const std::vector<StateIndex> good{0, 1, 1, 1};
    EXPECT_TRUE(spec.maintains(*sp, good));
    const std::vector<StateIndex> bad_state{0, 3};
    EXPECT_FALSE(spec.maintains(*sp, bad_state));
    const std::vector<StateIndex> bad_step{0, 1, 2};
    EXPECT_FALSE(spec.maintains(*sp, bad_step));
    const std::vector<StateIndex> empty;
    EXPECT_TRUE(spec.maintains(*sp, empty));
}

TEST(SafetySpecTest, MaintainsSingleState) {
    auto sp = space4();
    const SafetySpec spec = SafetySpec::never(Predicate::var_eq(*sp, "v", 3));
    EXPECT_TRUE(spec.maintains(*sp, std::vector<StateIndex>{0}));
    EXPECT_FALSE(spec.maintains(*sp, std::vector<StateIndex>{3}));
}

}  // namespace
}  // namespace dcft
