#include "spec/problem_spec.hpp"

#include <gtest/gtest.h>

#include "spec/corrects.hpp"
#include "spec/detects.hpp"

namespace dcft {
namespace {

std::shared_ptr<const StateSpace> space4() {
    return make_space({Variable{"v", 4, {}}});
}

TEST(ProblemSpecTest, ToleranceNames) {
    EXPECT_EQ(to_string(Tolerance::FailSafe), "fail-safe");
    EXPECT_EQ(to_string(Tolerance::Nonmasking), "nonmasking");
    EXPECT_EQ(to_string(Tolerance::Masking), "masking");
}

TEST(ProblemSpecTest, FailsafeWeakeningDropsLiveness) {
    auto sp = space4();
    LivenessSpec live;
    live.add_eventually(Predicate::var_eq(*sp, "v", 1));
    const ProblemSpec spec("demo", SafetySpec(), std::move(live));
    EXPECT_FALSE(spec.liveness().empty());
    const ProblemSpec weak = spec.failsafe_weakening();
    EXPECT_TRUE(weak.liveness().empty());
    EXPECT_EQ(weak.name(), "failsafe(demo)");
}

TEST(ProblemSpecTest, ConvergesToHasClosureAndLeadsTo) {
    auto sp = space4();
    const Predicate s = Predicate::var_eq(*sp, "v", 1);
    const Predicate r = Predicate::var_eq(*sp, "v", 2);
    const ProblemSpec spec = ProblemSpec::converges_to(s, r);
    // Safety: cl(S) && cl(R).
    EXPECT_FALSE(spec.safety().transition_allowed(*sp, 1, 0));
    EXPECT_FALSE(spec.safety().transition_allowed(*sp, 2, 0));
    EXPECT_TRUE(spec.safety().transition_allowed(*sp, 0, 3));
    // Liveness: S ~~> R.
    ASSERT_EQ(spec.liveness().obligations().size(), 1u);
    EXPECT_EQ(spec.liveness().obligations()[0].name(), "v==1 ~~> v==2");
}

TEST(DetectsSpecTest, EncodesThreeConditions) {
    auto sp = space4();
    const Predicate z = Predicate::var_eq(*sp, "v", 1);
    const Predicate x =
        (Predicate::var_eq(*sp, "v", 1) || Predicate::var_eq(*sp, "v", 2));
    const ProblemSpec spec = detects_spec(z, x);
    // Safeness: state with Z && !X is bad — no such state here (Z => X).
    for (StateIndex s = 0; s < 4; ++s)
        EXPECT_TRUE(spec.safety().state_allowed(*sp, s));
    // Stability: from Z (v==1), next must satisfy Z || !X: v==2 violates.
    EXPECT_FALSE(spec.safety().transition_allowed(*sp, 1, 2));
    EXPECT_TRUE(spec.safety().transition_allowed(*sp, 1, 1));
    EXPECT_TRUE(spec.safety().transition_allowed(*sp, 1, 0));  // !X
    // Progress: one leads-to obligation.
    EXPECT_EQ(spec.liveness().obligations().size(), 1u);
}

TEST(DetectsSpecTest, SafenessExcludesBadWitness) {
    auto sp = space4();
    // Z = v==1 but X = v==2: witnessing at v==1 violates Safeness.
    const ProblemSpec spec = detects_spec(Predicate::var_eq(*sp, "v", 1),
                                          Predicate::var_eq(*sp, "v", 2));
    EXPECT_FALSE(spec.safety().state_allowed(*sp, 1));
    EXPECT_TRUE(spec.safety().state_allowed(*sp, 2));
}

TEST(CorrectsSpecTest, AddsConvergence) {
    auto sp = space4();
    const Predicate z = Predicate::var_eq(*sp, "v", 1);
    const Predicate x =
        (Predicate::var_eq(*sp, "v", 1) || Predicate::var_eq(*sp, "v", 2));
    const ProblemSpec spec = corrects_spec(z, x);
    // Convergence closure: once X holds it must keep holding: 2 -> 0 bad.
    EXPECT_FALSE(spec.safety().transition_allowed(*sp, 2, 0));
    EXPECT_TRUE(spec.safety().transition_allowed(*sp, 2, 1));
    // Two liveness obligations: eventually X, and X ~~> (Z || !X).
    EXPECT_EQ(spec.liveness().obligations().size(), 2u);
}

TEST(LivenessSpecTest, AccumulatesObligations) {
    auto sp = space4();
    LivenessSpec live;
    EXPECT_TRUE(live.empty());
    live.add(LeadsTo{Predicate::var_eq(*sp, "v", 0),
                     Predicate::var_eq(*sp, "v", 1)});
    live.add_eventually(Predicate::var_eq(*sp, "v", 2));
    EXPECT_EQ(live.obligations().size(), 2u);
    EXPECT_EQ(live.obligations()[0].name(), "v==0 ~~> v==1");
    EXPECT_EQ(live.obligations()[1].name(), "true ~~> v==2");
}

}  // namespace
}  // namespace dcft
