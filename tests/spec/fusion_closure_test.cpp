// The prefix algebra of Section 3.2 and Section 5 — Lemmas 3.1, 3.2 and
// 5.1 — checked as executable properties of the transition-local safety
// representation, over randomized specifications and sequences.
//
// dcft represents suffix-closed fusion-closed safety specifications by
// (bad-state, bad-transition) predicates; these lemmas are exactly what
// justifies that representation, so they must hold for every instance.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "spec/safety_spec.hpp"

namespace dcft {
namespace {

constexpr StateIndex kStates = 5;

std::shared_ptr<const StateSpace> space5() {
    return make_space({Variable{"v", kStates, {}}});
}

/// A random safety specification: each state is bad with probability 1/8,
/// each transition with probability 1/4.
SafetySpec random_spec(Rng& rng) {
    auto bad_states = std::make_shared<std::vector<char>>(kStates);
    auto bad_trans =
        std::make_shared<std::vector<char>>(kStates * kStates);
    for (auto& b : *bad_states) b = rng.chance(0.125) ? 1 : 0;
    for (auto& b : *bad_trans) b = rng.chance(0.25) ? 1 : 0;
    return SafetySpec(
        "random",
        Predicate("bad-state",
                  [bad_states](const StateSpace&, StateIndex s) {
                      return (*bad_states)[s] != 0;
                  }),
        [bad_trans](const StateSpace&, StateIndex from, StateIndex to) {
            return (*bad_trans)[from * kStates + to] != 0;
        });
}

std::vector<StateIndex> random_sequence(Rng& rng, std::size_t len) {
    std::vector<StateIndex> seq(len);
    for (auto& s : seq) s = rng.below(kStates);
    return seq;
}

std::vector<StateIndex> concat(std::vector<StateIndex> a,
                               const std::vector<StateIndex>& b) {
    a.insert(a.end(), b.begin(), b.end());
    return a;
}

class FusionClosureTest : public ::testing::TestWithParam<std::uint64_t> {};

// Lemma 3.1: if sigma.s maintains SPEC and s.beta maintains SPEC then
// sigma.s.beta maintains SPEC.
TEST_P(FusionClosureTest, Lemma31FusionOfMaintainingPrefixes) {
    auto sp = space5();
    Rng rng(GetParam());
    for (int trial = 0; trial < 200; ++trial) {
        const SafetySpec spec = random_spec(rng);
        const StateIndex s = rng.below(kStates);
        const auto sigma = random_sequence(rng, rng.below(4));
        const auto beta = random_sequence(rng, rng.below(4));
        const auto sigma_s = concat(sigma, {s});
        const auto s_beta = concat({s}, beta);
        if (!spec.maintains(*sp, sigma_s) || !spec.maintains(*sp, s_beta))
            continue;
        const auto fused = concat(sigma_s, beta);
        EXPECT_TRUE(spec.maintains(*sp, fused))
            << "fusion of two maintaining prefixes must maintain";
    }
}

// Lemma 3.2: if sigma.s maintains SPEC, then sigma.s.s' maintains SPEC iff
// s.s' maintains SPEC — violation is detectable from the current state
// alone, independent of history.
TEST_P(FusionClosureTest, Lemma32ViolationDetectableFromCurrentState) {
    auto sp = space5();
    Rng rng(GetParam() ^ 0xABCDEFULL);
    for (int trial = 0; trial < 200; ++trial) {
        const SafetySpec spec = random_spec(rng);
        const StateIndex s = rng.below(kStates);
        const StateIndex s2 = rng.below(kStates);
        const auto sigma = random_sequence(rng, rng.below(4));
        const auto sigma_s = concat(sigma, {s});
        if (!spec.maintains(*sp, sigma_s)) continue;
        const bool extended =
            spec.maintains(*sp, concat(sigma_s, {s2}));
        const bool local =
            spec.maintains(*sp, std::vector<StateIndex>{s, s2});
        EXPECT_EQ(extended, local)
            << "maintains of the extension must be history-independent";
    }
}

// Lemma 5.1 (the safety half, which is what the representation decides):
// if alpha.s maintains SPEC and s.beta is allowed by SPEC, the fusion
// alpha.s.beta is allowed-as-a-prefix too.
TEST_P(FusionClosureTest, Lemma51FusionWithSuffix) {
    auto sp = space5();
    Rng rng(GetParam() ^ 0x123456ULL);
    for (int trial = 0; trial < 200; ++trial) {
        const SafetySpec spec = random_spec(rng);
        const StateIndex s = rng.below(kStates);
        const auto alpha = random_sequence(rng, rng.below(4));
        const auto beta = random_sequence(rng, rng.below(5));
        const auto alpha_s = concat(alpha, {s});
        const auto s_beta = concat({s}, beta);
        if (!spec.maintains(*sp, alpha_s) || !spec.maintains(*sp, s_beta))
            continue;
        EXPECT_TRUE(spec.maintains(*sp, concat(alpha_s, beta)));
    }
}

// Suffix closure: every suffix of a maintaining sequence maintains.
TEST_P(FusionClosureTest, SuffixClosure) {
    auto sp = space5();
    Rng rng(GetParam() ^ 0x777ULL);
    for (int trial = 0; trial < 200; ++trial) {
        const SafetySpec spec = random_spec(rng);
        const auto seq = random_sequence(rng, 1 + rng.below(6));
        if (!spec.maintains(*sp, seq)) continue;
        for (std::size_t k = 0; k < seq.size(); ++k) {
            const std::vector<StateIndex> suffix(seq.begin() +
                                                     static_cast<long>(k),
                                                 seq.end());
            EXPECT_TRUE(spec.maintains(*sp, suffix));
        }
    }
}

// Prefix closure (safety is downward closed on prefixes).
TEST_P(FusionClosureTest, PrefixClosure) {
    auto sp = space5();
    Rng rng(GetParam() ^ 0x999ULL);
    for (int trial = 0; trial < 200; ++trial) {
        const SafetySpec spec = random_spec(rng);
        const auto seq = random_sequence(rng, 1 + rng.below(6));
        if (!spec.maintains(*sp, seq)) continue;
        for (std::size_t k = 0; k <= seq.size(); ++k) {
            const std::vector<StateIndex> prefix(
                seq.begin(), seq.begin() + static_cast<long>(k));
            EXPECT_TRUE(spec.maintains(*sp, prefix));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionClosureTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dcft
