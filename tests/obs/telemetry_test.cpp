// Telemetry subsystem tests: registry semantics, disabled no-ops,
// exploration-counter determinism across thread counts, JSON writer/parser
// round-trips, and the run-report schema.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/token_ring.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

namespace dcft {
namespace {

/// Enables telemetry on a clean registry for the duration of one test and
/// restores the disabled default afterwards (the flag and registry are
/// process-wide).
struct TelemetryGuard {
    explicit TelemetryGuard(bool on = true) {
        obs::set_enabled(on);
        obs::Registry::global().reset();
    }
    ~TelemetryGuard() { obs::set_enabled(false); }
};

std::uint64_t counter_value(const std::string& path) {
    for (const auto& c : obs::Registry::global().counters())
        if (c.path == path) return c.value;
    return 0;
}

bool counter_exists(const std::string& path) {
    for (const auto& c : obs::Registry::global().counters())
        if (c.path == path) return true;
    return false;
}

TEST(TelemetryTest, CountersTimersAndSnapshotsSorted) {
    TelemetryGuard guard;
    obs::count("t/b", 2);
    obs::count("t/a");
    obs::count("t/a", 4);
    obs::count_max("t/peak", 7);
    obs::count_max("t/peak", 3);  // below the high-water mark: ignored
    obs::record("t/gauge", 9);
    obs::record("t/gauge", 5);  // gauge: overwritten
    { const obs::ScopedSpan span("t/span/inner"); }

    EXPECT_EQ(counter_value("t/a"), 5u);
    EXPECT_EQ(counter_value("t/b"), 2u);
    EXPECT_EQ(counter_value("t/peak"), 7u);
    EXPECT_EQ(counter_value("t/gauge"), 5u);

    const auto counters = obs::Registry::global().counters();
    for (std::size_t i = 1; i < counters.size(); ++i)
        EXPECT_LT(counters[i - 1].path, counters[i].path);

    bool saw_span = false;
    for (const auto& t : obs::Registry::global().timers())
        if (t.path == "t/span/inner") {
            saw_span = true;
            EXPECT_EQ(t.calls, 1u);
        }
    EXPECT_TRUE(saw_span);
}

TEST(TelemetryTest, DisabledRecordingIsANoOp) {
    obs::set_enabled(false);
    obs::count("t/disabled/counter");
    obs::record("t/disabled/gauge", 3);
    { const obs::ScopedSpan span("t/disabled/span"); }
    // Disabled helpers never touch the registry — the paths are not even
    // registered.
    EXPECT_FALSE(counter_exists("t/disabled/counter"));
    EXPECT_FALSE(counter_exists("t/disabled/gauge"));
    for (const auto& t : obs::Registry::global().timers())
        EXPECT_NE(t.path, "t/disabled/span");
}

TEST(TelemetryTest, RegistryResetZeroesButKeepsRegistrations) {
    TelemetryGuard guard;
    obs::count("t/reset/c", 11);
    obs::Registry::global().timer("t/reset/t").add(100, 2);
    obs::Registry::global().reset();
    EXPECT_TRUE(counter_exists("t/reset/c"));
    EXPECT_EQ(counter_value("t/reset/c"), 0u);
    for (const auto& t : obs::Registry::global().timers())
        if (t.path == "t/reset/t") {
            EXPECT_EQ(t.ns, 0u);
            EXPECT_EQ(t.calls, 0u);
        }
}

/// Exploration counters under one DCFT_VERIFIER_THREADS setting.
std::vector<std::pair<std::string, std::uint64_t>> explore_counters(
    unsigned threads) {
    setenv("DCFT_VERIFIER_THREADS", std::to_string(threads).c_str(), 1);
    obs::Registry::global().reset();
    auto sys = apps::make_token_ring(4, 4);
    const TransitionSystem ts(sys.ring, &sys.corrupt_any, Predicate::top());
    EXPECT_GT(ts.num_nodes(), 0u);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto& c : obs::Registry::global().counters())
        if (c.path.rfind("verify/explore/", 0) == 0)
            out.emplace_back(c.path, c.value);
    unsetenv("DCFT_VERIFIER_THREADS");
    return out;
}

TEST(TelemetryTest, ExplorationCountersDeterministicAcrossThreadCounts) {
    TelemetryGuard guard;
    const auto t1 = explore_counters(1);
    const auto t2 = explore_counters(2);
    const auto t8 = explore_counters(8);
    ASSERT_FALSE(t1.empty());
    // Levels, frontier peak, node/edge counts, interner hits/misses: all
    // derived from the canonical BFS, hence identical per thread count.
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);

    auto value = [&](const char* path) -> std::uint64_t {
        for (const auto& [p, v] : t1)
            if (p == path) return v;
        return 0;
    };
    EXPECT_GT(value("verify/explore/levels"), 0u);
    EXPECT_GT(value("verify/explore/frontier_peak"), 0u);
    EXPECT_GT(value("verify/explore/nodes"), 0u);
    EXPECT_GT(value("verify/explore/program_edges"), 0u);
    EXPECT_GT(value("verify/explore/fault_edges"), 0u);
    // Every intern call is a hit or a miss; misses == discovered nodes.
    EXPECT_EQ(value("verify/explore/interner_misses"),
              value("verify/explore/nodes"));
}

TEST(JsonTest, WriterEscapingRoundTrips) {
    obs::JsonWriter w;
    const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
    w.begin_object();
    w.kv("s", nasty);
    w.kv("n", std::uint64_t{42});
    w.kv("d", 1.5);
    w.kv("b", true);
    w.key("null_member");
    w.null();
    w.end_object();

    std::string error;
    const auto doc = obs::parse_json(w.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->is_object());
    EXPECT_EQ(doc->find("s")->as_string(), nasty);
    EXPECT_EQ(doc->find("n")->as_number(), 42.0);
    EXPECT_EQ(doc->find("d")->as_number(), 1.5);
    EXPECT_TRUE(doc->find("b")->as_bool());
    EXPECT_TRUE(doc->find("null_member")->is_null());
}

TEST(JsonTest, ParserRejectsMalformedDocuments) {
    for (const char* bad :
         {"", "{", "[1,]", "{\"a\" 1}", "\"unterminated", "{} trailing",
          "{\"a\": nul}", "[1 2]"}) {
        std::string error;
        EXPECT_FALSE(obs::parse_json(bad, &error).has_value())
            << "accepted: " << bad;
        EXPECT_FALSE(error.empty());
    }
}

TEST(RunReportTest, SchemaRoundTrips) {
    TelemetryGuard guard;
    obs::count("verify/explorations", 3);
    { const obs::ScopedSpan span("verify/explore/level"); }

    obs::RunReport report("dcft", "verify token-ring 4");
    obs::ReportQuery pass;
    pass.name = "token-ring/ring/nonmasking";
    pass.system = "token-ring";
    pass.variant = "ring";
    pass.grade = "nonmasking";
    pass.ok = true;
    pass.invariant_size = 4;
    pass.span_size = 256;
    pass.witness_kind = "exploration";
    pass.witness = {WitnessStep{0, "<t=0>", "", false},
                    WitnessStep{7, "<t=3>", "corrupt", true}};
    report.add_query(pass);
    obs::ReportQuery fail;
    fail.name = "token-ring/ring/failsafe";
    fail.system = "token-ring";
    fail.variant = "ring";
    fail.grade = "failsafe";
    fail.ok = false;
    fail.reason = "safety violated: ...";
    fail.witness_kind = "counterexample";
    fail.witness = {WitnessStep{0, "<t=0>", "", false},
                    WitnessStep{1, "<t=1>", "pass", false}};
    report.add_query(fail);

    std::string error;
    const auto doc = obs::parse_json(report.to_json(), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    // Envelope.
    EXPECT_EQ(doc->find("schema")->as_string(), "dcft.report");
    EXPECT_EQ(doc->find("schema_version")->as_number(), 1.0);
    EXPECT_EQ(doc->find("kind")->as_string(), "run_report");
    EXPECT_EQ(doc->find("tool")->as_string(), "dcft");

    // Queries and witnesses.
    const auto* queries =
        doc->find("queries", obs::JsonValue::Kind::Array);
    ASSERT_NE(queries, nullptr);
    ASSERT_EQ(queries->as_array().size(), 2u);
    const auto& q0 = queries->as_array()[0];
    EXPECT_TRUE(q0.find("ok")->as_bool());
    EXPECT_EQ(q0.find("span_size")->as_number(), 256.0);
    const auto* witness = q0.find("witness", obs::JsonValue::Kind::Object);
    ASSERT_NE(witness, nullptr);
    EXPECT_EQ(witness->find("kind")->as_string(), "exploration");
    const auto& trace = witness->find("trace")->as_array();
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].find("action")->as_string(), "");
    EXPECT_TRUE(trace[1].find("fault")->as_bool());
    const auto& q1 = queries->as_array()[1];
    EXPECT_FALSE(q1.find("ok")->as_bool());
    EXPECT_EQ(q1.find("witness")->find("kind")->as_string(),
              "counterexample");

    // Telemetry: counters non-negative, spans nested by path.
    const auto* telemetry =
        doc->find("telemetry", obs::JsonValue::Kind::Object);
    ASSERT_NE(telemetry, nullptr);
    EXPECT_TRUE(telemetry->find("enabled")->as_bool());
    const auto* counters =
        telemetry->find("counters", obs::JsonValue::Kind::Object);
    ASSERT_NE(counters, nullptr);
    for (const auto& [path, v] : counters->as_object()) {
        EXPECT_TRUE(v.is_number()) << path;
        EXPECT_GE(v.as_number(), 0.0) << path;
    }
    EXPECT_EQ(counters->find("verify/explorations")->as_number(), 3.0);
    const auto* spans = telemetry->find("spans", obs::JsonValue::Kind::Array);
    ASSERT_NE(spans, nullptr);
    bool found_level = false;
    for (const auto& top : spans->as_array()) {
        if (top.find("name")->as_string() != "verify") continue;
        for (const auto& child : top.find("children")->as_array()) {
            if (child.find("name")->as_string() != "explore") continue;
            for (const auto& leaf : child.find("children")->as_array()) {
                if (leaf.find("name")->as_string() == "level" &&
                    leaf.find("path")->as_string() ==
                        "verify/explore/level" &&
                    leaf.find("calls")->as_number() >= 1.0)
                    found_level = true;
            }
        }
    }
    EXPECT_TRUE(found_level);
}

TEST(RunReportTest, ToleranceWitnessesAreReplayable) {
    TelemetryGuard guard;
    auto sys = apps::make_token_ring(4, 4);
    // Nonmasking holds for the ring; its report carries an exploration
    // witness. Fail-safe does not; its report carries a counterexample.
    const ToleranceReport pass = check_nonmasking(
        sys.ring, sys.corrupt_any, sys.spec, sys.legitimate);
    ASSERT_TRUE(pass.ok());
    ASSERT_FALSE(pass.deepest_trace.empty());
    EXPECT_TRUE(pass.deepest_trace.front().action.empty());  // root
    for (std::size_t i = 1; i < pass.deepest_trace.size(); ++i) {
        EXPECT_FALSE(pass.deepest_trace[i].action.empty());
        EXPECT_FALSE(pass.deepest_trace[i].state_repr.empty());
    }

    const ToleranceReport fail = check_failsafe(
        sys.ring, sys.corrupt_any, sys.spec, sys.legitimate);
    ASSERT_FALSE(fail.ok());
    ASSERT_FALSE(fail.counterexample().empty());
    EXPECT_TRUE(fail.counterexample().front().action.empty());
    for (std::size_t i = 1; i < fail.counterexample().size(); ++i)
        EXPECT_FALSE(fail.counterexample()[i].action.empty());
}

}  // namespace
}  // namespace dcft
