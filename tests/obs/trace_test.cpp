// Trace subsystem tests: instant-event determinism across verifier
// thread counts, ring-buffer overflow accounting, and the Chrome
// trace-event JSON export round-tripping through the repo's own parser.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "apps/token_ring.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "verify/transition_system.hpp"

namespace dcft {
namespace {

/// Enables tracing on an empty buffer for one test and restores the
/// disabled default (flag, lanes, and capacity are process-wide).
struct TraceGuard {
    TraceGuard() {
        obs::set_trace_enabled(true);
        obs::set_trace_buffer_capacity(0);
        obs::trace_reset();
    }
    ~TraceGuard() {
        obs::set_trace_enabled(false);
        obs::set_trace_buffer_capacity(0);
        obs::trace_reset();
    }
};

/// Instant-event counts by name, summed across lanes. Span (begin/end)
/// events legitimately vary with the chunking, instants must not.
std::map<std::string, std::uint64_t> instant_counts(
    const obs::TraceSnapshot& snap) {
    std::map<std::string, std::uint64_t> out;
    for (const obs::TraceLane& lane : snap.lanes)
        for (const obs::TraceEvent& e : lane.events)
            if (e.phase == obs::TracePhase::kInstant)
                ++out[snap.names[e.name]];
    return out;
}

/// Explores token-ring n=6 (46656 states — big enough that 2/8-thread
/// runs really take the parallel merge under the floored work threshold)
/// and returns the instant counts of that exploration.
std::map<std::string, std::uint64_t> explore_instants(unsigned threads) {
    setenv("DCFT_VERIFIER_THREADS", std::to_string(threads).c_str(), 1);
    setenv("DCFT_PARALLEL_WORK_MIN", "1", 1);
    obs::trace_reset();
    auto sys = apps::make_token_ring(6, 6);
    // Seed from the single legitimate start state so the BFS has real
    // depth (Predicate::top() would make the whole space level 0).
    const StateIndex init = sys.initial_state();
    const Predicate seed(
        "init", [init](const StateSpace&, StateIndex s) { return s == init; });
    const TransitionSystem ts(sys.ring, &sys.corrupt_any, seed);
    EXPECT_GT(ts.num_nodes(), 0u);
    unsetenv("DCFT_VERIFIER_THREADS");
    unsetenv("DCFT_PARALLEL_WORK_MIN");
    return instant_counts(obs::trace_snapshot());
}

TEST(TraceTest, InstantCountsIdenticalAcrossThreadCounts) {
    TraceGuard guard;
    const auto t1 = explore_instants(1);
    const auto t2 = explore_instants(2);
    const auto t8 = explore_instants(8);
    ASSERT_FALSE(t1.empty());
    // level_done, interner tier, cache and spill markers are all functions
    // of the canonical BFS / byte layout, never of the chunking.
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t1, t8);
    ASSERT_TRUE(t1.count("verify/explore/level_done"));
    EXPECT_GT(t1.at("verify/explore/level_done"), 1u);
    EXPECT_EQ(t1.at("verify/interner/tier"), 1u);
}

TEST(TraceTest, OverflowDropsCountedWithoutCorruptingExport) {
    TraceGuard guard;
    obs::set_enabled(true);  // so the dropped counter gets published
    obs::Registry::global().reset();
    obs::set_trace_buffer_capacity(64);
    obs::trace_reset();

    static const std::uint32_t span_id = obs::trace_name("t/overflow/span");
    static const std::uint32_t tick_id = obs::trace_name("t/overflow/tick");
    obs::trace_begin(span_id);
    for (int i = 0; i < 1000; ++i) obs::trace_instant(tick_id, i);
    obs::trace_end(span_id);  // lane already full: this End is dropped

    const obs::TraceSnapshot snap = obs::trace_snapshot();
    EXPECT_GT(snap.dropped_total, 0u);
    std::uint64_t counter = 0;
    for (const auto& c : obs::Registry::global().counters())
        if (c.path == "obs/trace/dropped") counter = c.value;
    EXPECT_EQ(counter, snap.dropped_total);

    // The export must still be well-formed JSON with balanced spans: the
    // snapshot synthesizes an End for the open Begin whose End was lost.
    std::string error;
    const auto doc = obs::parse_json(obs::chrome_trace_json(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto* events = doc->find("traceEvents", obs::JsonValue::Kind::Array);
    ASSERT_NE(events, nullptr);
    std::map<double, int> depth;
    for (const obs::JsonValue& e : events->as_array()) {
        const std::string ph =
            e.find("ph", obs::JsonValue::Kind::String)->as_string();
        const double tid =
            e.find("tid", obs::JsonValue::Kind::Number)->as_number();
        if (ph == "B") ++depth[tid];
        if (ph == "E") {
            --depth[tid];
            EXPECT_GE(depth[tid], 0);
        }
    }
    for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0);
    obs::set_enabled(false);
}

TEST(TraceTest, ChromeExportRoundTripsThroughParser) {
    TraceGuard guard;
    static const std::uint32_t outer = obs::trace_name("t/round/outer");
    static const std::uint32_t mark = obs::trace_name("t/round/mark");
    obs::trace_begin(outer, 7);
    obs::trace_instant(mark, 3);
    obs::trace_end(outer);

    std::string error;
    const auto doc = obs::parse_json(obs::chrome_trace_json(), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const auto* events = doc->find("traceEvents", obs::JsonValue::Kind::Array);
    ASSERT_NE(events, nullptr);

    bool saw_begin = false, saw_end = false, saw_mark = false;
    double last_ts = 0.0;
    for (const obs::JsonValue& e : events->as_array()) {
        const std::string name =
            e.find("name", obs::JsonValue::Kind::String)->as_string();
        const std::string ph =
            e.find("ph", obs::JsonValue::Kind::String)->as_string();
        const double ts =
            e.find("ts", obs::JsonValue::Kind::Number)->as_number();
        EXPECT_GE(ts, last_ts);  // single lane: globally monotone
        last_ts = ts;
        if (name == "t/round/outer" && ph == "B") {
            saw_begin = true;
            const auto* args = e.find("args", obs::JsonValue::Kind::Object);
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->find("v", obs::JsonValue::Kind::Number)
                          ->as_number(),
                      7.0);
        }
        if (name == "t/round/outer" && ph == "E") saw_end = true;
        if (name == "t/round/mark" && ph == "i") {
            saw_mark = true;
            EXPECT_EQ(e.find("s", obs::JsonValue::Kind::String)->as_string(),
                      "t");
        }
    }
    EXPECT_TRUE(saw_begin);
    EXPECT_TRUE(saw_end);
    EXPECT_TRUE(saw_mark);

    const auto* other = doc->find("otherData", obs::JsonValue::Kind::Object);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("dropped", obs::JsonValue::Kind::Number)
                  ->as_number(),
              0.0);
}

TEST(TraceTest, DisabledTracingRecordsNothing) {
    obs::set_trace_enabled(false);
    obs::trace_reset();
    static const std::uint32_t id = obs::trace_name("t/disabled/span");
    obs::trace_begin(id);
    obs::trace_instant(id);
    obs::trace_end(id);
    { const obs::TraceSpan span(id); }
    const obs::TraceSnapshot snap = obs::trace_snapshot();
    for (const obs::TraceLane& lane : snap.lanes)
        EXPECT_TRUE(lane.events.empty());
    EXPECT_EQ(snap.dropped_total, 0u);
}

}  // namespace
}  // namespace dcft
