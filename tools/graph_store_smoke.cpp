// graph_store_smoke — the verify suite twice against one persistent
// graph store (ctest). Pass 1 runs the full tolerance grid (failsafe /
// nonmasking / masking over every variant) for several catalog systems
// with DCFT_GRAPH_STORE pointing at a fresh directory, populating it.
// The exploration cache is then dropped — as a process restart would —
// and the identical suite runs again. The second pass must be served
// entirely from the store: zero new explorations, store hits for every
// graph the suite needs, no new misses or saves, and verdicts identical
// to the first pass (the mmap-adopted graphs are bit-identical).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <tuple>
#include <vector>

#include "apps/catalog.hpp"
#include "obs/telemetry.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/tolerance_checker.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
    std::printf("%s: %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++g_failures;
}

std::uint64_t counter(const char* name) {
    return dcft::obs::Registry::global().counter(name).value();
}

/// One suite row: (system, variant, grade, verdict, reason).
using Row = std::tuple<std::string, std::string, std::string, bool,
                       std::string>;

std::vector<Row> run_suite() {
    const std::vector<std::pair<std::string, int>> workloads = {
        {"token-ring", 6}, {"tmr", 2}, {"memory", 3}};
    std::vector<Row> rows;
    for (const auto& [name, size] : workloads) {
        const dcft::apps::SystemInstance sys =
            dcft::apps::load_system(name, size);
        for (const auto& [variant, program] : sys.variants) {
            const auto push = [&](const char* grade,
                                  const dcft::ToleranceReport& report) {
                rows.emplace_back(name, variant, grade, report.ok(),
                                  report.reason());
            };
            push("failsafe",
                 dcft::check_failsafe(program, *sys.faults, sys.spec,
                                      sys.invariant));
            push("nonmasking",
                 dcft::check_nonmasking(program, *sys.faults, sys.spec,
                                        sys.invariant));
            push("masking",
                 dcft::check_masking(program, *sys.faults, sys.spec,
                                     sys.invariant));
        }
    }
    return rows;
}

}  // namespace

int main() {
    dcft::obs::set_enabled(true);

    char dir_template[] = "/tmp/dcft-graph-store-smoke-XXXXXX";
    if (::mkdtemp(dir_template) == nullptr) {
        std::fprintf(stderr, "FAIL: mkdtemp failed\n");
        return 1;
    }
    const std::string store_dir = dir_template;
    ::setenv("DCFT_GRAPH_STORE", store_dir.c_str(), 1);

    // -- Pass 1: cold — explores, and publishes every graph -------------
    const std::vector<Row> cold = run_suite();
    const std::uint64_t explored = counter("verify/explorations");
    const std::uint64_t misses = counter("verify/graph_store/misses");
    const std::uint64_t saves = counter("verify/graph_store/saves");
    check(!cold.empty(), "suite produced verdicts");
    check(explored > 0, "cold pass explored");
    check(saves > 0, "cold pass published graphs to the store");

    std::size_t stored_files = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(store_dir))
        if (entry.path().extension() == ".dcftg") ++stored_files;
    check(stored_files == saves,
          "one .dcftg snapshot per save (" +
              std::to_string(stored_files) + " files, " +
              std::to_string(saves) + " saves)");

    // Simulate a process restart: the in-memory cache is gone, only the
    // store directory survives.
    dcft::ExplorationCache::global().clear();

    // -- Pass 2: warm — every graph must come from the store ------------
    const std::vector<Row> warm = run_suite();
    const std::uint64_t hits = counter("verify/graph_store/hits");
    check(counter("verify/explorations") == explored,
          "warm pass ran zero new explorations");
    check(hits >= saves,
          "warm pass hit the store for every published graph (" +
              std::to_string(hits) + " hits, " + std::to_string(saves) +
              " saved)");
    check(counter("verify/graph_store/misses") == misses,
          "warm pass had no store misses");
    check(counter("verify/graph_store/saves") == saves,
          "warm pass re-published nothing");
    check(counter("verify/graph_store/load_errors") == 0,
          "no snapshot failed to load");

    check(warm.size() == cold.size(), "both passes ran the same grid");
    bool verdicts_match = warm.size() == cold.size();
    for (std::size_t i = 0; verdicts_match && i < cold.size(); ++i)
        verdicts_match = cold[i] == warm[i];
    check(verdicts_match,
          "mmap-served verdicts identical to freshly explored ones");

    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);

    if (g_failures == 0) {
        std::printf("graph_store_smoke: all checks passed\n");
        return 0;
    }
    std::fprintf(stderr, "graph_store_smoke: %d check(s) failed\n",
                 g_failures);
    return 1;
}
