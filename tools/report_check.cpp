// report_check — end-to-end validator for dcft run reports.
//
//   report_check <path-to-dcft-cli> <system>[:size]...
//
// For each system it runs `dcft verify <system> [size] --report FILE`,
// parses the emitted JSON with the same reader the tests use
// (obs/json.hpp), and validates the schema: envelope keys, per-query
// verdict fields, witness traces with action provenance, non-negative
// counters, and a properly nested span tree. Exits non-zero on the first
// malformed report. Registered as the ctest target `report_check` over the
// token-ring and Byzantine examples, so the --report pipeline cannot rot
// silently.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using dcft::obs::JsonValue;

namespace {

struct Failure {
    std::string message;
};

void require(bool ok, const std::string& what) {
    if (!ok) throw Failure{what};
}

const JsonValue& member(const JsonValue& obj, const std::string& key,
                        JsonValue::Kind kind) {
    const JsonValue* v = obj.find(key, kind);
    require(v != nullptr, "missing or mistyped member '" + key + "'");
    return *v;
}

void check_nonneg_number(const JsonValue& obj, const std::string& key) {
    const JsonValue& v = member(obj, key, JsonValue::Kind::Number);
    require(v.as_number() >= 0.0, "member '" + key + "' is negative");
}

/// A span node: name/path/ns/calls plus recursively valid children whose
/// paths extend the parent's path.
void check_span(const JsonValue& span, const std::string& parent_path) {
    const std::string name =
        member(span, "name", JsonValue::Kind::String).as_string();
    const std::string path =
        member(span, "path", JsonValue::Kind::String).as_string();
    require(!name.empty(), "span with empty name");
    const std::string expected =
        parent_path.empty() ? name : parent_path + "/" + name;
    require(path == expected, "span path '" + path +
                                  "' does not nest under '" + parent_path +
                                  "'");
    check_nonneg_number(span, "ns");
    check_nonneg_number(span, "calls");
    for (const JsonValue& child :
         member(span, "children", JsonValue::Kind::Array).as_array())
        check_span(child, path);
}

void check_witness_step(const JsonValue& step) {
    check_nonneg_number(step, "state");
    member(step, "state_repr", JsonValue::Kind::String);
    member(step, "action", JsonValue::Kind::String);
    member(step, "fault", JsonValue::Kind::Bool);
}

/// Validates one query; reports back whether it carried a non-trivial
/// witness and whether it passed.
void check_query(const JsonValue& q, bool* ok_out, bool* has_witness_out) {
    for (const char* key : {"name", "system", "variant", "grade", "reason"})
        member(q, key, JsonValue::Kind::String);
    const bool ok = member(q, "ok", JsonValue::Kind::Bool).as_bool();
    check_nonneg_number(q, "invariant_size");
    check_nonneg_number(q, "span_size");
    const JsonValue& witness =
        member(q, "witness", JsonValue::Kind::Object);
    const std::string kind =
        member(witness, "kind", JsonValue::Kind::String).as_string();
    const auto& trace =
        member(witness, "trace", JsonValue::Kind::Array).as_array();
    require(kind.empty() || kind == "counterexample" || kind == "exploration",
            "unknown witness kind '" + kind + "'");
    if (kind == "counterexample") require(!ok, "counterexample on a pass");
    if (kind == "exploration") require(ok, "exploration witness on a fail");
    if (!kind.empty()) require(!trace.empty(), "witness with empty trace");
    for (const JsonValue& step : trace) check_witness_step(step);
    // Replayability: the trace starts at a root (no acting action) and
    // every later step names the action that produced it.
    if (!trace.empty()) {
        require(trace.front()
                    .find("action", JsonValue::Kind::String)
                    ->as_string()
                    .empty(),
                "witness root carries an action");
        for (std::size_t i = 1; i < trace.size(); ++i)
            require(!trace[i]
                         .find("action", JsonValue::Kind::String)
                         ->as_string()
                         .empty(),
                    "witness step without action provenance");
    }
    *ok_out = ok;
    *has_witness_out = !trace.empty();
}

struct ReportSummary {
    std::size_t queries = 0;
    std::size_t passing_with_witness = 0;
    std::size_t failing_with_witness = 0;
};

ReportSummary check_report(const JsonValue& doc) {
    require(member(doc, "schema", JsonValue::Kind::String).as_string() ==
                "dcft.report",
            "wrong schema tag");
    require(member(doc, "schema_version", JsonValue::Kind::Number)
                    .as_number() == 1.0,
            "unexpected schema_version");
    require(member(doc, "kind", JsonValue::Kind::String).as_string() ==
                "run_report",
            "wrong kind");
    member(doc, "tool", JsonValue::Kind::String);
    member(doc, "command", JsonValue::Kind::String);

    ReportSummary summary;
    const auto& queries =
        member(doc, "queries", JsonValue::Kind::Array).as_array();
    require(!queries.empty(), "report with no queries");
    summary.queries = queries.size();
    for (const JsonValue& q : queries) {
        bool ok = false, has_witness = false;
        check_query(q, &ok, &has_witness);
        if (has_witness) {
            if (ok)
                ++summary.passing_with_witness;
            else
                ++summary.failing_with_witness;
        }
    }

    // Kernel-coverage section: one entry per program variant, counts must
    // be internally consistent (compiled subsets cannot exceed the action
    // count; a batch-eligible program has no uncovered actions).
    const auto& programs =
        member(doc, "programs", JsonValue::Kind::Array).as_array();
    require(!programs.empty(), "report with no program coverage entries");
    for (const JsonValue& p : programs) {
        member(p, "name", JsonValue::Kind::String);
        auto count = [&](const char* key) {
            check_nonneg_number(p, key);
            return member(p, key, JsonValue::Kind::Number).as_number();
        };
        const double actions = count("actions");
        const double compiled = count("fully_compiled");
        const double structured = count("structured_effects");
        const double batchable_actions = count("batchable_actions");
        count("kcall_ops");
        require(compiled <= actions && structured <= actions &&
                    batchable_actions <= compiled &&
                    batchable_actions <= structured,
                "inconsistent kernel coverage counts");
        if (member(p, "batchable", JsonValue::Kind::Bool).as_bool())
            require(batchable_actions == actions,
                    "batchable program with uncovered actions");
    }

    const JsonValue& telemetry =
        member(doc, "telemetry", JsonValue::Kind::Object);
    require(member(telemetry, "enabled", JsonValue::Kind::Bool).as_bool(),
            "--report must enable telemetry");
    const auto& counters =
        member(telemetry, "counters", JsonValue::Kind::Object).as_object();
    require(!counters.empty(), "telemetry with no counters");
    for (const auto& [path, value] : counters) {
        require(value.is_number() && value.as_number() >= 0.0,
                "counter '" + path + "' is not a non-negative number");
    }
    const auto& spans =
        member(telemetry, "spans", JsonValue::Kind::Array).as_array();
    require(!spans.empty(), "telemetry with no spans");
    for (const JsonValue& span : spans) check_span(span, "");
    return summary;
}

int run_system(const std::string& cli, const std::string& spec,
               ReportSummary* total) {
    std::string system = spec;
    std::string size;
    if (const auto colon = spec.find(':'); colon != std::string::npos) {
        system = spec.substr(0, colon);
        size = spec.substr(colon + 1);
    }
    const std::string report_path = "report_check_" + system + ".json";
    std::string command = "\"" + cli + "\" verify " + system;
    if (!size.empty()) command += " " + size;
    command += " --report " + report_path;
    std::printf("report_check: %s\n", command.c_str());
    if (std::system(command.c_str()) != 0) {
        std::fprintf(stderr, "report_check: command failed: %s\n",
                     command.c_str());
        return 1;
    }

    std::ifstream in(report_path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "report_check: no report written at %s\n",
                     report_path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::string error;
    const auto doc = dcft::obs::parse_json(buffer.str(), &error);
    if (!doc) {
        std::fprintf(stderr, "report_check: %s is not valid JSON: %s\n",
                     report_path.c_str(), error.c_str());
        return 1;
    }
    try {
        const ReportSummary summary = check_report(*doc);
        total->queries += summary.queries;
        total->passing_with_witness += summary.passing_with_witness;
        total->failing_with_witness += summary.failing_with_witness;
        std::printf(
            "report_check: %s ok (%zu queries, %zu passing / %zu failing "
            "with witnesses)\n",
            report_path.c_str(), summary.queries,
            summary.passing_with_witness, summary.failing_with_witness);
    } catch (const Failure& failure) {
        std::fprintf(stderr, "report_check: %s invalid: %s\n",
                     report_path.c_str(), failure.message.c_str());
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: report_check <dcft-cli> <system>[:size]...\n");
        return 2;
    }
    const std::string cli = argv[1];
    ReportSummary total;
    for (int i = 2; i < argc; ++i)
        if (const int rc = run_system(cli, argv[i], &total); rc != 0)
            return rc;
    // Across the validated systems there must be at least one passing and
    // one failing query whose witness traces are replayable.
    if (total.passing_with_witness == 0 || total.failing_with_witness == 0) {
        std::fprintf(stderr,
                     "report_check: expected both a passing and a failing "
                     "query with witnesses (got %zu passing, %zu failing)\n",
                     total.passing_with_witness, total.failing_with_witness);
        return 1;
    }
    std::printf("report_check: all reports valid (%zu queries)\n",
                total.queries);
    return 0;
}
