// report_check — end-to-end validator for dcft run reports and traces.
//
//   report_check [--trace] [--graded] <path-to-dcft-cli> <system>[:size]...
//
// For each system it runs `dcft verify <system> [size] --report FILE`,
// parses the emitted JSON with the same reader the tests use
// (obs/json.hpp), and validates the schema: envelope keys, per-query
// verdict fields, witness traces with action provenance, non-negative
// counters, the per-level exploration timeline (levels consecutive from
// 0, non-empty frontiers), and a properly nested span tree. With --trace
// it additionally passes `--trace FILE --progress=0.2` to each verify
// run and validates the Chrome trace-event JSON: every event name is a
// '/'-separated lower_snake path, timestamps are monotone within each
// lane (tid), begin/end events balance like a stack per lane, and the
// trace carries at least one `verify/explore/level` span per timeline
// level row in the report. With --graded it passes `--graded` to each
// verify run and requires every query to carry the graded blocks:
// `masking_distance` (distance null exactly when masking, consistent
// witness_faults) and `monte_carlo` (run accounting, violation rate in
// [0,1], stats blocks whose aggregates are numbers or null with a
// consistent count). Exits non-zero on the first malformed artifact.
// Registered as the ctest targets `report_check` (token-ring,
// Byzantine), `trace_smoke` (--trace on token-ring), and
// `report_check_graded` (--graded on token-ring), so neither the
// --report, --trace, nor --graded pipeline can rot silently.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

using dcft::obs::JsonValue;

namespace {

struct Failure {
    std::string message;
};

void require(bool ok, const std::string& what) {
    if (!ok) throw Failure{what};
}

const JsonValue& member(const JsonValue& obj, const std::string& key,
                        JsonValue::Kind kind) {
    const JsonValue* v = obj.find(key, kind);
    require(v != nullptr, "missing or mistyped member '" + key + "'");
    return *v;
}

void check_nonneg_number(const JsonValue& obj, const std::string& key) {
    const JsonValue& v = member(obj, key, JsonValue::Kind::Number);
    require(v.as_number() >= 0.0, "member '" + key + "' is negative");
}

/// A span node: name/path/ns/calls plus recursively valid children whose
/// paths extend the parent's path.
void check_span(const JsonValue& span, const std::string& parent_path) {
    const std::string name =
        member(span, "name", JsonValue::Kind::String).as_string();
    const std::string path =
        member(span, "path", JsonValue::Kind::String).as_string();
    require(!name.empty(), "span with empty name");
    const std::string expected =
        parent_path.empty() ? name : parent_path + "/" + name;
    require(path == expected, "span path '" + path +
                                  "' does not nest under '" + parent_path +
                                  "'");
    check_nonneg_number(span, "ns");
    check_nonneg_number(span, "calls");
    for (const JsonValue& child :
         member(span, "children", JsonValue::Kind::Array).as_array())
        check_span(child, path);
}

void check_witness_step(const JsonValue& step) {
    check_nonneg_number(step, "state");
    member(step, "state_repr", JsonValue::Kind::String);
    member(step, "action", JsonValue::Kind::String);
    member(step, "fault", JsonValue::Kind::Bool);
}

/// A monte_carlo stats block: count plus aggregates that are numbers or
/// null (NaN serializes as null), and an empty distribution has every
/// aggregate null.
void check_stats_block(const JsonValue& mc, const std::string& key) {
    const JsonValue& block = member(mc, key, JsonValue::Kind::Object);
    check_nonneg_number(block, "count");
    const bool empty =
        member(block, "count", JsonValue::Kind::Number).as_number() == 0.0;
    for (const char* agg : {"mean", "p50", "p90", "p99"}) {
        const JsonValue* v = block.find(agg);
        require(v != nullptr, "stats block '" + key + "' missing '" + agg +
                                  "'");
        require(v->is_number() || v->is_null(),
                "stats block '" + key + "' member '" + agg +
                    "' is neither number nor null");
        if (empty)
            require(v->is_null(), "empty stats block '" + key +
                                      "' with a non-null '" + agg + "'");
        else
            require(v->is_number(), "non-empty stats block '" + key +
                                        "' with a null '" + agg + "'");
    }
}

/// The graded blocks attached by `verify --graded`: the game result and
/// the Monte Carlo estimate, internally consistent.
void check_graded_blocks(const JsonValue& q) {
    const JsonValue& md =
        member(q, "masking_distance", JsonValue::Kind::Object);
    const bool masking =
        member(md, "masking", JsonValue::Kind::Bool).as_bool();
    const JsonValue* distance = md.find("distance");
    require(distance != nullptr, "masking_distance without 'distance'");
    if (masking)
        require(distance->is_null(),
                "masking query with a finite distance member");
    else
        require(distance->is_number() && distance->as_number() >= 0.0,
                "non-masking query without a numeric distance");
    check_nonneg_number(md, "game_nodes");
    check_nonneg_number(md, "game_layers");
    check_nonneg_number(md, "witness_faults");
    if (!masking)
        require(member(md, "witness_faults", JsonValue::Kind::Number)
                        .as_number() == distance->as_number(),
                "witness_faults disagrees with the masking distance");

    const JsonValue& mc = member(q, "monte_carlo", JsonValue::Kind::Object);
    for (const char* key : {"runs", "violated_runs", "base_seed",
                            "fault_probability", "max_steps", "max_faults"})
        check_nonneg_number(mc, key);
    const double runs =
        member(mc, "runs", JsonValue::Kind::Number).as_number();
    const double violated =
        member(mc, "violated_runs", JsonValue::Kind::Number).as_number();
    require(runs > 0.0, "monte_carlo block with zero runs");
    require(violated <= runs, "more violated runs than runs");
    const double rate =
        member(mc, "violation_rate", JsonValue::Kind::Number).as_number();
    require(rate >= 0.0 && rate <= 1.0, "violation_rate outside [0,1]");
    check_stats_block(mc, "time_to_violation");
    check_stats_block(mc, "time_to_recovery");
    check_stats_block(mc, "faults_absorbed");
    // Each violated run contributes exactly one time-to-violation sample.
    const JsonValue& ttv =
        member(mc, "time_to_violation", JsonValue::Kind::Object);
    require(member(ttv, "count", JsonValue::Kind::Number).as_number() ==
                violated,
            "time_to_violation count disagrees with violated_runs");
}

/// Validates one query; reports back whether it carried a non-trivial
/// witness and whether it passed.
void check_query(const JsonValue& q, bool graded, bool* ok_out,
                 bool* has_witness_out) {
    for (const char* key : {"name", "system", "variant", "grade", "reason"})
        member(q, key, JsonValue::Kind::String);
    const bool ok = member(q, "ok", JsonValue::Kind::Bool).as_bool();
    check_nonneg_number(q, "invariant_size");
    check_nonneg_number(q, "span_size");
    if (graded) check_graded_blocks(q);
    const JsonValue& witness =
        member(q, "witness", JsonValue::Kind::Object);
    const std::string kind =
        member(witness, "kind", JsonValue::Kind::String).as_string();
    const auto& trace =
        member(witness, "trace", JsonValue::Kind::Array).as_array();
    require(kind.empty() || kind == "counterexample" || kind == "exploration",
            "unknown witness kind '" + kind + "'");
    if (kind == "counterexample") require(!ok, "counterexample on a pass");
    if (kind == "exploration") require(ok, "exploration witness on a fail");
    if (!kind.empty()) require(!trace.empty(), "witness with empty trace");
    for (const JsonValue& step : trace) check_witness_step(step);
    // Replayability: the trace starts at a root (no acting action) and
    // every later step names the action that produced it.
    if (!trace.empty()) {
        require(trace.front()
                    .find("action", JsonValue::Kind::String)
                    ->as_string()
                    .empty(),
                "witness root carries an action");
        for (std::size_t i = 1; i < trace.size(); ++i)
            require(!trace[i]
                         .find("action", JsonValue::Kind::String)
                         ->as_string()
                         .empty(),
                    "witness step without action provenance");
    }
    *ok_out = ok;
    *has_witness_out = !trace.empty();
}

/// The 'timeline' member: one entry per exploration, each with per-level
/// rows whose level numbers run consecutively from 0. Returns the total
/// number of level rows (cross-checked against the event trace).
std::size_t check_timeline(const JsonValue& doc) {
    std::size_t level_rows = 0;
    const auto& timelines =
        member(doc, "timeline", JsonValue::Kind::Array).as_array();
    require(!timelines.empty(), "report with no exploration timelines");
    for (const JsonValue& tl : timelines) {
        check_nonneg_number(tl, "id");
        check_nonneg_number(tl, "space_states");
        check_nonneg_number(tl, "total_ns");
        member(tl, "complete", JsonValue::Kind::Bool);
        member(tl, "spilled", JsonValue::Kind::Bool);
        const auto& levels =
            member(tl, "levels", JsonValue::Kind::Array).as_array();
        require(!levels.empty(), "timeline entry with no levels");
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const JsonValue& row = levels[i];
            for (const char* key :
                 {"frontier", "new_nodes", "program_edges", "fault_edges",
                  "level_ns", "expand_claim_ns", "claim_filter_ns",
                  "publish_ns", "edge_write_ns", "rss_bytes", "spill_bytes",
                  "spill_released_bytes"})
                check_nonneg_number(row, key);
            member(row, "parallel", JsonValue::Kind::Bool);
            require(member(row, "level", JsonValue::Kind::Number)
                            .as_number() == static_cast<double>(i),
                    "timeline levels not consecutive from 0");
            require(member(row, "frontier", JsonValue::Kind::Number)
                            .as_number() > 0.0,
                    "timeline level with empty frontier");
        }
        level_rows += levels.size();
    }
    return level_rows;
}

/// Trace event names follow the telemetry path convention: '/'-separated
/// non-empty lower_snake segments.
void check_event_name(const std::string& name) {
    require(!name.empty(), "trace event with empty name");
    bool segment_empty = true;
    for (const char c : name) {
        if (c == '/') {
            require(!segment_empty,
                    "trace event name '" + name + "' has an empty segment");
            segment_empty = true;
            continue;
        }
        require((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_',
                "trace event name '" + name + "' is not lower_snake");
        segment_empty = false;
    }
    require(!segment_empty, "trace event name '" + name +
                                "' has an empty segment");
}

/// Chrome trace-event JSON: monotone timestamps and balanced begin/end
/// per lane, valid names everywhere. Returns the number of
/// verify/explore/level spans.
std::size_t check_trace(const JsonValue& doc) {
    const auto& events =
        member(doc, "traceEvents", JsonValue::Kind::Array).as_array();
    require(!events.empty(), "trace with no events");
    std::map<double, std::vector<std::string>> open;  // per-tid span stack
    std::map<double, double> last_ts;
    std::size_t level_spans = 0;
    for (const JsonValue& e : events) {
        const std::string name =
            member(e, "name", JsonValue::Kind::String).as_string();
        check_event_name(name);
        const std::string ph =
            member(e, "ph", JsonValue::Kind::String).as_string();
        require(ph == "B" || ph == "E" || ph == "i",
                "unexpected event phase '" + ph + "'");
        const double ts = member(e, "ts", JsonValue::Kind::Number).as_number();
        require(ts >= 0.0, "negative trace timestamp");
        const double tid =
            member(e, "tid", JsonValue::Kind::Number).as_number();
        if (const auto it = last_ts.find(tid); it != last_ts.end())
            require(ts >= it->second,
                    "timestamps not monotone within lane");
        last_ts[tid] = ts;
        std::vector<std::string>& stack = open[tid];
        if (ph == "B") {
            stack.push_back(name);
            if (name == "verify/explore/level") ++level_spans;
        } else if (ph == "E") {
            require(!stack.empty() && stack.back() == name,
                    "unbalanced begin/end for '" + name + "'");
            stack.pop_back();
        }
    }
    for (const auto& [tid, stack] : open)
        require(stack.empty(), "lane ends with open spans");
    check_nonneg_number(member(doc, "otherData", JsonValue::Kind::Object),
                        "dropped");
    return level_spans;
}

struct ReportSummary {
    std::size_t queries = 0;
    std::size_t passing_with_witness = 0;
    std::size_t failing_with_witness = 0;
    std::size_t timeline_levels = 0;
};

ReportSummary check_report(const JsonValue& doc, bool graded) {
    require(member(doc, "schema", JsonValue::Kind::String).as_string() ==
                "dcft.report",
            "wrong schema tag");
    require(member(doc, "schema_version", JsonValue::Kind::Number)
                    .as_number() == 1.0,
            "unexpected schema_version");
    require(member(doc, "kind", JsonValue::Kind::String).as_string() ==
                "run_report",
            "wrong kind");
    member(doc, "tool", JsonValue::Kind::String);
    member(doc, "command", JsonValue::Kind::String);

    // Host block: present in every envelope; cores/page size must be real
    // (positive) on the platforms CI runs on, the rest is best-effort.
    const JsonValue& host = member(doc, "host", JsonValue::Kind::Object);
    require(member(host, "cores", JsonValue::Kind::Number).as_number() > 0.0,
            "host.cores must be positive");
    require(member(host, "page_size_bytes", JsonValue::Kind::Number)
                    .as_number() > 0.0,
            "host.page_size_bytes must be positive");
    require(!member(host, "kernel", JsonValue::Kind::String)
                 .as_string()
                 .empty(),
            "host.kernel must be non-empty");
    check_nonneg_number(host, "total_ram_bytes");

    ReportSummary summary;
    const auto& queries =
        member(doc, "queries", JsonValue::Kind::Array).as_array();
    require(!queries.empty(), "report with no queries");
    summary.queries = queries.size();
    for (const JsonValue& q : queries) {
        bool ok = false, has_witness = false;
        check_query(q, graded, &ok, &has_witness);
        if (has_witness) {
            if (ok)
                ++summary.passing_with_witness;
            else
                ++summary.failing_with_witness;
        }
    }

    // Kernel-coverage section: one entry per program variant, counts must
    // be internally consistent (compiled subsets cannot exceed the action
    // count; a batch-eligible program has no uncovered actions).
    const auto& programs =
        member(doc, "programs", JsonValue::Kind::Array).as_array();
    require(!programs.empty(), "report with no program coverage entries");
    for (const JsonValue& p : programs) {
        member(p, "name", JsonValue::Kind::String);
        auto count = [&](const char* key) {
            check_nonneg_number(p, key);
            return member(p, key, JsonValue::Kind::Number).as_number();
        };
        const double actions = count("actions");
        const double compiled = count("fully_compiled");
        const double structured = count("structured_effects");
        const double batchable_actions = count("batchable_actions");
        count("kcall_ops");
        require(compiled <= actions && structured <= actions &&
                    batchable_actions <= compiled &&
                    batchable_actions <= structured,
                "inconsistent kernel coverage counts");
        if (member(p, "batchable", JsonValue::Kind::Bool).as_bool())
            require(batchable_actions == actions,
                    "batchable program with uncovered actions");
    }

    summary.timeline_levels = check_timeline(doc);

    const JsonValue& telemetry =
        member(doc, "telemetry", JsonValue::Kind::Object);
    require(member(telemetry, "enabled", JsonValue::Kind::Bool).as_bool(),
            "--report must enable telemetry");
    const auto& counters =
        member(telemetry, "counters", JsonValue::Kind::Object).as_object();
    require(!counters.empty(), "telemetry with no counters");
    for (const auto& [path, value] : counters) {
        require(value.is_number() && value.as_number() >= 0.0,
                "counter '" + path + "' is not a non-negative number");
    }
    const auto& spans =
        member(telemetry, "spans", JsonValue::Kind::Array).as_array();
    require(!spans.empty(), "telemetry with no spans");
    for (const JsonValue& span : spans) check_span(span, "");
    return summary;
}

/// Reads and parses one JSON artifact; nullopt (with a message printed)
/// on a missing file or a parse error.
std::optional<JsonValue> load_json(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "report_check: no artifact written at %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    auto doc = dcft::obs::parse_json(buffer.str(), &error);
    if (!doc)
        std::fprintf(stderr, "report_check: %s is not valid JSON: %s\n",
                     path.c_str(), error.c_str());
    return doc;
}

int run_system(const std::string& cli, const std::string& spec,
               bool with_trace, bool graded, ReportSummary* total) {
    std::string system = spec;
    std::string size;
    if (const auto colon = spec.find(':'); colon != std::string::npos) {
        system = spec.substr(0, colon);
        size = spec.substr(colon + 1);
    }
    // Distinct artifact per mode so parallel ctest invocations (plain,
    // --trace, --graded) on the same system never race on one file.
    const std::string report_path = "report_check_" + system +
                                    (graded ? "_graded" : "") + ".json";
    const std::string trace_path =
        "report_check_" + system + "_trace.json";
    std::string command = "\"" + cli + "\" verify " + system;
    if (!size.empty()) command += " " + size;
    command += " --report " + report_path;
    if (graded) command += " --graded";
    if (with_trace) command += " --trace " + trace_path + " --progress=0.2";
    std::printf("report_check: %s\n", command.c_str());
    if (std::system(command.c_str()) != 0) {
        std::fprintf(stderr, "report_check: command failed: %s\n",
                     command.c_str());
        return 1;
    }

    const std::optional<JsonValue> doc = load_json(report_path);
    if (!doc) return 1;
    ReportSummary summary;
    try {
        summary = check_report(*doc, graded);
        total->queries += summary.queries;
        total->passing_with_witness += summary.passing_with_witness;
        total->failing_with_witness += summary.failing_with_witness;
        std::printf(
            "report_check: %s ok (%zu queries, %zu passing / %zu failing "
            "with witnesses, %zu timeline levels)\n",
            report_path.c_str(), summary.queries,
            summary.passing_with_witness, summary.failing_with_witness,
            summary.timeline_levels);
    } catch (const Failure& failure) {
        std::fprintf(stderr, "report_check: %s invalid: %s\n",
                     report_path.c_str(), failure.message.c_str());
        return 1;
    }
    if (!with_trace) return 0;

    const std::optional<JsonValue> trace = load_json(trace_path);
    if (!trace) return 1;
    try {
        const std::size_t level_spans = check_trace(*trace);
        // Timeline rows and level spans come from the same explorations
        // (both record when tracing is on), so the trace must cover every
        // level the report saw.
        require(level_spans >= summary.timeline_levels,
                "trace has fewer verify/explore/level spans than the "
                "report has timeline levels");
        std::printf("report_check: %s ok (%zu level spans)\n",
                    trace_path.c_str(), level_spans);
    } catch (const Failure& failure) {
        std::fprintf(stderr, "report_check: %s invalid: %s\n",
                     trace_path.c_str(), failure.message.c_str());
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    int argi = 1;
    bool with_trace = false;
    bool graded = false;
    while (argi < argc) {
        const std::string arg = argv[argi];
        if (arg == "--trace")
            with_trace = true;
        else if (arg == "--graded")
            graded = true;
        else
            break;
        ++argi;
    }
    if (argc - argi < 2) {
        std::fprintf(stderr,
                     "usage: report_check [--trace] [--graded] <dcft-cli> "
                     "<system>[:size]...\n");
        return 2;
    }
    const std::string cli = argv[argi++];
    ReportSummary total;
    for (int i = argi; i < argc; ++i)
        if (const int rc =
                run_system(cli, argv[i], with_trace, graded, &total);
            rc != 0)
            return rc;
    // Across the validated systems there must be at least one passing and
    // one failing query whose witness traces are replayable.
    if (total.passing_with_witness == 0 || total.failing_with_witness == 0) {
        std::fprintf(stderr,
                     "report_check: expected both a passing and a failing "
                     "query with witnesses (got %zu passing, %zu failing)\n",
                     total.passing_with_witness, total.failing_with_witness);
        return 1;
    }
    std::printf("report_check: all reports valid (%zu queries)\n",
                total.queries);
    return 0;
}
