// dcft — command-line driver over the built-in example systems.
//
//   dcft list
//       Show the available systems and their program variants.
//   dcft verify <system> [size] [--report FILE] [--trace FILE]
//                                [--progress[=SECS]]
//       Run the fail-safe / nonmasking / masking checks for every variant
//       of the system and print the verdict grid. With --report, enable
//       telemetry and write a run report (schema dcft.report, see
//       obs/run_report.hpp) with per-query verdicts, witness traces, the
//       per-level exploration timeline, the phase tree, and all counters.
//       With --trace, record begin/end/instant events and export Chrome
//       trace-event JSON (chrome://tracing, Perfetto). With --progress,
//       print a live heartbeat to stderr while exploring.
//   dcft simulate <system> [size] [--variant NAME] [--runs N]
//                 [--fault-p P] [--max-faults K] [--steps N] [--seed S]
//                 [--trace FILE] [--progress[=SECS]]
//       Batch-simulate a variant under fault injection and print
//       aggregate statistics.
//   dcft client <op> [args] [--socket PATH] [--id TAG]
//       Query a running dcftd daemon (tools/dcftd.cpp) over its unix
//       socket: ping | list | stats | shutdown | verify <system> [size].
//       Prints the single-line JSON response; exits 0 iff the daemon
//       answered ok.
//
// Observability flags accept `--flag value` and `--flag=value`;
// --progress may also appear bare (1s interval). Each has an environment
// twin (DCFT_TRACE=FILE, DCFT_PROGRESS=SECS, DCFT_TELEMETRY=1) so the
// same knobs work on binaries launched by scripts or ctest. Contradictory
// requests fail fast instead of silently doing nothing: --report/--trace
// with DCFT_TELEMETRY explicitly falsy, or --progress=0, are errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "common/env.hpp"
#include "obs/progress.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/experiment.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "verify/batch_kernel.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

namespace {

int cmd_list() {
    std::printf("built-in systems (dcft verify <system> [size]):\n");
    for (const std::string& name : apps::catalog_names()) {
        const apps::SystemInstance sys = apps::load_system(name, 0);
        std::printf("  %-14s states=%-10llu variants:", name.c_str(),
                    static_cast<unsigned long long>(
                        sys.space->num_states()));
        for (const auto& [variant, program] : sys.variants) {
            std::printf(" %s(%zu actions)", variant.c_str(),
                        program.num_actions());
        }
        std::printf("\n");
    }
    return 0;
}

// ---------------------------------------------------------------------------
// Flag parsing

/// Normalized flags: `--flag`, `--flag=value`, and `--flag value` all land
/// here; value-less flags map to "".
using FlagMap = std::map<std::string, std::string>;

struct FlagSpec {
    const char* name;
    bool value_required;  ///< must carry a value (= form or next argv)
};

const std::vector<FlagSpec> kVerifyFlags = {
    {"report", true}, {"trace", true}, {"progress", false},
    {"graded", false}};

// --report is accepted here only to produce a targeted error in
// cmd_simulate; run reports are a verify concept.
const std::vector<FlagSpec> kSimulateFlags = {
    {"variant", true},    {"runs", true},  {"steps", true},
    {"seed", true},       {"fault-p", true}, {"max-faults", true},
    {"report", true},     {"trace", true}, {"progress", false}};

bool parse_flags(int argc, char** argv, int arg,
                 const std::vector<FlagSpec>& specs, FlagMap& out,
                 std::string* error) {
    for (; arg < argc; ++arg) {
        std::string token = argv[arg];
        if (token.rfind("--", 0) != 0) {
            *error = "unexpected argument '" + token + "'";
            return false;
        }
        std::string key = token.substr(2);
        std::optional<std::string> value;
        if (const std::size_t eq = key.find('='); eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        }
        const FlagSpec* spec = nullptr;
        for (const FlagSpec& s : specs)
            if (key == s.name) {
                spec = &s;
                break;
            }
        if (spec == nullptr) {
            *error = "unknown flag --" + key;
            return false;
        }
        if (!value.has_value() && spec->value_required) {
            if (arg + 1 >= argc) {
                *error = "--" + key + " requires a value (--" + key +
                         "=VALUE or --" + key + " VALUE)";
                return false;
            }
            value = argv[++arg];
        }
        out[key] = value.value_or("");
    }
    return true;
}

void print_usage(std::FILE* out) {
    std::fputs(
        "usage: dcft <command> [args]\n"
        "\n"
        "commands:\n"
        "  list\n"
        "      Show the built-in systems and their program variants.\n"
        "  verify <system> [size] [--graded] [--report FILE] [--trace FILE]\n"
        "         [--progress[=SECS]]\n"
        "      Run the fail-safe / nonmasking / masking checks for every\n"
        "      variant and print the verdict grid. With --graded, also\n"
        "      solve the masking-distance game (faults absorbed before\n"
        "      safety breaks; inf = masking) and run a fixed-seed Monte\n"
        "      Carlo estimate (time-to-violation / time-to-recovery /\n"
        "      faults-absorbed percentiles); reports gain per-query\n"
        "      masking_distance + monte_carlo blocks.\n"
        "  simulate <system> [size] [--variant NAME] [--runs N] [--steps N]\n"
        "           [--seed S] [--fault-p P] [--max-faults K]\n"
        "           [--trace FILE] [--progress[=SECS]]\n"
        "      Batch-simulate a variant under fault injection.\n"
        "  client <op> [args] [--socket PATH] [--id TAG]\n"
        "      Query a running dcftd daemon. Ops: ping, list, stats,\n"
        "      shutdown, verify <system> [size] [--graded]. Prints the\n"
        "      one-line JSON response; exits 0 iff the daemon answered ok.\n"
        "      Socket default: $DCFT_SOCKET or /tmp/dcftd.sock.\n"
        "\n"
        "observability flags (each has an environment twin):\n"
        "  --report FILE      write a dcft.report run report: per-query\n"
        "                     verdicts, witnesses, the per-level exploration\n"
        "                     timeline, and telemetry. Implies telemetry.\n"
        "                     env twin: DCFT_TELEMETRY=1 (telemetry only)\n"
        "  --trace FILE       record begin/end/instant events and write\n"
        "                     Chrome trace-event JSON (chrome://tracing or\n"
        "                     Perfetto). Implies telemetry.\n"
        "                     env twin: DCFT_TRACE=FILE\n"
        "  --progress[=SECS]  print a live heartbeat to stderr every SECS\n"
        "                     seconds (default 1).\n"
        "                     env twin: DCFT_PROGRESS=SECS\n"
        "\n"
        "Contradictions fail fast instead of silently doing nothing:\n"
        "--report/--trace with DCFT_TELEMETRY explicitly falsy, and\n"
        "--progress=0, are errors.\n",
        out);
}

// ---------------------------------------------------------------------------
// Observability setup

/// Resolves --trace/--progress against their environment twins and arms
/// the subsystems. Returns the trace output path ("" when tracing is
/// off). Throws ContractError on combinations that would otherwise
/// silently do nothing.
std::string setup_observability(const FlagMap& flags, bool wants_report) {
    std::string trace_path;
    if (const auto it = flags.find("trace"); it != flags.end()) {
        if (it->second.empty())
            throw ContractError("--trace requires a non-empty output path");
        trace_path = it->second;
    } else if (const char* env = std::getenv("DCFT_TRACE");
               env != nullptr && env_value_truthy(env)) {
        trace_path = env;  // env twin carries the output path
    }

    // --report and --trace imply telemetry (the report embeds the counter
    // snapshot and timeline; the trace export publishes obs/trace/dropped).
    // When the user *explicitly* exported a falsy DCFT_TELEMETRY the two
    // requests contradict each other — refuse rather than silently
    // override one of them.
    const std::optional<bool> telemetry = env_flag_state("DCFT_TELEMETRY");
    if (telemetry.has_value() && !*telemetry) {
        if (wants_report)
            throw ContractError(
                "--report needs telemetry, but DCFT_TELEMETRY is explicitly "
                "falsy; unset DCFT_TELEMETRY or drop --report");
        if (!trace_path.empty())
            throw ContractError(
                "--trace (or DCFT_TRACE) needs telemetry, but "
                "DCFT_TELEMETRY is explicitly falsy; unset DCFT_TELEMETRY "
                "or drop the trace request");
    }
    if (wants_report || !trace_path.empty()) obs::set_enabled(true);
    if (!trace_path.empty()) obs::set_trace_enabled(true);

    if (const auto it = flags.find("progress"); it != flags.end()) {
        double secs = 1.0;
        if (!it->second.empty()) {
            char* end = nullptr;
            secs = std::strtod(it->second.c_str(), &end);
            if (end == it->second.c_str() || *end != '\0' || secs <= 0.0)
                throw ContractError(
                    "--progress interval must be a positive number of "
                    "seconds (got '" + it->second + "')");
        }
        obs::set_progress_interval(secs);
    }
    return trace_path;
}

/// Writes the Chrome-trace JSON collected during the run; no-op when
/// `trace_path` is empty. Returns the process exit code contribution.
int finish_trace(const std::string& trace_path) {
    if (trace_path.empty()) return 0;
    std::string error;
    if (!obs::write_chrome_trace(trace_path, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("trace written to %s\n", trace_path.c_str());
    return 0;
}

int cmd_verify(const std::string& name, int size, const FlagMap& flags) {
    const auto report_it = flags.find("report");
    const bool reporting = report_it != flags.end();
    const bool graded = flags.count("graded") != 0;
    const std::string trace_path = setup_observability(flags, reporting);
    obs::RunReport report(
        "dcft", "verify " + name +
                    (size > 0 ? " " + std::to_string(size) : std::string()) +
                    (graded ? " --graded" : ""));

    const apps::SystemInstance sys = apps::load_system(name, size);
    std::printf("%s: |space|=%llu, spec=%s, faults=%s\n", name.c_str(),
                static_cast<unsigned long long>(sys.space->num_states()),
                sys.spec.name().c_str(), sys.faults->name().c_str());
    std::printf("  %-14s %-10s %-11s %-8s\n", "variant", "fail-safe",
                "nonmasking", "masking");
    for (const auto& [variant, program] : sys.variants) {
        const ToleranceReport fs =
            check_failsafe(program, *sys.faults, sys.spec, sys.invariant);
        const ToleranceReport nm =
            check_nonmasking(program, *sys.faults, sys.spec, sys.invariant);
        const ToleranceReport mk = check_masking(program, *sys.faults,
                                                 sys.spec, sys.invariant);
        std::printf("  %-14s %-10s %-11s %-8s\n", variant.c_str(),
                    fs.ok() ? "yes" : "no", nm.ok() ? "yes" : "no",
                    mk.ok() ? "yes" : "no");
        if (!mk.ok())
            std::printf("      masking fails because: %s\n",
                        mk.reason().c_str());
        // Kernel-compilation coverage: which exploration tier this variant
        // actually runs on (batch sweep / compiled scalar / interpreter
        // fallbacks). Guard bitsets are not built for this — it is a
        // static scan of the compiled actions.
        const CompiledProgram cp(program, sys.faults.get());
        const BatchCoverage cov = batch_coverage(cp);
        std::printf(
            "      kernel: %zu/%zu actions fully compiled, %zu kCall "
            "fallback op%s — %s\n",
            cov.batchable_actions, cov.actions, cov.kcall_ops,
            cov.kcall_ops == 1 ? "" : "s",
            cov.batchable ? "batch sweep eligible" : "scalar path");
        std::optional<apps::GradedBlocks> blocks;
        if (graded) {
            blocks = apps::graded_blocks(sys, program);
            const auto& md = blocks->masking_distance;
            const auto& mc = blocks->monte_carlo;
            std::printf(
                "      graded: distance=%s (game: %llu nodes, %llu "
                "layers)\n",
                md.masking ? "inf" : std::to_string(md.distance).c_str(),
                static_cast<unsigned long long>(md.game_nodes),
                static_cast<unsigned long long>(md.game_layers));
            std::printf(
                "      monte-carlo (%llu runs, seed %llu, p=%.2f): "
                "violation rate %.2f, faults absorbed p50=%.0f p99=%.0f\n",
                static_cast<unsigned long long>(mc.runs),
                static_cast<unsigned long long>(mc.base_seed),
                mc.fault_probability, mc.violation_rate,
                mc.faults_absorbed.p50, mc.faults_absorbed.p99);
        }
        if (reporting) {
            auto add_graded_query = [&](obs::ReportQuery q) {
                if (blocks) {
                    q.masking_distance = blocks->masking_distance;
                    q.monte_carlo = blocks->monte_carlo;
                }
                report.add_query(std::move(q));
            };
            add_graded_query(
                apps::tolerance_query(name, variant, "failsafe", fs));
            add_graded_query(
                apps::tolerance_query(name, variant, "nonmasking", nm));
            add_graded_query(
                apps::tolerance_query(name, variant, "masking", mk));
            obs::ReportProgram rp;
            rp.name = name + "/" + variant;
            rp.system = name;
            rp.variant = variant;
            rp.actions = cov.actions;
            rp.fully_compiled = cov.fully_compiled;
            rp.structured_effects = cov.structured_effects;
            rp.batchable_actions = cov.batchable_actions;
            rp.kcall_ops = cov.kcall_ops;
            rp.batchable = cov.batchable;
            report.add_program(std::move(rp));
        }
    }
    obs::progress_stop();
    if (reporting) {
        std::string error;
        if (!report.write(report_it->second, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        std::printf("run report written to %s (%zu queries)\n",
                    report_it->second.c_str(), report.queries().size());
    }
    return finish_trace(trace_path);
}

int cmd_simulate(const std::string& name, int size, const FlagMap& flags) {
    if (flags.count("report")) {
        std::fprintf(stderr,
                     "error: --report is only supported by 'dcft verify'\n");
        return 2;
    }
    const std::string trace_path =
        setup_observability(flags, /*wants_report=*/false);
    const apps::SystemInstance sys = apps::load_system(name, size);
    auto flag = [&flags](const char* key, double fallback) {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : std::stod(it->second);
    };
    std::string variant = flags.count("variant")
                              ? flags.at("variant")
                              : sys.variants.begin()->first;
    if (!sys.variants.count(variant)) {
        std::fprintf(stderr, "no variant '%s' in %s\n", variant.c_str(),
                     name.c_str());
        return 1;
    }

    Experiment ex;
    const Program& program = sys.variants.at(variant);
    ex.program = &program;
    ex.initial = sys.initial;
    ex.runs = static_cast<std::size_t>(flag("runs", 200));
    ex.base_seed = static_cast<std::uint64_t>(flag("seed", 1));
    ex.options.max_steps = static_cast<std::size_t>(flag("steps", 1000));
    ex.faults = sys.faults.get();
    ex.fault_probability = flag("fault-p", 0.1);
    ex.max_faults = static_cast<std::size_t>(flag("max-faults", 3));
    ex.safety = sys.spec.safety();
    ex.corrector = sys.invariant;

    const BatchResult result = run_experiment(ex);
    std::printf("%s/%s: %zu runs, seed %llu, fault-p %.2f\n", name.c_str(),
                variant.c_str(), result.runs,
                static_cast<unsigned long long>(ex.base_seed),
                ex.fault_probability);
    std::printf("  steps/run          : mean %.1f, max %.0f\n",
                result.steps.mean(), result.steps.max());
    std::printf("  faults/run         : mean %.2f\n",
                result.fault_steps.mean());
    std::printf("  deadlocked runs    : %zu\n", result.deadlocked);
    std::printf("  safety violations  : %zu (program steps)\n",
                result.safety_violations);
    if (!result.availability.empty())
        std::printf("  invariant uptime   : mean %.3f\n",
                    result.availability.mean());
    if (!result.correction_latency.empty())
        std::printf("  recovery latency   : mean %.1f, p99 %.1f\n",
                    result.correction_latency.mean(),
                    result.correction_latency.percentile(0.99));
    obs::progress_stop();
    return finish_trace(trace_path);
}

const std::vector<FlagSpec> kClientFlags = {
    {"socket", true}, {"id", true}, {"graded", false}};

int cmd_client(int argc, char** argv) {
    // argv[2] is the op; verify additionally takes <system> [size].
    if (argc < 3) {
        std::fprintf(stderr,
                     "client requires an op: ping | list | stats | "
                     "shutdown | verify <system> [size]\n");
        return 2;
    }
    const std::string op = argv[2];
    std::string system;
    int size = 0;
    int arg = 3;
    if (op == "verify") {
        if (arg >= argc || argv[arg][0] == '-') {
            std::fprintf(stderr, "client verify requires a system name\n");
            return 2;
        }
        system = argv[arg++];
        if (arg < argc && argv[arg][0] != '-')
            size = std::atoi(argv[arg++]);
    } else if (op != "ping" && op != "list" && op != "stats" &&
               op != "shutdown") {
        std::fprintf(stderr, "unknown client op '%s'\n", op.c_str());
        return 2;
    }
    FlagMap flags;
    std::string error;
    if (!parse_flags(argc, argv, arg, kClientFlags, flags, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    const std::string socket_path = flags.count("socket")
                                        ? flags.at("socket")
                                        : service::default_socket_path();

    obs::JsonWriter w;
    w.begin_object();
    w.kv("op", op);
    if (flags.count("id")) w.kv("id", flags.at("id"));
    if (!system.empty()) {
        w.kv("system", system);
        if (size > 0) w.kv("size", size);
        if (flags.count("graded")) w.kv("graded", true);
    }
    w.end_object();

    const auto response = service::roundtrip(
        socket_path, service::finish_response_line(w), &error);
    if (!response.has_value()) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("%s\n", response->c_str());
    const auto doc = obs::parse_json(*response, &error);
    if (!doc.has_value()) {
        std::fprintf(stderr, "error: response is not valid JSON: %s\n",
                     error.c_str());
        return 1;
    }
    const auto* ok = doc->find("ok", obs::JsonValue::Kind::Bool);
    return ok != nullptr && ok->as_bool() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) {
            print_usage(stderr);
            return 2;
        }
        const std::string command = argv[1];
        if (command == "help" || command == "--help" || command == "-h") {
            print_usage(stdout);
            return 0;
        }
        if (command == "list") return cmd_list();
        if (command == "client") return cmd_client(argc, argv);

        const bool is_verify = command == "verify";
        const bool is_simulate = command == "simulate";
        if (!is_verify && !is_simulate) {
            std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
            print_usage(stderr);
            return 2;
        }
        if (argc < 3) {
            std::fprintf(stderr, "%s requires a system name\n",
                         command.c_str());
            return 2;
        }
        const std::string system = argv[2];
        int size = 0;
        int arg = 3;
        if (arg < argc && argv[arg][0] != '-') size = std::atoi(argv[arg++]);
        FlagMap flags;
        std::string error;
        if (!parse_flags(argc, argv, arg,
                         is_verify ? kVerifyFlags : kSimulateFlags, flags,
                         &error)) {
            std::fprintf(stderr, "error: %s\n\n", error.c_str());
            print_usage(stderr);
            return 2;
        }

        return is_verify ? cmd_verify(system, size, flags)
                         : cmd_simulate(system, size, flags);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
