// dcft — command-line driver over the built-in example systems.
//
//   dcft list
//       Show the available systems and their program variants.
//   dcft verify <system> [size] [--report FILE] [--trace FILE]
//                                [--progress[=SECS]]
//       Run the fail-safe / nonmasking / masking checks for every variant
//       of the system and print the verdict grid. With --report, enable
//       telemetry and write a run report (schema dcft.report, see
//       obs/run_report.hpp) with per-query verdicts, witness traces, the
//       per-level exploration timeline, the phase tree, and all counters.
//       With --trace, record begin/end/instant events and export Chrome
//       trace-event JSON (chrome://tracing, Perfetto). With --progress,
//       print a live heartbeat to stderr while exploring.
//   dcft simulate <system> [size] [--variant NAME] [--runs N]
//                 [--fault-p P] [--max-faults K] [--steps N] [--seed S]
//                 [--trace FILE] [--progress[=SECS]]
//       Batch-simulate a variant under fault injection and print
//       aggregate statistics.
//
// Observability flags accept `--flag value` and `--flag=value`;
// --progress may also appear bare (1s interval). Each has an environment
// twin (DCFT_TRACE=FILE, DCFT_PROGRESS=SECS, DCFT_TELEMETRY=1) so the
// same knobs work on binaries launched by scripts or ctest. Contradictory
// requests fail fast instead of silently doing nothing: --report/--trace
// with DCFT_TELEMETRY explicitly falsy, or --progress=0, are errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/alternating_bit.hpp"
#include "apps/barrier.hpp"
#include "apps/byzantine.hpp"
#include "apps/distributed_reset.hpp"
#include "apps/leader_election.hpp"
#include "apps/memory_access.hpp"
#include "apps/spanning_tree.hpp"
#include "apps/termination_detection.hpp"
#include "apps/tmr.hpp"
#include "apps/token_ring.hpp"
#include "common/env.hpp"
#include "obs/progress.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/experiment.hpp"
#include "verify/batch_kernel.hpp"
#include "verify/invariant.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

namespace {

/// One loaded system: program variants plus everything needed to verify
/// and simulate them.
struct SystemInstance {
    std::shared_ptr<const StateSpace> space;
    std::map<std::string, Program> variants;
    std::unique_ptr<FaultClass> faults;
    ProblemSpec spec;
    Predicate invariant;
    StateIndex initial = 0;
};

SystemInstance load(const std::string& name, int size) {
    SystemInstance out;
    if (name == "memory") {
        auto sys = apps::make_memory_access(size > 0 ? size : 3, 1);
        out.space = sys.space;
        out.variants.emplace("intolerant", sys.intolerant);
        out.variants.emplace("failsafe", sys.failsafe);
        out.variants.emplace("nonmasking", sys.nonmasking);
        out.variants.emplace("masking", sys.masking);
        out.faults = std::make_unique<FaultClass>(sys.page_fault);
        out.spec = sys.spec;
        out.invariant = sys.S;
        out.initial = sys.initial_state();
    } else if (name == "tmr") {
        auto sys = apps::make_tmr(size > 0 ? size : 2);
        out.space = sys.space;
        out.variants.emplace("intolerant", sys.intolerant);
        out.variants.emplace("failsafe", sys.failsafe);
        out.variants.emplace("masking", sys.masking);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_one_input);
        out.spec = sys.spec;
        out.invariant = sys.invariant;
        out.initial = sys.initial_state(0);
    } else if (name == "byzantine") {
        auto sys = apps::make_byzantine(size > 0 ? size : 4, 1);
        out.space = sys.space;
        out.variants.emplace("intolerant", sys.intolerant);
        out.variants.emplace("failsafe", sys.failsafe);
        out.variants.emplace("masking", sys.masking);
        out.faults = std::make_unique<FaultClass>(sys.byzantine_fault);
        out.spec = sys.spec;
        out.initial = sys.initial_state(1);
        out.invariant = reachable_invariant(
            out.variants.at("masking"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else if (name == "token-ring") {
        const int n = size > 0 ? size : 4;
        auto sys = apps::make_token_ring(n, n);
        out.space = sys.space;
        out.variants.emplace("ring", sys.ring);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_any);
        out.spec = sys.spec;
        out.invariant = sys.legitimate;
        out.initial = sys.initial_state();
    } else if (name == "spanning-tree") {
        auto sys =
            apps::make_spanning_tree(apps::path_graph(size > 0 ? size : 4));
        out.space = sys.space;
        out.variants.emplace("tree", sys.program);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_any);
        out.spec = sys.spec;
        out.invariant = sys.legitimate;
        out.initial = sys.legitimate_state();
    } else if (name == "election") {
        const int n = size > 0 ? size : 4;
        std::vector<int> parent(static_cast<std::size_t>(n), 0);
        for (int i = 1; i < n; ++i)
            parent[static_cast<std::size_t>(i)] = (i - 1) / 2;
        auto sys = apps::make_leader_election(parent);
        out.space = sys.space;
        out.variants.emplace("election", sys.program);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_any);
        out.spec = sys.spec;
        out.invariant = sys.legitimate;
        out.initial = sys.legitimate_state();
    } else if (name == "termination") {
        auto sys = apps::make_termination_detection(size > 0 ? size : 3);
        out.space = sys.space;
        out.variants.emplace("probe", sys.system);
        out.faults = std::make_unique<FaultClass>(sys.spurious_activation);
        // Spec: the detector claim as a problem specification.
        LivenessSpec live;
        live.add(LeadsTo{sys.all_passive, sys.done});
        out.spec = ProblemSpec(
            "SPEC_termination",
            SafetySpec::never((sys.done && !sys.all_passive)
                                  .renamed("lying-done")),
            std::move(live));
        out.invariant = reachable_invariant(sys.system, sys.initial);
        out.initial = sys.initial_state(
            std::vector<bool>(static_cast<std::size_t>(sys.n), true));
    } else if (name == "barrier") {
        auto sys = apps::make_barrier(size > 0 ? size : 4);
        out.space = sys.space;
        out.variants.emplace("trusting", sys.trusting);
        out.variants.emplace("rechecking", sys.rechecking);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_witness);
        out.spec = sys.spec;
        out.initial = sys.initial_state();
        out.invariant = reachable_invariant(
            out.variants.at("rechecking"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else if (name == "abp") {
        auto sys = apps::make_alternating_bit(size > 0 ? size : 2, 4);
        out.space = sys.space;
        out.variants.emplace("protocol", sys.protocol);
        out.faults = std::make_unique<FaultClass>(sys.loss);
        out.spec = sys.spec;
        out.initial = sys.initial_state();
        out.invariant = reachable_invariant(
            out.variants.at("protocol"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else if (name == "reset") {
        const int n = size > 0 ? size : 4;
        std::vector<int> parent(static_cast<std::size_t>(n), 0);
        for (int i = 1; i < n; ++i)
            parent[static_cast<std::size_t>(i)] = (i - 1) / 2;
        auto sys = apps::make_distributed_reset(parent);
        out.space = sys.space;
        out.variants.emplace("reset", sys.system);
        out.faults = std::make_unique<FaultClass>(sys.corrupt_sessions);
        out.spec = sys.spec;
        out.initial = sys.initial_state();
        out.invariant = reachable_invariant(
            out.variants.at("reset"),
            Predicate("init",
                      [init = out.initial](const StateSpace&, StateIndex s) {
                          return s == init;
                      }));
    } else {
        throw ContractError("unknown system: " + name);
    }
    return out;
}

const char* kSystems[] = {"memory",   "tmr",      "byzantine",
                          "token-ring", "spanning-tree", "election",
                          "termination", "barrier", "reset", "abp"};

int cmd_list() {
    std::printf("built-in systems (dcft verify <system> [size]):\n");
    for (const char* name : kSystems) {
        const SystemInstance sys = load(name, 0);
        std::printf("  %-14s states=%-10llu variants:", name,
                    static_cast<unsigned long long>(
                        sys.space->num_states()));
        for (const auto& [variant, program] : sys.variants) {
            std::printf(" %s(%zu actions)", variant.c_str(),
                        program.num_actions());
        }
        std::printf("\n");
    }
    return 0;
}

/// One ReportQuery from a tolerance verdict. Failing queries export the
/// counterexample of the first failing obligation; passing queries export
/// the exploration witness (BFS path to the deepest fault-span state).
obs::ReportQuery make_query(const std::string& system,
                            const std::string& variant,
                            const std::string& grade,
                            const ToleranceReport& report) {
    obs::ReportQuery q;
    q.name = system + "/" + variant + "/" + grade;
    q.system = system;
    q.variant = variant;
    q.grade = grade;
    q.ok = report.ok();
    q.reason = report.reason();
    q.invariant_size = report.invariant_size;
    q.span_size = report.span_size;
    if (!report.ok() && !report.counterexample().empty()) {
        q.witness_kind = "counterexample";
        q.witness = report.counterexample();
    } else if (report.ok() && !report.deepest_trace.empty()) {
        q.witness_kind = "exploration";
        q.witness = report.deepest_trace;
    }
    return q;
}

// ---------------------------------------------------------------------------
// Flag parsing

/// Normalized flags: `--flag`, `--flag=value`, and `--flag value` all land
/// here; value-less flags map to "".
using FlagMap = std::map<std::string, std::string>;

struct FlagSpec {
    const char* name;
    bool value_required;  ///< must carry a value (= form or next argv)
};

const std::vector<FlagSpec> kVerifyFlags = {
    {"report", true}, {"trace", true}, {"progress", false}};

// --report is accepted here only to produce a targeted error in
// cmd_simulate; run reports are a verify concept.
const std::vector<FlagSpec> kSimulateFlags = {
    {"variant", true},    {"runs", true},  {"steps", true},
    {"seed", true},       {"fault-p", true}, {"max-faults", true},
    {"report", true},     {"trace", true}, {"progress", false}};

bool parse_flags(int argc, char** argv, int arg,
                 const std::vector<FlagSpec>& specs, FlagMap& out,
                 std::string* error) {
    for (; arg < argc; ++arg) {
        std::string token = argv[arg];
        if (token.rfind("--", 0) != 0) {
            *error = "unexpected argument '" + token + "'";
            return false;
        }
        std::string key = token.substr(2);
        std::optional<std::string> value;
        if (const std::size_t eq = key.find('='); eq != std::string::npos) {
            value = key.substr(eq + 1);
            key = key.substr(0, eq);
        }
        const FlagSpec* spec = nullptr;
        for (const FlagSpec& s : specs)
            if (key == s.name) {
                spec = &s;
                break;
            }
        if (spec == nullptr) {
            *error = "unknown flag --" + key;
            return false;
        }
        if (!value.has_value() && spec->value_required) {
            if (arg + 1 >= argc) {
                *error = "--" + key + " requires a value (--" + key +
                         "=VALUE or --" + key + " VALUE)";
                return false;
            }
            value = argv[++arg];
        }
        out[key] = value.value_or("");
    }
    return true;
}

void print_usage(std::FILE* out) {
    std::fputs(
        "usage: dcft <command> [args]\n"
        "\n"
        "commands:\n"
        "  list\n"
        "      Show the built-in systems and their program variants.\n"
        "  verify <system> [size] [--report FILE] [--trace FILE]\n"
        "         [--progress[=SECS]]\n"
        "      Run the fail-safe / nonmasking / masking checks for every\n"
        "      variant and print the verdict grid.\n"
        "  simulate <system> [size] [--variant NAME] [--runs N] [--steps N]\n"
        "           [--seed S] [--fault-p P] [--max-faults K]\n"
        "           [--trace FILE] [--progress[=SECS]]\n"
        "      Batch-simulate a variant under fault injection.\n"
        "\n"
        "observability flags (each has an environment twin):\n"
        "  --report FILE      write a dcft.report run report: per-query\n"
        "                     verdicts, witnesses, the per-level exploration\n"
        "                     timeline, and telemetry. Implies telemetry.\n"
        "                     env twin: DCFT_TELEMETRY=1 (telemetry only)\n"
        "  --trace FILE       record begin/end/instant events and write\n"
        "                     Chrome trace-event JSON (chrome://tracing or\n"
        "                     Perfetto). Implies telemetry.\n"
        "                     env twin: DCFT_TRACE=FILE\n"
        "  --progress[=SECS]  print a live heartbeat to stderr every SECS\n"
        "                     seconds (default 1).\n"
        "                     env twin: DCFT_PROGRESS=SECS\n"
        "\n"
        "Contradictions fail fast instead of silently doing nothing:\n"
        "--report/--trace with DCFT_TELEMETRY explicitly falsy, and\n"
        "--progress=0, are errors.\n",
        out);
}

// ---------------------------------------------------------------------------
// Observability setup

/// Resolves --trace/--progress against their environment twins and arms
/// the subsystems. Returns the trace output path ("" when tracing is
/// off). Throws ContractError on combinations that would otherwise
/// silently do nothing.
std::string setup_observability(const FlagMap& flags, bool wants_report) {
    std::string trace_path;
    if (const auto it = flags.find("trace"); it != flags.end()) {
        if (it->second.empty())
            throw ContractError("--trace requires a non-empty output path");
        trace_path = it->second;
    } else if (const char* env = std::getenv("DCFT_TRACE");
               env != nullptr && env_value_truthy(env)) {
        trace_path = env;  // env twin carries the output path
    }

    // --report and --trace imply telemetry (the report embeds the counter
    // snapshot and timeline; the trace export publishes obs/trace/dropped).
    // When the user *explicitly* exported a falsy DCFT_TELEMETRY the two
    // requests contradict each other — refuse rather than silently
    // override one of them.
    const std::optional<bool> telemetry = env_flag_state("DCFT_TELEMETRY");
    if (telemetry.has_value() && !*telemetry) {
        if (wants_report)
            throw ContractError(
                "--report needs telemetry, but DCFT_TELEMETRY is explicitly "
                "falsy; unset DCFT_TELEMETRY or drop --report");
        if (!trace_path.empty())
            throw ContractError(
                "--trace (or DCFT_TRACE) needs telemetry, but "
                "DCFT_TELEMETRY is explicitly falsy; unset DCFT_TELEMETRY "
                "or drop the trace request");
    }
    if (wants_report || !trace_path.empty()) obs::set_enabled(true);
    if (!trace_path.empty()) obs::set_trace_enabled(true);

    if (const auto it = flags.find("progress"); it != flags.end()) {
        double secs = 1.0;
        if (!it->second.empty()) {
            char* end = nullptr;
            secs = std::strtod(it->second.c_str(), &end);
            if (end == it->second.c_str() || *end != '\0' || secs <= 0.0)
                throw ContractError(
                    "--progress interval must be a positive number of "
                    "seconds (got '" + it->second + "')");
        }
        obs::set_progress_interval(secs);
    }
    return trace_path;
}

/// Writes the Chrome-trace JSON collected during the run; no-op when
/// `trace_path` is empty. Returns the process exit code contribution.
int finish_trace(const std::string& trace_path) {
    if (trace_path.empty()) return 0;
    std::string error;
    if (!obs::write_chrome_trace(trace_path, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("trace written to %s\n", trace_path.c_str());
    return 0;
}

int cmd_verify(const std::string& name, int size, const FlagMap& flags) {
    const auto report_it = flags.find("report");
    const bool reporting = report_it != flags.end();
    const std::string trace_path = setup_observability(flags, reporting);
    obs::RunReport report(
        "dcft", "verify " + name + (size > 0 ? " " + std::to_string(size)
                                             : std::string()));

    const SystemInstance sys = load(name, size);
    std::printf("%s: |space|=%llu, spec=%s, faults=%s\n", name.c_str(),
                static_cast<unsigned long long>(sys.space->num_states()),
                sys.spec.name().c_str(), sys.faults->name().c_str());
    std::printf("  %-14s %-10s %-11s %-8s\n", "variant", "fail-safe",
                "nonmasking", "masking");
    for (const auto& [variant, program] : sys.variants) {
        const ToleranceReport fs =
            check_failsafe(program, *sys.faults, sys.spec, sys.invariant);
        const ToleranceReport nm =
            check_nonmasking(program, *sys.faults, sys.spec, sys.invariant);
        const ToleranceReport mk = check_masking(program, *sys.faults,
                                                 sys.spec, sys.invariant);
        std::printf("  %-14s %-10s %-11s %-8s\n", variant.c_str(),
                    fs.ok() ? "yes" : "no", nm.ok() ? "yes" : "no",
                    mk.ok() ? "yes" : "no");
        if (!mk.ok())
            std::printf("      masking fails because: %s\n",
                        mk.reason().c_str());
        // Kernel-compilation coverage: which exploration tier this variant
        // actually runs on (batch sweep / compiled scalar / interpreter
        // fallbacks). Guard bitsets are not built for this — it is a
        // static scan of the compiled actions.
        const CompiledProgram cp(program, sys.faults.get());
        const BatchCoverage cov = batch_coverage(cp);
        std::printf(
            "      kernel: %zu/%zu actions fully compiled, %zu kCall "
            "fallback op%s — %s\n",
            cov.batchable_actions, cov.actions, cov.kcall_ops,
            cov.kcall_ops == 1 ? "" : "s",
            cov.batchable ? "batch sweep eligible" : "scalar path");
        if (reporting) {
            report.add_query(make_query(name, variant, "failsafe", fs));
            report.add_query(make_query(name, variant, "nonmasking", nm));
            report.add_query(make_query(name, variant, "masking", mk));
            obs::ReportProgram rp;
            rp.name = name + "/" + variant;
            rp.system = name;
            rp.variant = variant;
            rp.actions = cov.actions;
            rp.fully_compiled = cov.fully_compiled;
            rp.structured_effects = cov.structured_effects;
            rp.batchable_actions = cov.batchable_actions;
            rp.kcall_ops = cov.kcall_ops;
            rp.batchable = cov.batchable;
            report.add_program(std::move(rp));
        }
    }
    obs::progress_stop();
    if (reporting) {
        std::string error;
        if (!report.write(report_it->second, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        std::printf("run report written to %s (%zu queries)\n",
                    report_it->second.c_str(), report.queries().size());
    }
    return finish_trace(trace_path);
}

int cmd_simulate(const std::string& name, int size, const FlagMap& flags) {
    if (flags.count("report")) {
        std::fprintf(stderr,
                     "error: --report is only supported by 'dcft verify'\n");
        return 2;
    }
    const std::string trace_path =
        setup_observability(flags, /*wants_report=*/false);
    const SystemInstance sys = load(name, size);
    auto flag = [&flags](const char* key, double fallback) {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : std::stod(it->second);
    };
    std::string variant = flags.count("variant")
                              ? flags.at("variant")
                              : sys.variants.begin()->first;
    if (!sys.variants.count(variant)) {
        std::fprintf(stderr, "no variant '%s' in %s\n", variant.c_str(),
                     name.c_str());
        return 1;
    }

    Experiment ex;
    const Program& program = sys.variants.at(variant);
    ex.program = &program;
    ex.initial = sys.initial;
    ex.runs = static_cast<std::size_t>(flag("runs", 200));
    ex.base_seed = static_cast<std::uint64_t>(flag("seed", 1));
    ex.options.max_steps = static_cast<std::size_t>(flag("steps", 1000));
    ex.faults = sys.faults.get();
    ex.fault_probability = flag("fault-p", 0.1);
    ex.max_faults = static_cast<std::size_t>(flag("max-faults", 3));
    ex.safety = sys.spec.safety();
    ex.corrector = sys.invariant;

    const BatchResult result = run_experiment(ex);
    std::printf("%s/%s: %zu runs, seed %llu, fault-p %.2f\n", name.c_str(),
                variant.c_str(), result.runs,
                static_cast<unsigned long long>(ex.base_seed),
                ex.fault_probability);
    std::printf("  steps/run          : mean %.1f, max %.0f\n",
                result.steps.mean(), result.steps.max());
    std::printf("  faults/run         : mean %.2f\n",
                result.fault_steps.mean());
    std::printf("  deadlocked runs    : %zu\n", result.deadlocked);
    std::printf("  safety violations  : %zu (program steps)\n",
                result.safety_violations);
    if (!result.availability.empty())
        std::printf("  invariant uptime   : mean %.3f\n",
                    result.availability.mean());
    if (!result.correction_latency.empty())
        std::printf("  recovery latency   : mean %.1f, p99 %.1f\n",
                    result.correction_latency.mean(),
                    result.correction_latency.percentile(0.99));
    obs::progress_stop();
    return finish_trace(trace_path);
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) {
            print_usage(stderr);
            return 2;
        }
        const std::string command = argv[1];
        if (command == "help" || command == "--help" || command == "-h") {
            print_usage(stdout);
            return 0;
        }
        if (command == "list") return cmd_list();

        const bool is_verify = command == "verify";
        const bool is_simulate = command == "simulate";
        if (!is_verify && !is_simulate) {
            std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
            print_usage(stderr);
            return 2;
        }
        if (argc < 3) {
            std::fprintf(stderr, "%s requires a system name\n",
                         command.c_str());
            return 2;
        }
        const std::string system = argv[2];
        int size = 0;
        int arg = 3;
        if (arg < argc && argv[arg][0] != '-') size = std::atoi(argv[arg++]);
        FlagMap flags;
        std::string error;
        if (!parse_flags(argc, argv, arg,
                         is_verify ? kVerifyFlags : kSimulateFlags, flags,
                         &error)) {
            std::fprintf(stderr, "error: %s\n\n", error.c_str());
            print_usage(stderr);
            return 2;
        }

        return is_verify ? cmd_verify(system, size, flags)
                         : cmd_simulate(system, size, flags);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
