// graded_smoke — end-to-end check of the graded-tolerance pipeline.
//
// Two phases, both deterministic and small enough for every ctest run:
//
//  1. Consistency: for every catalog system (small sizes) and every
//     program variant, the masking-distance game must agree with the
//     explicit checker — distance inf exactly when check_failsafe's
//     in-presence safety obligation holds, and a finite distance comes
//     with a witness carrying exactly `distance` fault steps.
//
//  2. Determinism: the catalog-standard graded blocks (game + 200-run
//     Monte Carlo estimate, fixed base seed) serialized through the
//     dcft.report query writer must be byte-identical across Monte Carlo
//     thread counts 1/2/8 — the merge is slice-ordered, so pooled
//     samples (and float summation order) never depend on scheduling.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "apps/catalog.hpp"
#include "obs/json.hpp"
#include "obs/run_report.hpp"
#include "runtime/estimate.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/masking_distance.hpp"
#include "verify/tolerance_checker.hpp"

namespace {

int failures = 0;

void expect(bool ok, const std::string& what) {
    if (ok) return;
    ++failures;
    std::fprintf(stderr, "graded_smoke: FAIL: %s\n", what.c_str());
}

std::string fmt_distance(const dcft::MaskingDistanceResult& r) {
    return r.masking ? "inf" : std::to_string(r.distance);
}

/// Phase 1: game vs explicit checker on the whole catalog.
void check_consistency() {
    using dcft::apps::SystemInstance;
    // Small sizes for the systems whose default graphs are larger; 0
    // keeps the catalog default (already small) everywhere else.
    const std::vector<std::pair<std::string, int>> sizes = {
        {"token-ring", 4}, {"byzantine", 3}, {"spanning-tree", 3},
        {"election", 3},   {"termination", 3}, {"reset", 3}};
    auto size_of = [&](const std::string& name) {
        for (const auto& [n, s] : sizes)
            if (n == name) return s;
        return 0;
    };
    for (const std::string& name : dcft::apps::catalog_names()) {
        const SystemInstance sys = dcft::apps::load_system(name,
                                                           size_of(name));
        for (const auto& [variant, program] : sys.variants) {
            const dcft::MaskingDistanceResult game = dcft::masking_distance(
                program, *sys.faults, sys.spec, sys.invariant);
            const dcft::ToleranceReport fs = dcft::check_failsafe(
                program, *sys.faults, sys.spec, sys.invariant);
            const std::string where = name + "/" + variant;
            expect(game.masking == fs.in_presence.ok,
                   where + ": game says distance " + fmt_distance(game) +
                       " but check_failsafe in-presence ok=" +
                       (fs.in_presence.ok ? "true" : "false") + " (" +
                       fs.in_presence.reason + ")");
            if (!game.masking) {
                expect(game.witness_faults() == game.distance,
                       where + ": witness carries " +
                           std::to_string(game.witness_faults()) +
                           " fault steps for distance " +
                           std::to_string(game.distance));
                expect(!game.witness.empty(),
                       where + ": finite distance without a witness");
            } else {
                expect(game.witness.empty(),
                       where + ": masking verdict with a witness trace");
            }
            std::printf("graded_smoke: %-28s distance %s\n", where.c_str(),
                        fmt_distance(game).c_str());
        }
    }
}

/// Serializes one variant's graded blocks through the dcft.report query
/// writer (the exact bytes both frontends emit).
std::string graded_bytes(const dcft::apps::SystemInstance& sys,
                         const dcft::Program& variant,
                         const dcft::ToleranceEstimateOptions& options) {
    const dcft::apps::GradedBlocks blocks =
        dcft::apps::graded_blocks(sys, variant, options);
    dcft::obs::ReportQuery q;
    q.name = "graded_smoke";
    q.masking_distance = blocks.masking_distance;
    q.monte_carlo = blocks.monte_carlo;
    dcft::obs::JsonWriter w;
    dcft::obs::write_query(w, q);
    return w.str();
}

/// Phase 2: 200-run fixed-seed estimate, byte-stable across MC threads.
void check_determinism() {
    const dcft::apps::SystemInstance sys =
        dcft::apps::load_system("memory", 0);
    dcft::ToleranceEstimateOptions options;
    options.runs = 200;
    options.base_seed = 7;
    for (const auto& [variant, program] : sys.variants) {
        options.threads = 1;
        const std::string base = graded_bytes(sys, program, options);
        for (const unsigned threads : {2u, 8u}) {
            options.threads = threads;
            const std::string other = graded_bytes(sys, program, options);
            expect(other == base,
                   "memory/" + variant + ": graded blocks differ between "
                   "1 and " + std::to_string(threads) + " MC threads");
        }
        std::printf("graded_smoke: memory/%-10s byte-stable across "
                    "MC threads 1/2/8 (%zu bytes)\n",
                    variant.c_str(), base.size());
    }
}

}  // namespace

int main() {
    check_consistency();
    check_determinism();
    dcft::ExplorationCache::global().clear();
    if (failures != 0) {
        std::fprintf(stderr, "graded_smoke: %d failure(s)\n", failures);
        return 1;
    }
    std::printf("graded_smoke: all checks passed\n");
    return 0;
}
