// dcftd — long-running verification daemon over a unix socket.
//
//   dcftd [--socket PATH] [--workers N] [--telemetry]
//
// Listens on PATH (default: $DCFT_SOCKET, else /tmp/dcftd.sock) for
// newline-delimited JSON queries (see src/service/protocol.hpp) and
// answers them out of one warm process: the exploration cache, the batch
// kernels' compiled programs, and — when DCFT_GRAPH_STORE is set — the
// persistent mmap graph store all stay hot across queries, so a repeat
// verify costs a scheduler lookup instead of a full exploration.
// Concurrent identical queries are coalesced into one execution
// (src/service/scheduler.hpp).
//
// Query it with `dcft client <op> ...`, or any tool that can speak
// line-JSON over a unix socket (socat, nc -U). Stop it with SIGINT /
// SIGTERM or a {"op":"shutdown"} request; either way the daemon finishes
// in-flight queries, closes connections, and removes the socket file.
//
// --telemetry turns the obs counters on at startup (equivalent to
// DCFT_TELEMETRY=1), so "stats" responses carry live counters — including
// verify/explorations and verify/graph_store/*, the numbers the service
// smoke asserts coalescing with.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/telemetry.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

int main(int argc, char** argv) {
    dcft::service::ServerOptions options;
    options.socket_path = dcft::service::default_socket_path();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            options.socket_path = argv[++i];
        } else if (arg == "--workers" && i + 1 < argc) {
            options.workers =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--telemetry") {
            dcft::obs::set_enabled(true);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: dcftd [--socket PATH] [--workers N] [--telemetry]\n"
                "\n"
                "Verification daemon: answers newline-delimited JSON\n"
                "queries (ping/list/verify/stats/shutdown) on a unix\n"
                "socket from one warm process. Defaults: socket\n"
                "$DCFT_SOCKET or /tmp/dcftd.sock. See `dcft client`.\n");
            return 0;
        } else {
            std::fprintf(stderr, "dcftd: unknown argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // Signals are handled on a dedicated thread via sigwait — no
    // async-signal-safety worries — so SIGINT/SIGTERM run the same
    // orderly teardown as a {"op":"shutdown"} request.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    dcft::service::Server server(options);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "dcftd: %s\n", error.c_str());
        return 1;
    }
    std::fprintf(stderr, "dcftd: listening on %s\n",
                 server.socket_path().c_str());

    std::atomic<bool> exiting{false};
    std::thread signal_thread([&signals, &server, &exiting] {
        int sig = 0;
        sigwait(&signals, &sig);
        if (!exiting.load())
            std::fprintf(stderr, "dcftd: caught %s, shutting down\n",
                         strsignal(sig));
        server.shutdown();
    });

    server.wait();
    // Unblock the signal thread if shutdown came over the wire instead.
    exiting.store(true);
    pthread_kill(signal_thread.native_handle(), SIGTERM);
    signal_thread.join();
    std::fprintf(stderr, "dcftd: stopped\n");
    return 0;
}
