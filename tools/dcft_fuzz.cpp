// dcft_fuzz: differential fuzzing driver for the verifier stack.
//
//   dcft_fuzz [--seed N] [--programs N] [--states N] [--threads N]
//             [--corpus-dir DIR] [--no-shrink] [--time-budget SECONDS]
//             [--json-out FILE]
//   dcft_fuzz --smoke [--json-out FILE]
//   dcft_fuzz --replay PATH [--threads N]
//   dcft_fuzz --print-seed N [--states N]
//
// Default mode runs a campaign: for each derived program seed, generate a
// random guarded-command system, run the full differential oracle matrix
// (reference vs CSR exploration, 1 vs N threads, compiled vs interpreted
// kernels, cache vs bypass, optimized vs reference verdict pipelines,
// simulator traces vs explored graphs, witness replay, offline trace
// checking), and on divergence minimize the program with the
// delta-debugging shrinker and write the reproducer into --corpus-dir.
// Exit status 1 when any divergence was found.
//
// --smoke is the ctest configuration: a fixed seed, a small state budget,
// and a ~25 s wall-clock cap, so the full oracle matrix runs on every
// `ctest` invocation without dominating it.
//
// --replay re-runs the oracles on one corpus file or every *.json in a
// directory (exit 1 on any failure) — the corpus regression gate.
//
// --print-seed prints the generated spec JSON for one seed, which is how
// campaign findings are reproduced and corpus seeds are authored.
//
// --json-out writes a machine-readable summary in the shared dcft.report
// envelope (kind "fuzz"), including the telemetry counter snapshot.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fuzz/campaign.hpp"
#include "fuzz/spec_json.hpp"
#include "obs/run_report.hpp"
#include "obs/telemetry.hpp"

namespace {

using namespace dcft;

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--programs N] [--states N] [--threads N]\n"
        "          [--corpus-dir DIR] [--no-shrink] [--time-budget SEC]\n"
        "          [--json-out FILE] [--smoke]\n"
        "       %s --replay PATH [--threads N]\n"
        "       %s --print-seed N [--states N]\n",
        argv0, argv0, argv0);
    return 2;
}

/// Reconstructs the command line for the report envelope.
std::string command_line(int argc, char** argv) {
    std::string cmd;
    for (int i = 0; i < argc; ++i) {
        if (i > 0) cmd += ' ';
        cmd += argv[i];
    }
    return cmd;
}

bool write_json_report(const std::string& path, const std::string& command,
                       const fuzz::CampaignResult& result,
                       const fuzz::CampaignConfig& config) {
    obs::JsonWriter w;
    obs::begin_envelope(w, "fuzz", "dcft_fuzz", command);
    w.kv("campaign_seed", config.seed);
    w.kv("programs_requested", static_cast<std::uint64_t>(config.programs));
    w.kv("programs_run", static_cast<std::uint64_t>(result.programs_run));
    w.kv("elapsed_seconds", result.elapsed_seconds);
    w.kv("time_exhausted", result.time_exhausted);
    w.key("findings").begin_array();
    for (const fuzz::Finding& f : result.findings) {
        w.begin_object();
        w.kv("program_seed", f.program_seed);
        w.kv("index", static_cast<std::uint64_t>(f.index));
        w.kv("file", f.file);
        w.kv("minimized", fuzz::describe(f.minimized));
        w.key("divergences").begin_array();
        for (const fuzz::Divergence& d : f.divergences) {
            w.begin_object();
            w.kv("oracle", d.oracle);
            w.kv("detail", d.detail);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    obs::write_telemetry(w);
    w.end_object();

    std::ofstream out(path);
    if (!out) return false;
    out << w.str() << "\n";
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    fuzz::CampaignConfig config;
    config.programs = 200;
    std::string json_out;
    std::string replay_path;
    bool smoke = false;
    bool print_seed = false;
    std::uint64_t print_seed_value = 0;

    auto next_u64 = [&](int& i, std::uint64_t& out) {
        if (i + 1 >= argc) return false;
        out = std::strtoull(argv[++i], nullptr, 10);
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        std::uint64_t v = 0;
        if (std::strcmp(arg, "--seed") == 0 && next_u64(i, v)) {
            config.seed = v;
        } else if (std::strcmp(arg, "--programs") == 0 && next_u64(i, v)) {
            config.programs = static_cast<std::size_t>(v);
        } else if (std::strcmp(arg, "--states") == 0 && next_u64(i, v)) {
            config.generator.max_states = v;
        } else if (std::strcmp(arg, "--threads") == 0 && next_u64(i, v)) {
            config.oracle.threads = static_cast<unsigned>(v);
        } else if (std::strcmp(arg, "--time-budget") == 0 && next_u64(i, v)) {
            config.time_budget_seconds = static_cast<double>(v);
        } else if (std::strcmp(arg, "--corpus-dir") == 0 && i + 1 < argc) {
            config.corpus_dir = argv[++i];
        } else if (std::strcmp(arg, "--json-out") == 0 && i + 1 < argc) {
            json_out = argv[++i];
        } else if (std::strcmp(arg, "--replay") == 0 && i + 1 < argc) {
            replay_path = argv[++i];
        } else if (std::strcmp(arg, "--no-shrink") == 0) {
            config.shrink = false;
        } else if (std::strcmp(arg, "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(arg, "--print-seed") == 0 && next_u64(i, v)) {
            print_seed = true;
            print_seed_value = v;
        } else {
            return usage(argv[0]);
        }
    }

    if (print_seed) {
        const fuzz::ProgramSpec spec =
            fuzz::generate_spec(print_seed_value, config.generator);
        std::printf("%s\n", fuzz::to_json(spec).c_str());
        return 0;
    }

    if (!replay_path.empty()) {
        const fuzz::ReplayResult result =
            fuzz::replay_corpus(replay_path, config.oracle);
        std::printf("replayed %zu corpus file%s\n", result.files,
                    result.files == 1 ? "" : "s");
        for (const fuzz::ReplayFailure& f : result.failures)
            std::fprintf(stderr, "FAIL %s: %s\n", f.file.c_str(),
                         f.detail.c_str());
        if (!result.ok()) {
            std::fprintf(stderr, "%zu failure%s\n", result.failures.size(),
                         result.failures.size() == 1 ? "" : "s");
            return 1;
        }
        return 0;
    }

    if (smoke) {
        // Fixed, fast ctest configuration: small spaces, bounded wall
        // clock, deterministic seed.
        config.seed = 1;
        config.programs = 40;
        config.generator.max_states = 512;
        config.time_budget_seconds = 25;
    }

    const fuzz::CampaignResult result = fuzz::run_campaign(config);
    std::printf("campaign seed %llu: %zu/%zu programs in %.1fs%s, %zu "
                "divergent\n",
                static_cast<unsigned long long>(config.seed),
                result.programs_run, config.programs, result.elapsed_seconds,
                result.time_exhausted ? " (budget)" : "",
                result.findings.size());
    for (const fuzz::Finding& f : result.findings) {
        std::fprintf(stderr, "DIVERGENCE seed=%llu index=%zu (%s)\n",
                     static_cast<unsigned long long>(f.program_seed), f.index,
                     fuzz::describe(f.minimized).c_str());
        for (const fuzz::Divergence& d : f.divergences)
            std::fprintf(stderr, "  %s: %s\n", d.oracle.c_str(),
                         d.detail.c_str());
        if (!f.file.empty())
            std::fprintf(stderr, "  reproducer: %s\n", f.file.c_str());
        std::fprintf(stderr, "  reproduce: %s --print-seed %llu\n", argv[0],
                     static_cast<unsigned long long>(f.program_seed));
    }

    if (!json_out.empty() &&
        !write_json_report(json_out, command_line(argc, argv), result,
                           config)) {
        std::fprintf(stderr, "error: cannot write %s\n", json_out.c_str());
        return 2;
    }
    return result.findings.empty() ? 0 : 1;
}
