// service_smoke — end-to-end exercise of the dcftd service stack
// (ctest). Runs the Server in-process against real unix sockets and
// pins, deterministically:
//
//  * Coalescing: with the scheduler paused, N identical verify queries
//    arrive on N connections; on release exactly ONE executes and the
//    other N-1 attach to it (scheduler stats + per-response "coalesced"
//    flags), and — by telemetry — the batch costs exactly one set of
//    explorations per distinct graph key.
//  * Repeat vs distinct: a later identical query re-executes the verdict
//    grid but triggers ZERO new explorations (exploration cache); a
//    distinct query does explore.
//  * Protocol: ping/list/stats answer ok with well-formed envelopes;
//    malformed input gets an error response without dropping the
//    connection's server.
//  * Sockets: a stale socket file left by a crashed daemon does not
//    block startup (probe-connect finds it dead, unlinks, binds); a
//    second daemon on a LIVE socket refuses to start and leaves the
//    original serving.
//  * Graded verify: {"op":"verify",...,"graded":true} flags the
//    response and attaches masking_distance + monte_carlo blocks to
//    every query.
//  * Clean shutdown: the shutdown op is acknowledged, wait() returns,
//    every thread joins (the process exits), and the socket file is gone.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

using dcft::obs::JsonValue;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
    std::printf("%s: %s\n", ok ? "ok" : "FAIL", what.c_str());
    if (!ok) ++g_failures;
}

std::uint64_t explorations() {
    return dcft::obs::Registry::global()
        .counter("verify/explorations")
        .value();
}

/// Sends `line`, requiring a parsable response; returns the document.
JsonValue ask(const std::string& socket_path, const std::string& line) {
    std::string error;
    const auto response =
        dcft::service::roundtrip(socket_path, line, &error);
    if (!response.has_value()) {
        check(false, "roundtrip '" + line + "': " + error);
        return JsonValue::make_null();
    }
    const auto doc = dcft::obs::parse_json(*response, &error);
    if (!doc.has_value()) {
        check(false, "response not valid JSON: " + error);
        return JsonValue::make_null();
    }
    return *doc;
}

bool response_ok(const JsonValue& doc) {
    const auto* ok = doc.find("ok", JsonValue::Kind::Bool);
    return ok != nullptr && ok->as_bool();
}

}  // namespace

int main() {
    dcft::obs::set_enabled(true);
    // The zero-new-explorations assertions must measure the exploration
    // cache, not its entry cap: one verify grid produces more distinct
    // graph keys than the default cap of 8, and without a persistent
    // store an evicted key re-explores. Pin a roomy cap and make sure an
    // ambient DCFT_GRAPH_STORE can't mask an eviction either.
    ::setenv("DCFT_EXPLORE_CACHE_CAP", "64", 1);
    ::unsetenv("DCFT_GRAPH_STORE");
    const std::string socket_path =
        "/tmp/dcft-service-smoke-" + std::to_string(::getpid()) + ".sock";
    const std::string verify_a =
        R"({"op":"verify","system":"token-ring","size":5})";
    const std::string verify_b =
        R"({"op":"verify","system":"token-ring","size":4})";

    // -- Phase 0: a stale socket file must not block startup --------------
    // Simulate a crashed daemon: bind a unix socket at the path and close
    // it without unlinking. Nothing listens, but the file exists — the
    // server's probe-connect must find it dead, unlink it, and bind.
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        check(fd >= 0, "stale-socket fixture created");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      socket_path.c_str());
        check(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "stale-socket fixture bound");
        ::close(fd);
        check(::access(socket_path.c_str(), F_OK) == 0,
              "stale socket file left behind");
    }

    dcft::service::Server server({socket_path, /*workers=*/2});
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "FAIL: start over stale socket: %s\n",
                     error.c_str());
        return 1;
    }
    check(true, "server started over the stale socket file");

    // -- Phase 0b: a live socket refuses a second daemon ------------------
    {
        dcft::service::Server duplicate({socket_path, /*workers=*/1});
        std::string dup_error;
        check(!duplicate.start(&dup_error),
              "second daemon on a live socket refuses to start");
        check(dup_error.find("already serving") != std::string::npos,
              "refusal names the live daemon (got '" + dup_error + "')");
    }
    check(response_ok(ask(socket_path, R"({"op":"ping","id":"probe"})")),
          "original daemon still answers after the duplicate probe");

    // -- Phase A: concurrent identical queries coalesce ------------------
    server.scheduler().set_paused(true);
    constexpr int kClients = 6;
    std::vector<JsonValue> responses(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            responses[static_cast<std::size_t>(i)] =
                ask(socket_path, verify_a);
        });
    // All six must be admitted (and five coalesced) before dispatch.
    for (int spins = 0;
         server.scheduler().stats().admitted < kClients && spins < 4000;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    check(server.scheduler().stats().admitted == kClients,
          "all " + std::to_string(kClients) + " queries admitted");
    server.scheduler().set_paused(false);
    for (std::thread& t : clients) t.join();

    const auto stats_a = server.scheduler().stats();
    check(stats_a.executed == 1,
          "concurrent identical queries executed once (got " +
              std::to_string(stats_a.executed) + ")");
    check(stats_a.coalesced == kClients - 1,
          std::to_string(kClients - 1) + " queries coalesced (got " +
              std::to_string(stats_a.coalesced) + ")");
    int ok_count = 0, coalesced_count = 0;
    for (const JsonValue& r : responses) {
        if (response_ok(r)) ++ok_count;
        const auto* c = r.find("coalesced", JsonValue::Kind::Bool);
        if (c != nullptr && c->as_bool()) ++coalesced_count;
    }
    check(ok_count == kClients, "every coalesced caller got a verdict");
    check(coalesced_count == kClients - 1,
          "responses flag the coalesced callers");
    const std::uint64_t explored_once = explorations();
    check(explored_once > 0, "the batch explored its graphs");

    // -- Phase B: identical repeat re-executes but never re-explores -----
    const JsonValue repeat = ask(socket_path, verify_a);
    check(response_ok(repeat), "repeat query answered ok");
    check(server.scheduler().stats().executed == 2,
          "repeat query is a fresh execution");
    check(explorations() == explored_once,
          "repeat query cost zero new explorations (one exploration per "
          "distinct key)");

    // -- Phase C: a distinct key does explore ----------------------------
    const JsonValue distinct = ask(socket_path, verify_b);
    check(response_ok(distinct), "distinct query answered ok");
    check(explorations() > explored_once, "distinct query explored");

    // -- Phase D: protocol surface ---------------------------------------
    check(response_ok(ask(socket_path, R"({"op":"ping","id":"t1"})")),
          "ping answers ok");
    const JsonValue listed = ask(socket_path, R"({"op":"list"})");
    check(response_ok(listed) &&
              listed.find("systems", JsonValue::Kind::Array) != nullptr &&
              !listed.find("systems", JsonValue::Kind::Array)
                   ->as_array()
                   .empty(),
          "list returns the catalog");
    const JsonValue stats_doc = ask(socket_path, R"({"op":"stats"})");
    const auto* sched =
        stats_doc.find("scheduler", JsonValue::Kind::Object);
    check(response_ok(stats_doc) && sched != nullptr &&
              sched->find("coalesced", JsonValue::Kind::Number) != nullptr,
          "stats reports scheduler counters");
    const JsonValue bad = ask(socket_path, "this is not json");
    check(!response_ok(bad) &&
              bad.find("error", JsonValue::Kind::String) != nullptr,
          "malformed input gets an error response");
    for (const JsonValue* doc : {&repeat, &listed, &stats_doc}) {
        const auto* schema = doc->find("schema", JsonValue::Kind::String);
        check(schema != nullptr && schema->as_string() == "dcft.report",
              "response carries the dcft.report envelope");
    }

    // -- Phase D2: graded verify through the daemon ----------------------
    const JsonValue graded = ask(
        socket_path,
        R"({"op":"verify","system":"memory","size":3,"graded":true})");
    check(response_ok(graded), "graded verify answered ok");
    const auto* graded_flag = graded.find("graded", JsonValue::Kind::Bool);
    check(graded_flag != nullptr && graded_flag->as_bool(),
          "graded response carries graded=true");
    const auto* graded_queries =
        graded.find("queries", JsonValue::Kind::Array);
    bool blocks_ok =
        graded_queries != nullptr && !graded_queries->as_array().empty();
    if (blocks_ok)
        for (const JsonValue& q : graded_queries->as_array())
            if (q.find("masking_distance", JsonValue::Kind::Object) ==
                    nullptr ||
                q.find("monte_carlo", JsonValue::Kind::Object) == nullptr)
                blocks_ok = false;
    check(blocks_ok,
          "every graded query carries masking_distance and monte_carlo "
          "blocks");
    const JsonValue plain = ask(
        socket_path, R"({"op":"verify","system":"memory","size":3})");
    const auto* plain_queries =
        plain.find("queries", JsonValue::Kind::Array);
    bool plain_clean =
        plain_queries != nullptr && !plain_queries->as_array().empty();
    if (plain_clean)
        for (const JsonValue& q : plain_queries->as_array())
            if (q.find("masking_distance") != nullptr ||
                q.find("monte_carlo") != nullptr)
                plain_clean = false;
    check(plain_clean,
          "plain verify of the same system omits the graded blocks "
          "(coalescing keys keep graded and plain apart)");

    // -- Phase E: clean shutdown -----------------------------------------
    check(response_ok(ask(socket_path, R"({"op":"shutdown"})")),
          "shutdown acknowledged");
    server.wait();
    check(::access(socket_path.c_str(), F_OK) != 0,
          "socket file removed on shutdown");

    if (g_failures == 0) {
        std::printf("service_smoke: all checks passed\n");
        return 0;
    }
    std::fprintf(stderr, "service_smoke: %d check(s) failed\n", g_failures);
    return 1;
}
