// bench_compare: regression gate over BENCH_verifier.json series.
//
//   bench_compare <baseline.json> <candidate.json> [--tolerance=PCT]
//                 [--min-delta-ms=MS] [--json-out=FILE]
//
// Reads the `workloads` array of both files, matches workloads by `name`,
// and fails (exit 1) when any matched workload's candidate `best_ms`
// exceeds baseline `best_ms` by more than PCT percent (default 25) AND by
// more than --min-delta-ms (default 0.25 ms) absolute — sub-millisecond
// workloads jitter past 25% on timer noise alone, and a gate that can
// only fire on >0.25 ms of real slowdown never flags noise. The
// intersection of workload names must be non-empty — an empty overlap
// means the series drifted apart and the gate would silently pass, so it
// is treated as failure. Workloads present on only one side are listed
// but do not fail the gate (benchmark sets may grow).
//
// The ctest smoke target wires this as:
//   bench_verifier --smoke --json=BENCH_verifier.smoke.json
//   bench_compare  <src>/BENCH_verifier.json BENCH_verifier.smoke.json
// so a perf regression in the verifier core fails `ctest` without a full
// (minutes-long) benchmark run. Smoke timings are best-of-3; the 25%
// default leaves headroom for scheduler jitter on small workloads.
//
// --json-out=FILE additionally writes a machine-readable summary in the
// shared dcft.report envelope (kind "bench_compare"): the per-workload
// base/cand/ratio/regressed rows plus the gate verdict. The tool stays
// standalone (no dcft dependency) so it can run against committed
// artifacts on machines without a build tree; the envelope fields are
// kept in sync with obs/run_report.hpp by report_check.
//
// The parser below handles exactly the JSON subset our writer emits
// (objects, arrays, strings without surrogate escapes, numbers, bools,
// null) — no external dependency.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::shared_ptr<JsonArray> array;
    std::shared_ptr<JsonObject> object;

    const JsonValue* find(const std::string& key) const {
        if (kind != Kind::kObject) return nullptr;
        const auto it = object->find(key);
        return it == object->end() ? nullptr : &it->second;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse(JsonValue& out, std::string& error) {
        pos_ = 0;
        if (!value(out)) {
            error = error_ + " (at byte " + std::to_string(pos_) + ")";
            return false;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            error = "trailing content at byte " + std::to_string(pos_);
            return false;
        }
        return true;
    }

private:
    void skip_ws() {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool fail(const std::string& msg) {
        if (error_.empty()) error_ = msg;
        return false;
    }

    bool literal(const char* word, JsonValue& out, JsonValue::Kind k,
                 bool b) {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("expected ") + word);
        pos_ += len;
        out.kind = k;
        out.boolean = b;
        return true;
    }

    bool string_token(std::string& out) {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) return fail("bad escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) return fail("bad \\u");
                    // ASCII-only \uXXXX is enough for our writer; anything
                    // else is preserved as '?' (names never contain it).
                    const std::string hex = text_.substr(pos_, 4);
                    pos_ += 4;
                    const long cp = std::strtol(hex.c_str(), nullptr, 16);
                    out.push_back(cp < 0x80 ? static_cast<char>(cp) : '?');
                    break;
                }
                default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool value(JsonValue& out) {
        skip_ws();
        if (pos_ >= text_.size()) return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == 'n') return literal("null", out, JsonValue::Kind::kNull, false);
        if (c == 't') return literal("true", out, JsonValue::Kind::kBool, true);
        if (c == 'f')
            return literal("false", out, JsonValue::Kind::kBool, false);
        if (c == '"') {
            out.kind = JsonValue::Kind::kString;
            return string_token(out.string);
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::kArray;
            out.array = std::make_shared<JsonArray>();
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue elem;
                if (!value(elem)) return false;
                out.array->push_back(std::move(elem));
                skip_ws();
                if (pos_ >= text_.size()) return fail("unterminated array");
                const char d = text_[pos_++];
                if (d == ']') return true;
                if (d != ',') return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::kObject;
            out.object = std::make_shared<JsonObject>();
            skip_ws();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skip_ws();
                std::string key;
                if (!string_token(key)) return false;
                skip_ws();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return fail("expected ':'");
                JsonValue elem;
                if (!value(elem)) return false;
                (*out.object)[key] = std::move(elem);
                skip_ws();
                if (pos_ >= text_.size()) return fail("unterminated object");
                const char d = text_[pos_++];
                if (d == '}') return true;
                if (d != ',') return fail("expected ',' or '}'");
            }
        }
        // Number.
        const std::size_t start = pos_;
        if (text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) return fail("expected value");
        out.kind = JsonValue::Kind::kNumber;
        out.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                 nullptr);
        return true;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// ---------------------------------------------------------------------------
// Series extraction.

bool load_best_ms(const std::string& path,
                  std::map<std::string, double>& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonValue root;
    std::string error;
    if (!JsonParser(text).parse(root, error)) {
        std::fprintf(stderr, "bench_compare: %s: parse error: %s\n",
                     path.c_str(), error.c_str());
        return false;
    }
    // The series may be wrapped in the dcft.report envelope ({"dcft": ...,
    // "body": {...}}) or be the bare bench object; accept both.
    const JsonValue* body = root.find("body");
    if (body == nullptr) body = &root;
    const JsonValue* workloads = body->find("workloads");
    if (workloads == nullptr || workloads->kind != JsonValue::Kind::kArray) {
        std::fprintf(stderr, "bench_compare: %s: no workloads array\n",
                     path.c_str());
        return false;
    }
    for (const JsonValue& w : *workloads->array) {
        const JsonValue* name = w.find("name");
        const JsonValue* best = w.find("best_ms");
        if (name == nullptr || name->kind != JsonValue::Kind::kString ||
            best == nullptr || best->kind != JsonValue::Kind::kNumber) {
            std::fprintf(stderr,
                         "bench_compare: %s: workload without "
                         "name/best_ms\n",
                         path.c_str());
            return false;
        }
        out[name->string] = best->number;
    }
    return true;
}

// ---------------------------------------------------------------------------
// JSON summary (dcft.report envelope, kind "bench_compare").

/// One comparison row. Workloads on only one side have base_ms or cand_ms
/// < 0 (emitted as null).
struct Row {
    std::string name;
    double base_ms = -1.0;
    double cand_ms = -1.0;
    double ratio = 0.0;
    bool regressed = false;
};

std::string json_escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    return out;
}

/// Mirrors obs::begin_envelope's field layout without linking dcft — this
/// tool must stay runnable against committed artifacts on any machine.
bool write_json_report(const std::string& path, const std::string& command,
                       const std::string& baseline_path,
                       const std::string& candidate_path, double tolerance_pct,
                       double min_delta_ms, const std::vector<Row>& rows,
                       std::size_t compared, std::size_t regressions) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << "{\n";
    out << "  \"schema\": \"dcft.report\",\n";
    out << "  \"schema_version\": 1,\n";
    out << "  \"kind\": \"bench_compare\",\n";
    out << "  \"tool\": \"bench_compare\",\n";
    out << "  \"command\": \"" << json_escape(command) << "\",\n";
    out << "  \"baseline\": \"" << json_escape(baseline_path) << "\",\n";
    out << "  \"candidate\": \"" << json_escape(candidate_path) << "\",\n";
    out << "  \"tolerance_pct\": " << tolerance_pct << ",\n";
    out << "  \"min_delta_ms\": " << min_delta_ms << ",\n";
    out << "  \"workloads\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << (i > 0 ? "," : "") << "\n    {\"name\": \""
            << json_escape(r.name) << "\", \"base_ms\": ";
        if (r.base_ms < 0.0)
            out << "null";
        else
            out << r.base_ms;
        out << ", \"cand_ms\": ";
        if (r.cand_ms < 0.0)
            out << "null";
        else
            out << r.cand_ms;
        out << ", \"ratio\": ";
        if (r.base_ms < 0.0 || r.cand_ms < 0.0)
            out << "null";
        else
            out << r.ratio;
        out << ", \"regressed\": " << (r.regressed ? "true" : "false") << "}";
    }
    out << "\n  ],\n";
    out << "  \"summary\": {\"compared\": " << compared
        << ", \"regressions\": " << regressions
        << ", \"ok\": " << (compared > 0 && regressions == 0 ? "true" : "false")
        << "}\n";
    out << "}\n";
    return out.good();
}

}  // namespace

int main(int argc, char** argv) {
    double tolerance_pct = 25.0;
    double min_delta_ms = 0.25;
    std::string json_out;
    std::vector<std::string> paths;
    std::string command;
    for (int i = 0; i < argc; ++i) {
        if (i > 0) command += ' ';
        command += argv[i];
    }
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--tolerance=", 0) == 0) {
            tolerance_pct = std::strtod(arg.c_str() + 12, nullptr);
        } else if (arg.rfind("--min-delta-ms=", 0) == 0) {
            min_delta_ms = std::strtod(arg.c_str() + 15, nullptr);
        } else if (arg.rfind("--json-out=", 0) == 0) {
            json_out = arg.substr(11);
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bench_compare <baseline.json> <candidate.json> "
                "[--tolerance=PCT] [--min-delta-ms=MS] [--json-out=FILE]\n");
            return 0;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        std::fprintf(stderr,
                     "usage: bench_compare <baseline.json> <candidate.json> "
                     "[--tolerance=PCT] [--min-delta-ms=MS] "
                     "[--json-out=FILE]\n");
        return 2;
    }

    // The regression gate compares against a baseline recorded in the
    // *default* configuration. Oracle/diagnostic env modes deliberately
    // trade speed for checking (interpreted path, scalar path, out-of-core
    // storage), so comparing under them would only ever report the mode's
    // own overhead.
    for (const char* flag : {"DCFT_NO_COMPILE", "DCFT_NO_BATCH", "DCFT_SPILL",
                             "DCFT_NO_EXPLORE_CACHE"}) {
        const char* v = std::getenv(flag);
        if (v != nullptr && *v != '\0' && std::string(v) != "0") {
            std::printf(
                "bench_compare: %s is set — perf gate skipped (only "
                "meaningful in the default configuration)\n",
                flag);
            return 0;
        }
    }

    std::map<std::string, double> baseline, candidate;
    if (!load_best_ms(paths[0], baseline)) return 2;
    if (!load_best_ms(paths[1], candidate)) return 2;

    const double limit = 1.0 + tolerance_pct / 100.0;
    std::size_t compared = 0, regressions = 0;
    std::vector<Row> rows;
    std::printf(
        "bench_compare: tolerance %+.0f%% (and > %.2f ms absolute) on "
        "best_ms\n",
        tolerance_pct, min_delta_ms);
    std::printf("  %-42s %10s %10s %8s\n", "workload", "base ms", "cand ms",
                "ratio");
    for (const auto& [name, base_ms] : baseline) {
        const auto it = candidate.find(name);
        if (it == candidate.end()) {
            std::printf("  %-42s %10.3f %10s %8s  (baseline only)\n",
                        name.c_str(), base_ms, "-", "-");
            rows.push_back({name, base_ms, -1.0, 0.0, false});
            continue;
        }
        ++compared;
        const double cand_ms = it->second;
        const double ratio = base_ms > 0.0 ? cand_ms / base_ms : 0.0;
        const bool regressed = base_ms > 0.0 && ratio > limit &&
                               cand_ms - base_ms > min_delta_ms;
        regressions += regressed ? 1u : 0u;
        std::printf("  %-42s %10.3f %10.3f %7.2fx  %s\n", name.c_str(),
                    base_ms, cand_ms, ratio,
                    regressed ? "REGRESSION" : "ok");
        rows.push_back({name, base_ms, cand_ms, ratio, regressed});
    }
    for (const auto& [name, cand_ms] : candidate) {
        if (baseline.find(name) == baseline.end()) {
            std::printf("  %-42s %10s %10.3f %8s  (candidate only)\n",
                        name.c_str(), "-", cand_ms, "-");
            rows.push_back({name, -1.0, cand_ms, 0.0, false});
        }
    }

    if (!json_out.empty() &&
        !write_json_report(json_out, command, paths[0], paths[1],
                           tolerance_pct, min_delta_ms, rows, compared,
                           regressions)) {
        std::fprintf(stderr, "bench_compare: cannot write %s\n",
                     json_out.c_str());
        return 2;
    }

    if (compared == 0) {
        std::fprintf(stderr,
                     "bench_compare: no workload names in common — series "
                     "drifted; regenerate the baseline\n");
        return 1;
    }
    if (regressions > 0) {
        std::fprintf(stderr,
                     "bench_compare: %zu/%zu workloads regressed by more "
                     "than %.0f%%\n",
                     regressions, compared, tolerance_pct);
        return 1;
    }
    std::printf("bench_compare: %zu workloads within %.0f%%\n", compared,
                tolerance_pct);
    return 0;
}
