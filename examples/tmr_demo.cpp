// Triple modular redundancy (paper Section 6.1): the classic voter
// recovered by composing a detector and a corrector with a single-input
// copy program, then exercised under input-corruption faults.
#include <cstdio>

#include "apps/tmr.hpp"
#include "runtime/simulator.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

namespace {

struct SimOutcome {
    std::size_t correct = 0;
    std::size_t wrong = 0;
    std::size_t stuck = 0;
};

SimOutcome simulate_many(const apps::TmrSystem& sys, const Program& p,
                         int runs, double fault_p) {
    SimOutcome outcome;
    RandomScheduler scheduler;
    for (int i = 0; i < runs; ++i) {
        Simulator sim(p, scheduler, 1000 + static_cast<std::uint64_t>(i));
        FaultInjector injector(sys.corrupt_one_input, fault_p, 1);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 30;
        const RunResult run =
            sim.run(sys.initial_state(static_cast<Value>(i % 2)), options);
        if (sys.output_correct.eval(*sys.space, run.final_state))
            ++outcome.correct;
        else if (sys.output_unassigned.eval(*sys.space, run.final_state))
            ++outcome.stuck;
        else
            ++outcome.wrong;
    }
    return outcome;
}

}  // namespace

int main() {
    std::printf("== triple modular redundancy (paper Section 6.1) ==\n");
    auto sys = apps::make_tmr(2);

    std::printf("\nmechanical verdicts under one-input corruption:\n");
    const auto row = [&](const Program& p, const char* label) {
        std::printf("  %-14s fail-safe:%s  masking:%s\n", label,
                    check_failsafe(p, sys.corrupt_one_input, sys.spec,
                                   sys.invariant)
                            .ok()
                        ? "yes"
                        : "no ",
                    check_masking(p, sys.corrupt_one_input, sys.spec,
                                  sys.invariant)
                            .ok()
                        ? "yes"
                        : "no ");
    };
    row(sys.intolerant, "IR");
    row(sys.failsafe, "DR;IR");
    row(sys.masking, "DR;IR || CR");

    std::printf("\n1000 simulated runs each, one corruption per run:\n");
    std::printf("  program        | correct | wrong | no output\n");
    std::printf("  ---------------+---------+-------+----------\n");
    for (const auto& [p, label] :
         std::vector<std::pair<const Program*, const char*>>{
             {&sys.intolerant, "IR"},
             {&sys.failsafe, "DR;IR"},
             {&sys.masking, "DR;IR || CR"}}) {
        const SimOutcome o = simulate_many(sys, *p, 1000, 0.4);
        std::printf("  %-14s | %7zu | %5zu | %9zu\n", label, o.correct,
                    o.wrong, o.stuck);
    }

    std::printf(
        "\nreading: IR can output the corrupted value; DR;IR never outputs\n"
        "wrongly but deadlocks when x is hit (the paper notes exactly\n"
        "this); adding CR yields the voter — classic TMR, derived from\n"
        "detector + corrector components.\n");
    return 0;
}
