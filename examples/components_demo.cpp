// The component framework (the paper's Section 7 roadmap): reusable
// detector and corrector builders, composed with an application program,
// verified individually, for interference freedom, and end to end — plus
// offline trace checking of a simulated run.
#include <cstdio>

#include "components/corrector.hpp"
#include "components/detector.hpp"
#include "runtime/trace_checker.hpp"
#include "verify/component_checker.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

int main() {
    std::printf("== the component framework (Section 7) ==\n\n");

    // An unreliable sensor feed: `reading` should mirror `source`, but a
    // glitch can corrupt it. We assemble fault tolerance from stock parts.
    auto space = make_space({
        Variable{"source", 3, {}},   // the ground truth
        Variable{"reading", 3, {}},  // the mirrored value
        Variable{"ok", 2, {}},       // witness: reading trusted
    });
    const Predicate in_sync(
        "reading==source", [](const StateSpace& sp, StateIndex s) {
            return sp.get(s, sp.find("reading")) ==
                   sp.get(s, sp.find("source"));
        });

    // 1. A corrector from the library: re-copy the source when out of
    //    sync (a constraint satisfier), with a separate witness bit.
    Corrector mirror = add_witness(
        make_constraint_satisfier(
            space, in_sync,
            [](const StateSpace& sp, StateIndex s) {
                return sp.set(s, sp.find("reading"),
                              sp.get(s, sp.find("source")));
            },
            "mirror"),
        space, "ok");
    std::printf("corrector claim: '%s corrects %s' ... %s\n",
                mirror.claim.witness.name().c_str(),
                mirror.claim.correction.name().c_str(),
                mirror.verify().ok ? "verified" : "FAILED");

    // 2. A consumer that acts only on trusted readings: gate it with the
    //    witness (the detector-gating composition).
    Program consumer(space, space->varset({"source"}), "consumer");
    consumer.add_action(Action::skip(
        "consume", Predicate::var_eq(*space, "ok", 1)));
    const Program system =
        mirror.attach(consumer).renamed("sensor-system");

    // 3. Interference freedom: the consumer does not invalidate the
    //    corrector's claim inside the composition.
    std::printf("interference freedom within the composition ... %s\n",
                mirror.verify_within(system).ok ? "verified" : "FAILED");

    // 4. Faults corrupt the reading (and may leave the stale witness!).
    FaultClass glitch(space, "glitch");
    glitch.add_action(Action::nondet(
        "corrupt-reading", Predicate::top(),
        [](const StateSpace& sp, StateIndex s,
           std::vector<StateIndex>& out) {
            const VarId reading = sp.find("reading");
            for (Value c = 0; c < 3; ++c)
                if (c != sp.get(s, reading))
                    out.push_back(sp.set(s, reading, c));
        }));

    std::printf("nonmasking glitch-tolerance of the corrector ... %s\n",
                check_tolerant_corrector(system, glitch, mirror.claim,
                                         Tolerance::Nonmasking,
                                         Predicate::top())
                        .ok
                    ? "verified"
                    : "FAILED");

    // 5. Hybrid validation: simulate with injected glitches and check the
    //    recorded trace offline against the same claims.
    RoundRobinScheduler scheduler;
    Simulator sim(system, scheduler, 99);
    FaultInjector injector(glitch, 0.2, 4);
    sim.set_fault_injector(&injector);
    RunOptions options;
    options.record_trace = true;
    options.max_steps = 120;
    const RunResult run = sim.run(space->encode({{1, 1, 0}}), options);

    const TraceReport trace_report =
        check_trace_corrector(*space, run, mirror.claim);
    std::printf(
        "trace check of a %zu-step run (%zu glitches injected): %zu "
        "transient witness violations\n",
        run.steps, run.fault_steps, trace_report.violations.size());
    for (const TraceViolation& violation : trace_report.violations)
        std::printf("    step %zu: %s\n", violation.step,
                    violation.what.c_str());
    std::printf(
        "\nreading: each glitch leaves a momentarily *stale* witness —\n"
        "visible in the trace — which the corrector then repairs. That\n"
        "lag is exactly why the component is nonmasking rather than\n"
        "masking tolerant (Theorem 5.5's asymmetry), and why the gated\n"
        "consumer should re-check at its final commit point.\n");
    return 0;
}
