// Quickstart: the dcft workflow end to end on a toy system.
//
//   1. model a program as guarded commands over finite-domain variables;
//   2. state its problem specification (safety + liveness);
//   3. model faults as actions;
//   4. ask the verifier for a tolerance verdict;
//   5. synthesize the missing detectors/correctors;
//   6. simulate the result under fault injection.
//
// The toy: a job processor that moves a job through
// queued -> running -> done, must never report a job done that wasn't
// run ("done" without "ran" is the unsafe state), and must eventually
// finish. The fault crashes a running job back to queued — or, worse,
// flips the "ran" flag.
#include <cstdio>

#include "gc/composition.hpp"
#include "runtime/simulator.hpp"
#include "synth/add_masking.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

namespace {

void report(const char* what, const ToleranceReport& r) {
    std::printf("  %-48s %s\n", what, r.ok() ? "YES" : "no");
    if (!r.ok()) std::printf("      because: %s\n", r.reason().c_str());
}

}  // namespace

int main() {
    std::printf("== dcft quickstart ==\n\n");

    // 1. The state space and the fault-intolerant program.
    auto space = make_space({
        Variable{"phase", 0, {"queued", "running", "done"}},
        Variable{"ran", 2, {}},  // did the job actually execute?
    });
    const Predicate queued = Predicate::var_eq(*space, "phase", 0);
    const Predicate running = Predicate::var_eq(*space, "phase", 1);
    const Predicate done = Predicate::var_eq(*space, "phase", 2);
    const Predicate ran = Predicate::var_eq(*space, "ran", 1);

    Program job(space, "job-processor");
    job.add_action(Action::assign_const(*space, "start", queued, "phase", 1));
    job.add_action(Action::nondet(
        "execute", running && !ran,
        [space](const StateSpace& sp, StateIndex s,
                std::vector<StateIndex>& out) {
            out.push_back(sp.set(s, sp.find("ran"), 1));
        }));
    job.add_action(
        Action::assign_const(*space, "finish", running, "phase", 2));

    // 2. The specification: never "done without ran"; eventually done.
    SafetySpec safety =
        SafetySpec::never((done && !ran).renamed("done-but-never-ran"));
    LivenessSpec liveness;
    liveness.add_eventually((done && ran).renamed("completed"));
    const ProblemSpec spec("job-spec", safety, liveness);

    // Invariant: everything the program can reach from a queued job.
    const Predicate invariant =
        (queued || running || (done && ran)).renamed("S");

    // 3. The fault: a crash knocks a running job back to queued and may
    // clear the ran flag mid-flight.
    FaultClass crash(space, "crash");
    crash.add_action(Action::nondet(
        "crash", running,
        [space](const StateSpace& sp, StateIndex s,
                std::vector<StateIndex>& out) {
            StateIndex t = sp.set(s, sp.find("phase"), 0);
            out.push_back(t);
            out.push_back(sp.set(t, sp.find("ran"), 0));
        }));

    // Oops — the hand-written program is broken even without faults:
    // "finish" can fire before "execute".
    std::printf("verdicts for the hand-written program:\n");
    report("masking crash-tolerant?",
           check_masking(job, crash, spec, invariant));

    // Patch it the component way: gate "finish" with a detector whose
    // detection predicate is `ran` (an acceptance test).
    Program fixed(space, "job-with-detector");
    fixed.add_action(job.action_named("start"));
    fixed.add_action(job.action_named("execute"));
    fixed.add_action(job.action_named("finish").restricted(ran));

    std::printf("\nverdicts after gating `finish` with the detector:\n");
    report("fail-safe crash-tolerant?",
           check_failsafe(fixed, crash, spec, invariant));
    report("nonmasking crash-tolerant?",
           check_nonmasking(fixed, crash, spec, invariant));
    report("masking crash-tolerant?",
           check_masking(fixed, crash, spec, invariant));

    // 4. Or let dcft synthesize the components (Question 2 of the paper).
    const MaskingSynthesis synth =
        add_masking(job, crash, spec.safety(), invariant);
    std::printf("\nverdicts for the synthesized masking version:\n");
    report("masking crash-tolerant?",
           check_masking(synth.program, crash, spec, invariant));

    // 5. Simulate the fixed program under crash injection.
    RoundRobinScheduler scheduler;
    Simulator sim(fixed, scheduler, /*seed=*/42);
    FaultInjector injector(crash, /*per_step_p=*/0.3, /*max_faults=*/5);
    sim.set_fault_injector(&injector);
    SafetyMonitor monitor(spec.safety());
    sim.add_monitor(&monitor);

    RunOptions options;
    options.stop_when = (done && ran).renamed("completed");
    options.max_steps = 200;
    const RunResult run = sim.run(space->encode({{0, 0}}), options);

    std::printf("\nsimulation: %zu steps (%zu crashes injected), %s\n",
                run.steps, run.fault_steps,
                run.stopped_early ? "job completed" : "did not complete");
    std::printf("safety violations observed: %zu\n",
                monitor.program_violations() + monitor.fault_violations());
    std::printf("final state: %s\n",
                space->format(run.final_state).c_str());
    return 0;
}
