// Byzantine agreement (paper Section 6.2): the detector DB gates outputs,
// the corrector CB repairs decisions, and together they mask one
// Byzantine process among four — while three processes provably cannot.
#include <cstdio>

#include "apps/byzantine.hpp"
#include "runtime/simulator.hpp"
#include "verify/reachability.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

namespace {

Predicate fault_free_invariant(const apps::ByzantineSystem& sys,
                               const Program& program) {
    const Predicate init("init", [&sys](const StateSpace& sp, StateIndex s) {
        if (sp.get(s, sys.b_g) != 0) return false;
        for (std::size_t i = 0; i < sys.d.size(); ++i) {
            if (sp.get(s, sys.b[i]) != 0) return false;
            if (sp.get(s, sys.d[i]) != 2) return false;
            if (sp.get(s, sys.out[i]) != 2) return false;
        }
        return true;
    });
    auto reach = std::make_shared<StateSet>(
        reachable_states(program, nullptr, init));
    return predicate_of(std::move(reach), "fault-free-reach");
}

void one_run_with_byzantine_general(const apps::ByzantineSystem& sys) {
    RandomScheduler scheduler;
    Simulator sim(sys.masking, scheduler, /*seed=*/11);
    // Script the general to turn Byzantine at step 0.
    FaultInjector injector(sys.byzantine_fault, 0.0, 1);
    injector.schedule(0, 0);  // fault action 0 flips b.g
    sim.set_fault_injector(&injector);

    RunOptions options;
    options.max_steps = 400;
    options.stop_when = sys.all_honest_output;
    const RunResult run = sim.run(sys.initial_state(1), options);

    std::printf("  run with Byzantine general: %zu steps, %s\n", run.steps,
                run.stopped_early ? "all honest processes decided"
                                  : "undecided (step budget)");
    std::printf("  final: %s\n",
                sys.space->format(run.final_state).c_str());
}

}  // namespace

int main() {
    std::printf("== Byzantine agreement (paper Section 6.2) ==\n");
    auto sys = apps::make_byzantine(4, 1);

    std::printf("\nmechanical verdicts, n=4, f=1:\n");
    const auto row = [&](const Program& p, const char* label) {
        const Predicate inv = fault_free_invariant(sys, p);
        std::printf(
            "  %-22s fail-safe:%s  masking:%s\n", label,
            check_failsafe(p, sys.byzantine_fault, sys.spec, inv).ok()
                ? "yes"
                : "no ",
            check_masking(p, sys.byzantine_fault, sys.spec, inv).ok()
                ? "yes"
                : "no ");
    };
    row(sys.intolerant, "IB (intolerant)");
    row(sys.failsafe, "DB;IB (detector)");
    row(sys.masking, "DB;IB || CB (full)");

    std::printf("\nthe 3f+1 bound, recovered by the checker:\n");
    for (int n : {3, 4, 5}) {
        auto s = apps::make_byzantine(n, 1);
        const Predicate inv = fault_free_invariant(s, s.masking);
        std::printf("  n=%d, f=1: masking %s\n", n,
                    check_masking(s.masking, s.byzantine_fault, s.spec, inv)
                            .ok()
                        ? "achievable"
                        : "IMPOSSIBLE (n < 3f+1)");
    }

    std::printf("\nsimulation:\n");
    one_run_with_byzantine_general(sys);
    return 0;
}
