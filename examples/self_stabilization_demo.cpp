// Self-stabilization as correction (paper Sections 4 and 7): Dijkstra's
// token ring is the canonical corrector — 'S corrects S' from true — and
// the paper's own PVS case study. We verify its convergence thresholds
// and watch a corrupted ring stabilize, then do the same for BFS
// spanning-tree maintenance and leader election.
#include <cstdio>

#include "apps/leader_election.hpp"
#include "apps/spanning_tree.hpp"
#include "apps/token_ring.hpp"
#include "runtime/simulator.hpp"
#include "verify/component_checker.hpp"
#include "verify/refinement.hpp"

using namespace dcft;

namespace {

std::size_t stabilization_steps(const Program& p, const Predicate& target,
                                StateIndex from, std::uint64_t seed) {
    RandomScheduler scheduler;
    Simulator sim(p, scheduler, seed);
    RunOptions options;
    options.max_steps = 100000;
    options.stop_when = target;
    const RunResult run = sim.run(from, options);
    return run.stopped_early ? run.steps : options.max_steps;
}

}  // namespace

int main() {
    std::printf("== self-stabilization as correction (Sections 4, 7) ==\n");

    std::printf("\nDijkstra's K-state token ring, convergence verdicts:\n");
    std::printf("      K=n-2  K=n-1  K=n\n");
    for (int n = 4; n <= 6; ++n) {
        std::printf("  n=%d:", n);
        for (Value k = n - 2; k <= n; ++k) {
            auto sys = apps::make_token_ring(n, k);
            const bool ok = converges(sys.ring, nullptr, Predicate::top(),
                                      sys.legitimate)
                                .ok;
            std::printf("  %-5s", ok ? "yes" : "NO");
        }
        std::printf("\n");
    }

    {
        auto sys = apps::make_token_ring(5, 5);
        const CorrectorClaim claim{sys.legitimate, sys.legitimate,
                                   Predicate::top()};
        std::printf(
            "\n  'S corrects S' in the ring from true (Remark 4.1): %s\n",
            check_corrector(sys.ring, claim).ok ? "verified" : "FAILED");

        // Corrupt a legitimate ring and watch it stabilize.
        StateIndex corrupted = sys.initial_state();
        corrupted = sys.space->set(corrupted, sys.x[1], 3);
        corrupted = sys.space->set(corrupted, sys.x[3], 1);
        const std::size_t steps = stabilization_steps(
            sys.ring, sys.legitimate, corrupted, /*seed=*/5);
        std::printf(
            "  after corrupting two counters: stabilized in %zu steps\n",
            steps);
    }

    std::printf("\nBFS spanning tree maintenance:\n");
    for (const auto& [graph, label] :
         std::vector<std::pair<apps::Graph, const char*>>{
             {apps::path_graph(5), "path(5)"},
             {apps::cycle_graph(5), "cycle(5)"},
             {apps::star_graph(5), "star(5)"}}) {
        auto sys = apps::make_spanning_tree(graph);
        const bool ok = converges(sys.program, nullptr, Predicate::top(),
                                  sys.legitimate)
                            .ok;
        // Worst-case-ish simulated stabilization: all distances maxed out.
        StateIndex bad = 0;
        for (VarId v : sys.dist)
            bad = sys.space->set(bad, v, static_cast<Value>(graph.size()));
        const std::size_t steps =
            stabilization_steps(sys.program, sys.legitimate, bad, 9);
        std::printf("  %-9s converges:%s, simulated recovery: %zu steps\n",
                    label, ok ? "yes" : "NO", steps);
    }

    std::printf("\nleader election on a tree (corrector hierarchy):\n");
    {
        auto sys = apps::make_leader_election({0, 0, 0, 1}, {2, 0, 3, 1});
        std::printf("  converges from any state: %s; elected leader id %lld\n",
                    converges(sys.program, nullptr, Predicate::top(),
                              sys.legitimate)
                            .ok
                        ? "yes"
                        : "NO",
                    static_cast<long long>(sys.true_leader));
        const CorrectorClaim agg{sys.aggregation_correct,
                                 sys.aggregation_correct, Predicate::top()};
        const CorrectorClaim ldr{sys.legitimate, sys.legitimate,
                                 sys.aggregation_correct};
        std::printf("  layered correctors verified: aggregation %s, "
                    "broadcast-on-top %s\n",
                    check_corrector(sys.program, agg).ok ? "yes" : "NO",
                    check_corrector(sys.program, ldr).ok ? "yes" : "NO");
    }
    return 0;
}
