// Question 2 of the paper, live: starting from a fault-intolerant program,
// dcft calculates the detectors (weakest detection predicates), gates the
// actions, synthesizes a corrector over the fault span, and verifies each
// tolerance grade of the result.
#include <cstdio>

#include "apps/tmr.hpp"
#include "synth/add_masking.hpp"
#include "verify/detection_predicate.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

int main() {
    std::printf("== tolerance synthesis (the paper's Question 2) ==\n");
    auto sys = apps::make_tmr(2);

    std::printf("\nstep 1 — calculate each action's weakest detection "
                "predicate (Theorem 3.3):\n");
    for (const auto& ac : sys.intolerant.actions()) {
        const auto wdp =
            weakest_detection_set(*sys.space, ac, sys.spec.safety());
        std::printf("  action %-6s safe in %llu / %llu states\n",
                    ac.name().c_str(),
                    static_cast<unsigned long long>(wdp->count()),
                    static_cast<unsigned long long>(
                        sys.space->num_states()));
    }

    std::printf("\nstep 2 — gate every action (add_failsafe):\n");
    const FailsafeSynthesis fs =
        add_failsafe(sys.intolerant, sys.spec.safety());
    const ToleranceReport fs_report = check_failsafe(
        fs.program, sys.corrupt_one_input, sys.spec, sys.invariant);
    std::printf("  %s is fail-safe tolerant: %s\n",
                fs.program.name().c_str(), fs_report.ok() ? "yes" : "NO");
    std::printf("  fault span: %llu states (invariant: %llu)\n",
                static_cast<unsigned long long>(fs_report.span_size),
                static_cast<unsigned long long>(fs_report.invariant_size));

    std::printf("\nstep 3 — synthesize a goal corrector for 'out = "
                "uncorrupted value' (add_nonmasking):\n");
    NonmaskingOptions opts;
    opts.safety = &sys.spec.safety();
    opts.writable = {"out"};
    opts.span_from = sys.invariant;
    const NonmaskingSynthesis nm = add_nonmasking(
        fs.program, sys.corrupt_one_input, sys.output_correct, opts);
    std::printf("  corrector synthesized, covers every span state: %s\n",
                nm.complete ? "yes" : "NO");

    const ToleranceReport mk = check_masking(
        nm.program, sys.corrupt_one_input, sys.spec, sys.invariant);
    std::printf("  composed program is masking tolerant: %s\n",
                mk.ok() ? "yes" : "NO");

    std::printf("\nstep 4 — compare with the paper's hand construction "
                "(DR;IR || CR):\n");
    const ToleranceReport hand = check_masking(
        sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant);
    std::printf("  hand-built masking TMR verdict: %s — same as "
                "synthesized: %s\n",
                hand.ok() ? "yes" : "NO",
                (hand.ok() == mk.ok()) ? "agreed" : "DISAGREED");

    std::printf(
        "\nreading: the machinery that the paper proves must exist inside\n"
        "every fault-tolerant program (detectors, correctors) can also be\n"
        "calculated mechanically and composed to *build* one.\n");
    return 0;
}
