// The paper's running example (Sections 3.3, 4.3, 5.1; Figures 1-3),
// reproduced as a walkthrough: the intolerant read p, the fail-safe pf,
// the nonmasking pn, and the masking pm are verified against SPEC_mem
// under page faults, then simulated to show the behavioural differences
// the grades describe.
#include <cstdio>

#include "apps/memory_access.hpp"
#include "runtime/simulator.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;

namespace {

const char* yn(bool b) { return b ? "yes" : " no"; }

void verdict_row(const apps::MemoryAccessSystem& sys, const Program& p,
                 const char* label) {
    const bool fs = check_failsafe(p, sys.page_fault, sys.spec, sys.S).ok();
    const bool nm =
        check_nonmasking(p, sys.page_fault, sys.spec, sys.S).ok();
    const bool mk = check_masking(p, sys.page_fault, sys.spec, sys.S).ok();
    std::printf("  %-14s | %9s | %10s | %7s\n", label, yn(fs), yn(nm),
                yn(mk));
}

void simulate(const apps::MemoryAccessSystem& sys, const Program& p,
              const char* label) {
    RandomScheduler scheduler;
    Simulator sim(p, scheduler, /*seed=*/7);
    FaultInjector injector(sys.page_fault, 0.25, 2);
    sim.set_fault_injector(&injector);
    SafetyMonitor safety(sys.spec.safety());
    const Predicate data_ok =
        Predicate::var_eq(*sys.space, "data", sys.correct_value);
    CorrectorMonitor corrector(data_ok);
    sim.add_monitor(&safety);
    sim.add_monitor(&corrector);

    RunOptions options;
    options.max_steps = 60;
    const RunResult run = sim.run(sys.initial_state(), options);

    std::printf(
        "  %-14s | steps %3zu | faults %zu | wrong-writes %zu | %s\n", label,
        run.steps, run.fault_steps, safety.program_violations(),
        run.deadlocked
            ? "deadlocked (fail-safe stop)"
            : (data_ok.eval(*sys.space, run.final_state)
                   ? "data correct at end"
                   : "data not yet correct"));
}

}  // namespace

int main() {
    std::printf("== memory access under page faults (paper Figs. 1-3) ==\n");
    auto sys = apps::make_memory_access();

    std::printf("\nmechanical verdicts (from invariant S = U1 /\\ X1):\n");
    std::printf("  program        | fail-safe | nonmasking | masking\n");
    std::printf("  ---------------+-----------+------------+--------\n");
    verdict_row(sys, sys.intolerant, "p (intolerant)");
    verdict_row(sys, sys.failsafe, "pf (Figure 1)");
    verdict_row(sys, sys.nonmasking, "pn (Figure 2)");
    verdict_row(sys, sys.masking, "pm (Figure 3)");

    std::printf("\nsimulated runs (random scheduler, page faults p=0.25):\n");
    simulate(sys, sys.intolerant, "p");
    simulate(sys, sys.failsafe, "pf");
    simulate(sys, sys.nonmasking, "pn");
    simulate(sys, sys.masking, "pm");

    std::printf(
        "\nreading: pf never writes a wrong value but may stop; pn keeps\n"
        "going and converges but can write wrong values while recovering;\n"
        "pm does neither — detector (pf1/pm2) + corrector (pn1/pm1)\n"
        "compose into masking tolerance, exactly the paper's thesis.\n");
    return 0;
}
