// Experiment A1: the alternating-bit protocol over lossy bounded channels
// — the paper's fault taxonomy on a message-passing system. Masking under
// loss and duplication, unsafe under corruption; goodput degrades
// gracefully with the loss rate.
#include "apps/alternating_bit.hpp"
#include "bench_util.hpp"
#include "runtime/experiment.hpp"
#include "verify/invariant.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

Predicate start_state(const apps::AlternatingBitSystem& sys) {
    const StateIndex init = sys.initial_state();
    return Predicate("init", [init](const StateSpace&, StateIndex s) {
        return s == init;
    });
}

void report() {
    header("A1: alternating-bit protocol over faulty channels");

    section("tolerance grid per channel fault class (exhaustive)");
    auto sys = apps::make_alternating_bit();
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    for (const auto& [faults, label] :
         std::vector<std::pair<const FaultClass*, const char*>>{
             {&sys.loss, "loss"},
             {&sys.duplication, "duplication"},
             {&sys.corruption, "corruption"}}) {
        std::printf("  %-12s fail-safe:%-3s masking:%-3s\n", label,
                    yn(check_failsafe(sys.protocol, *faults, sys.spec, inv)
                           .ok()),
                    yn(check_masking(sys.protocol, *faults, sys.spec, inv)
                           .ok()));
    }
    std::printf("  expected shape: masking under loss and duplication;\n"
                "  corruption breaks even fail-safety (ABP needs a\n"
                "  checksum detector for that).\n");

    section("goodput under loss (steps per delivered message; 300 runs, "
            "10-loss budget)");
    std::printf("  %-8s %-16s\n", "loss_p", "steps/message");
    for (double loss_p : {0.0, 0.1, 0.3, 0.5}) {
        Experiment ex;
        ex.program = &sys.protocol;
        ex.initial = sys.initial_state();
        ex.runs = 300;
        ex.options.max_steps = 8000;
        ex.options.stop_when = Predicate(
            "three-through",
            [sent = sys.sent](const StateSpace& sp, StateIndex s) {
                return sp.get(s, sent) == 3;
            });
        ex.faults = &sys.loss;
        ex.fault_probability = loss_p;
        ex.max_faults = 10;
        const BatchResult r = run_experiment(ex);
        std::printf("  %-8.2f %-16.1f\n", loss_p, r.steps.mean() / 3.0);
    }
    std::printf("  expected shape: graceful degradation — retransmission\n"
                "  pays for each loss with a bounded number of steps.\n");

    section("capacity / window sweep (masking under loss must hold "
            "throughout)");
    for (int capacity : {1, 2, 3}) {
        auto s2 = apps::make_alternating_bit(capacity, 4);
        const Predicate inv2 =
            reachable_invariant(s2.protocol, start_state(s2));
        std::printf("  capacity=%d: states=%-8llu masking:%s\n", capacity,
                    static_cast<unsigned long long>(
                        s2.space->num_states()),
                    yn(check_masking(s2.protocol, s2.loss, s2.spec, inv2)
                           .ok()));
    }
}

void BM_VerifyAbpMaskingUnderLoss(benchmark::State& state) {
    auto sys =
        apps::make_alternating_bit(static_cast<int>(state.range(0)), 4);
    const Predicate inv =
        reachable_invariant(sys.protocol, start_state(sys));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            check_masking(sys.protocol, sys.loss, sys.spec, inv));
    }
    state.SetLabel("capacity=" + std::to_string(state.range(0)) +
                   ", states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_VerifyAbpMaskingUnderLoss)->Arg(1)->Arg(2)->Arg(3);

void BM_SimulateAbp(benchmark::State& state) {
    auto sys = apps::make_alternating_bit();
    RandomScheduler scheduler;
    std::uint64_t seed = 1;
    const Predicate done(
        "done", [sent = sys.sent](const StateSpace& sp, StateIndex s) {
            return sp.get(s, sent) == 3;
        });
    for (auto _ : state) {
        Simulator sim(sys.protocol, scheduler, seed++);
        FaultInjector injector(sys.loss, 0.3, 10);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 8000;
        options.stop_when = done;
        benchmark::DoNotOptimize(sim.run(sys.initial_state(), options));
    }
}
BENCHMARK(BM_SimulateAbp);

}  // namespace

DCFT_BENCH_MAIN(report)
