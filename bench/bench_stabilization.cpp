// Experiment S2 (paper Sections 1, 7): the application-suite correctors —
// BFS spanning-tree maintenance and tree leader election. Convergence is
// verified exhaustively on small instances and its cost measured by
// simulation across topologies and sizes.
#include "apps/leader_election.hpp"
#include "apps/spanning_tree.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "runtime/simulator.hpp"
#include "verify/refinement.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

SummaryStats recovery_steps(const Program& p, const Predicate& target,
                            const std::vector<VarId>& vars,
                            const StateSpace& space, int runs,
                            std::uint64_t seed) {
    SummaryStats stats;
    RandomScheduler scheduler;
    Rng rng(seed);
    for (int i = 0; i < runs; ++i) {
        StateIndex from = 0;
        for (VarId v : vars)
            from = space.set(
                from, v,
                static_cast<Value>(rng.below(static_cast<std::uint64_t>(
                    space.variable(v).domain_size))));
        Simulator sim(p, scheduler, seed + 100 + i);
        RunOptions options;
        options.max_steps = 200000;
        options.stop_when = target;
        stats.add(static_cast<double>(sim.run(from, options).steps));
    }
    return stats;
}

void report() {
    header("S2: corrector applications — tree maintenance & election");

    section("BFS spanning tree: exhaustive convergence (small graphs)");
    for (const auto& [graph, label] :
         std::vector<std::pair<apps::Graph, const char*>>{
             {apps::path_graph(5), "path(5)"},
             {apps::cycle_graph(5), "cycle(5)"},
             {apps::star_graph(6), "star(6)"}}) {
        auto sys = apps::make_spanning_tree(graph);
        std::printf("  %-9s states=%-9llu converges:%s\n", label,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    yn(converges(sys.program, nullptr, Predicate::top(),
                                 sys.legitimate)
                           .ok));
    }

    section("BFS spanning tree: recovery steps from random corruption "
            "(200 runs)");
    std::printf("  %-11s %-10s %-10s %-10s\n", "topology", "mean", "p99",
                "max");
    for (int n : {6, 9, 12, 15}) {
        for (const auto& [graph, label] :
             std::vector<std::pair<apps::Graph, std::string>>{
                 {apps::path_graph(n), "path(" + std::to_string(n) + ")"},
                 {apps::star_graph(n), "star(" + std::to_string(n) + ")"}}) {
            auto sys = apps::make_spanning_tree(graph);
            const SummaryStats stats =
                recovery_steps(sys.program, sys.legitimate, sys.dist,
                               *sys.space, 200, 23);
            std::printf("  %-11s %-10.1f %-10.1f %-10.1f\n", label.c_str(),
                        stats.mean(), stats.percentile(0.99), stats.max());
        }
    }
    std::printf("  expected shape: recovery grows with graph diameter —\n"
                "  paths cost more than stars of the same size.\n");

    section("leader election: exhaustive convergence + recovery steps");
    for (int n : {3, 4}) {
        std::vector<int> parent(static_cast<std::size_t>(n), 0);
        for (int i = 1; i < n; ++i)
            parent[static_cast<std::size_t>(i)] = (i - 1) / 2;  // heap tree
        auto sys = apps::make_leader_election(parent);
        std::printf("  n=%d: converges:%s", n,
                    yn(converges(sys.program, nullptr, Predicate::top(),
                                 sys.legitimate)
                           .ok));
        std::vector<VarId> vars = sys.agg;
        vars.insert(vars.end(), sys.ldr.begin(), sys.ldr.end());
        const SummaryStats stats = recovery_steps(
            sys.program, sys.legitimate, vars, *sys.space, 200, 41);
        std::printf("  recovery mean=%.1f p99=%.1f\n", stats.mean(),
                    stats.percentile(0.99));
    }
    for (int n : {6, 8, 9}) {  // simulation only (space too large to check)
        std::vector<int> parent(static_cast<std::size_t>(n), 0);
        for (int i = 1; i < n; ++i)
            parent[static_cast<std::size_t>(i)] = (i - 1) / 2;
        auto sys = apps::make_leader_election(parent);
        std::vector<VarId> vars = sys.agg;
        vars.insert(vars.end(), sys.ldr.begin(), sys.ldr.end());
        const SummaryStats stats = recovery_steps(
            sys.program, sys.legitimate, vars, *sys.space, 200, 43);
        std::printf("  n=%d: recovery mean=%.1f p99=%.1f (simulation)\n", n,
                    stats.mean(), stats.percentile(0.99));
    }
}

void BM_SpanningTreeConvergenceCheck(benchmark::State& state) {
    auto sys = apps::make_spanning_tree(
        apps::path_graph(static_cast<int>(state.range(0))));
    for (auto _ : state) {
        benchmark::DoNotOptimize(converges(sys.program, nullptr,
                                           Predicate::top(),
                                           sys.legitimate));
    }
    state.SetLabel("path(" + std::to_string(state.range(0)) + ")");
}
BENCHMARK(BM_SpanningTreeConvergenceCheck)->Arg(4)->Arg(5)->Arg(6);

void BM_LeaderElectionRecoverySim(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    std::vector<int> parent(static_cast<std::size_t>(n), 0);
    for (int i = 1; i < n; ++i)
        parent[static_cast<std::size_t>(i)] = (i - 1) / 2;
    auto sys = apps::make_leader_election(parent);
    RandomScheduler scheduler;
    Rng rng(7);
    std::vector<VarId> vars = sys.agg;
    vars.insert(vars.end(), sys.ldr.begin(), sys.ldr.end());
    std::uint64_t seed = 500;
    for (auto _ : state) {
        StateIndex from = 0;
        for (VarId v : vars)
            from = sys.space->set(
                from, v,
                static_cast<Value>(rng.below(static_cast<std::uint64_t>(n))));
        Simulator sim(sys.program, scheduler, seed++);
        RunOptions options;
        options.max_steps = 200000;
        options.stop_when = sys.legitimate;
        benchmark::DoNotOptimize(sim.run(from, options));
    }
    state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_LeaderElectionRecoverySim)->Arg(4)->Arg(6)->Arg(9);

}  // namespace

DCFT_BENCH_MAIN(report)
