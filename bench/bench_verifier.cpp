// Verifier scaling: how the explicit-state checker behaves as the state
// space grows — transition-system construction, fair-convergence checking,
// and full masking verdicts. The substrate measurement for every other
// experiment (the paper itself proves by hand; this is our substitute's
// cost profile).
#include "apps/byzantine.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "verify/reachability.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

void report() {
    header("verifier scaling (substrate for all experiments)");

    section("explicit transition systems (token ring, K=n)");
    std::printf("  %-6s %-12s %-10s %-12s\n", "n", "states", "nodes",
                "prog-edges");
    for (int n = 3; n <= 7; ++n) {
        auto sys = apps::make_token_ring(n, n);
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top());
        std::printf("  %-6d %-12llu %-10zu %-12zu\n", n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    ts.num_nodes(), ts.num_program_edges());
    }

    section("Byzantine agreement verification sizes");
    for (int n : {3, 4, 5}) {
        auto sys = apps::make_byzantine(n, 1);
        const TransitionSystem ts(sys.masking, &sys.byzantine_fault,
                                  Predicate::top());
        std::printf("  n=%d: states=%llu, reachable nodes=%zu\n", n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    ts.num_nodes());
    }
}

void BM_BuildTransitionSystem(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            TransitionSystem(sys.ring, nullptr, Predicate::top()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sys.space->num_states()));
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_BuildTransitionSystem)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_FairConvergenceCheck(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(converges(sys.ring, nullptr,
                                           Predicate::top(),
                                           sys.legitimate));
    }
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_FairConvergenceCheck)->Arg(4)->Arg(5)->Arg(6);

void BM_MaskingVerdictByzantine(benchmark::State& state) {
    auto sys = apps::make_byzantine(static_cast<int>(state.range(0)), 1);
    // Invariant: fault-free reachable set, computed once outside the loop.
    const Predicate init("init", [&sys](const StateSpace& sp, StateIndex s) {
        if (sp.get(s, sys.b_g) != 0) return false;
        for (std::size_t i = 0; i < sys.d.size(); ++i) {
            if (sp.get(s, sys.b[i]) != 0) return false;
            if (sp.get(s, sys.d[i]) != 2) return false;
            if (sp.get(s, sys.out[i]) != 2) return false;
        }
        return true;
    });
    auto reach = std::make_shared<StateSet>(
        reachable_states(sys.masking, nullptr, init));
    const Predicate inv = predicate_of(std::move(reach), "inv");
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_masking(
            sys.masking, sys.byzantine_fault, sys.spec, inv));
    }
    state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MaskingVerdictByzantine)->Arg(3)->Arg(4);

}  // namespace

DCFT_BENCH_MAIN(report)
