// Verifier scaling: how the explicit-state checker behaves as the state
// space grows — transition-system construction, fair-convergence checking,
// and full tolerance verdicts. The substrate measurement for every other
// experiment (the paper itself proves by hand; this is our substitute's
// cost profile).
//
// Modes:
//   bench_verifier                      report + google-benchmark timings
//   bench_verifier --json[=FILE]        emit FILE (default
//                                       BENCH_verifier.json): wall-time per
//                                       app-system workload at 1/2/4/8
//                                       threads, states/sec for raw
//                                       exploration, and speedup against
//                                       the retained seed-era reference
//                                       implementation (verify/reference.hpp)
//   bench_verifier --json --smoke       reduced sizes / single rep — the
//                                       ctest smoke target
//
//   bench_verifier --json --large       additionally runs the
//                                       large-instance tier (token ring
//                                       n=8: 16.7M states; Byzantine n=5;
//                                       forced-sparse interner; early-exit
//                                       vs full fail-safe query; persistent
//                                       graph store cold-explore vs
//                                       warm-mmap on the n=8 ring), single
//                                       rep, with states/sec and peak-RSS
//                                       columns
//   bench_verifier --json --huge        additionally runs the out-of-core
//                                       tier: token ring n=9 (40.4M
//                                       states, above the 2^25 direct-map
//                                       ceiling) built with
//                                       ExploreOptions::spill, reporting
//                                       spill volume and peak RSS, plus an
//                                       in-core-vs-spill differential on
//                                       the n=8 ring proving the spilled
//                                       graph is bit-identical
//   --trace=FILE                        record the whole run with
//                                       obs/trace.hpp and write Chrome
//                                       trace-event JSON to FILE
//   --threads=A,B,...                   explicit thread-sweep override: the
//                                       listed counts are swept verbatim,
//                                       bypassing the hardware_concurrency
//                                       truncation (DCFT_VERIFIER_THREADS
//                                       set to a count or comma list at
//                                       startup acts the same way) — on a
//                                       1-core CI box the sweep would
//                                       otherwise collapse to {1}
//
// Thread sweeps work by setting DCFT_VERIFIER_THREADS between
// measurements; default_verifier_threads() re-reads the environment on
// every call for exactly this purpose.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "apps/byzantine.hpp"
#include "apps/catalog.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "obs/proc_stats.hpp"
#include "obs/trace.hpp"
#include "runtime/estimate.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/masking_distance.hpp"
#include "verify/reachability.hpp"
#include "verify/reference.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

void report() {
    header("verifier scaling (substrate for all experiments)");

    section("explicit transition systems (token ring, K=n)");
    std::printf("  %-6s %-12s %-10s %-12s\n", "n", "states", "nodes",
                "prog-edges");
    for (int n = 3; n <= 7; ++n) {
        auto sys = apps::make_token_ring(n, n);
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top());
        std::printf("  %-6d %-12llu %-10zu %-12zu\n", n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    ts.num_nodes(), ts.num_program_edges());
    }

    section("Byzantine agreement verification sizes");
    for (int n : {3, 4, 5}) {
        auto sys = apps::make_byzantine(n, 1);
        const TransitionSystem ts(sys.masking, &sys.byzantine_fault,
                                  Predicate::top());
        std::printf("  n=%d: states=%llu, reachable nodes=%zu\n", n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    ts.num_nodes());
    }
}

void BM_BuildTransitionSystem(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            TransitionSystem(sys.ring, nullptr, Predicate::top()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sys.space->num_states()));
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_BuildTransitionSystem)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_FairConvergenceCheck(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(converges(sys.ring, nullptr,
                                           Predicate::top(),
                                           sys.legitimate));
    }
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_FairConvergenceCheck)->Arg(4)->Arg(5)->Arg(6);

/// Fault-free reachable invariant of the Byzantine system (the masking
/// verdicts are measured from it, matching the app tests).
Predicate byzantine_invariant(const apps::ByzantineSystem& sys) {
    const Predicate init("init", [&sys](const StateSpace& sp, StateIndex s) {
        if (sp.get(s, sys.b_g) != 0) return false;
        for (std::size_t i = 0; i < sys.d.size(); ++i) {
            if (sp.get(s, sys.b[i]) != 0) return false;
            if (sp.get(s, sys.d[i]) != 2) return false;
            if (sp.get(s, sys.out[i]) != 2) return false;
        }
        return true;
    });
    auto reach = std::make_shared<StateSet>(
        reachable_states(sys.masking, nullptr, init));
    return predicate_of(std::move(reach), "inv");
}

void BM_MaskingVerdictByzantine(benchmark::State& state) {
    auto sys = apps::make_byzantine(static_cast<int>(state.range(0)), 1);
    const Predicate inv = byzantine_invariant(sys);
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_masking(
            sys.masking, sys.byzantine_fault, sys.spec, inv));
    }
    state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MaskingVerdictByzantine)->Arg(3)->Arg(4);

// ---------------------------------------------------------------------------
// JSON series: wall-time per app system, thread sweep, speedup vs the seed
// reference. This is the evidence file EXPERIMENTS.md quotes.

/// Best-of-N wall time in milliseconds. Repeats until ~0.3 s total (max 5
/// reps) so short workloads are stable; smoke mode runs best-of-3 with no
/// time floor (bench_compare diffs smoke best_ms against the committed
/// baseline, so single-rep jitter would make that test flaky).
template <typename Fn>
double time_ms(Fn&& fn, bool smoke) {
    using clock = std::chrono::steady_clock;
    const int max_reps = smoke ? 3 : 5;
    const double min_total_ms = 300.0;
    double best = 0.0, total = 0.0;
    for (int rep = 0; rep < max_reps; ++rep) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best = rep == 0 ? ms : std::min(best, ms);
        total += ms;
        if (smoke) continue;  // always best-of-3, however small
        if (total >= min_total_ms && rep > 0) break;
        if (total >= 4.0 * min_total_ms) break;  // one rep was plenty
    }
    return best;
}

/// Single-shot wall time for the --large tier (those workloads run
/// seconds to tens of seconds; best-of-N would triple the tier's runtime
/// for no extra signal).
template <typename Fn>
double time_once_ms(Fn&& fn) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Peak resident set size (VmHWM) in MiB, or -1 when unavailable
/// (non-Linux). Thin shim over obs/proc_stats.hpp keeping the -1
/// sentinel the JSON emitter expects.
double peak_rss_mb() { return obs::peak_rss_mb().value_or(-1.0); }

/// Best-effort reset of the peak-RSS watermark so each large workload
/// reports its own peak (obs::reset_peak_rss: malloc_trim + clear_refs).
/// On failure the next reading is an over-estimate taken over the whole
/// process lifetime — never an under-estimate.
void reset_peak_rss() { obs::reset_peak_rss(); }

/// Parses a comma-separated thread list ("1,2,8") for the --threads
/// override / DCFT_VERIFIER_THREADS startup value. Empty vector on any
/// malformed token.
std::vector<unsigned> parse_thread_list(const std::string& s) {
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos) comma = s.size();
        const std::string tok = s.substr(pos, comma - pos);
        if (tok.empty()) return {};
        char* end = nullptr;
        const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || v == 0 || v > 1024) return {};
        out.push_back(static_cast<unsigned>(v));
        if (comma == s.size()) break;
        pos = comma + 1;
    }
    return out;
}

struct Workload {
    std::string name;    ///< stable key, e.g. "verdict/token_ring_n7_nonmasking"
    std::string kind;    ///< "ts_build" | "tolerance_verdict"
    std::string system;  ///< human description
    std::uint64_t states = 0;
    std::uint64_t nodes = 0;
    std::uint64_t program_edges = 0;
    bool has_verdict = false;
    bool verdict_ok = false;
    std::uint64_t invariant_size = 0;
    std::uint64_t span_size = 0;
    double reference_ms = 0.0;
    double interpreted_ms = 0.0;  ///< DCFT_NO_COMPILE=1, 1 thread (ablation)
    double peak_rss_mb = -1.0;    ///< VmHWM across the sweep (large tier only)
    double full_ms = 0.0;         ///< kind "early_exit": full exploration
    double early_exit_ms = 0.0;   ///< kind "early_exit": stop-predicate run
    std::uint64_t spill_bytes = 0;           ///< huge tier: spill volume
    std::uint64_t spill_released_bytes = 0;  ///< huge tier: RSS released
    int differential_identical = -1;  ///< "spill_differential": 1 ok, 0 not
    double store_cold_ms = 0.0;  ///< kind "graph_store": explore + publish
    double store_warm_ms = 0.0;  ///< kind "graph_store": mmap adoption hit
    std::uint64_t store_file_bytes = 0;  ///< kind "graph_store": snapshot size
    double game_ms = 0.0;            ///< kind "graded": cold game solve
    std::int64_t distance = -1;      ///< kind "graded": -1 = masking (inf)
    double violation_rate = -1.0;    ///< kind "graded": MC violation rate
    std::vector<std::pair<unsigned, double>> ms_by_threads;

    double best_ms() const {
        double best = ms_by_threads.front().second;
        for (const auto& [t, ms] : ms_by_threads) best = std::min(best, ms);
        return best;
    }
    unsigned best_threads() const {
        auto best = ms_by_threads.front();
        for (const auto& p : ms_by_threads)
            if (p.second < best.second) best = p;
        return best.first;
    }
};

void set_verifier_threads(unsigned t) {
    setenv("DCFT_VERIFIER_THREADS", std::to_string(t).c_str(), 1);
}

/// RAII: forces the interpreted (DCFT_NO_COMPILE=1) path for one scope —
/// the compiled-vs-interpreted ablation column of the JSON series.
struct ScopedNoCompile {
    ScopedNoCompile() { setenv("DCFT_NO_COMPILE", "1", 1); }
    ~ScopedNoCompile() { unsetenv("DCFT_NO_COMPILE"); }
};

/// Thread counts actually swept: counts above hardware_concurrency are
/// dropped (oversubscribed sweeps on a small host measure scheduler noise,
/// not the verifier). The JSON records whether truncation happened.
std::vector<unsigned> usable_thread_counts(
    const std::vector<unsigned>& requested, bool& truncated) {
    const unsigned hc = std::thread::hardware_concurrency();
    truncated = false;
    if (hc == 0) return requested;  // unknown: sweep everything
    std::vector<unsigned> out;
    for (const unsigned t : requested) {
        if (t <= hc)
            out.push_back(t);
        else
            truncated = true;
    }
    if (out.empty()) out.push_back(1);
    return out;
}

/// Raw exploration: optimized TransitionSystem vs the seed FIFO explorer.
Workload bench_ts_build(int n, const std::vector<unsigned>& threads,
                        bool smoke) {
    auto sys = apps::make_token_ring(n, n);
    Workload w;
    w.name = "ts_build/token_ring_n" + std::to_string(n);
    w.kind = "ts_build";
    w.system = "token ring (n=" + std::to_string(n) +
               ", K=" + std::to_string(n) + "), program only, init=true";
    w.states = sys.space->num_states();
    {
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top());
        w.nodes = ts.num_nodes();
        w.program_edges = ts.num_program_edges();
    }
    w.reference_ms = time_ms(
        [&] {
            const reference::RefTransitionSystem ref(sys.ring, nullptr,
                                                     Predicate::top());
            benchmark::DoNotOptimize(ref.num_nodes());
        },
        smoke);
    {
        const ScopedNoCompile interp;
        w.interpreted_ms = time_ms(
            [&] {
                const TransitionSystem ts(sys.ring, nullptr,
                                          Predicate::top(), 1);
                benchmark::DoNotOptimize(ts.num_nodes());
            },
            smoke);
    }
    for (const unsigned t : threads) {
        const double ms = time_ms(
            [&] {
                const TransitionSystem ts(sys.ring, nullptr,
                                          Predicate::top(), t);
                benchmark::DoNotOptimize(ts.num_nodes());
            },
            smoke);
        w.ms_by_threads.emplace_back(t, ms);
    }
    return w;
}

/// Full tolerance verdict: optimized pipeline vs the seed pipeline.
Workload bench_verdict(const std::string& name, const std::string& system,
                       const Program& p, const FaultClass& f,
                       const ProblemSpec& spec, const Predicate& inv,
                       Tolerance grade, const std::vector<unsigned>& threads,
                       bool smoke) {
    Workload w;
    w.name = name;
    w.kind = "tolerance_verdict";
    w.system = system;
    w.states = p.space().num_states();
    w.has_verdict = true;
    {
        const ToleranceReport r = check_tolerance(p, f, spec, inv, grade);
        w.verdict_ok = r.ok();
        w.invariant_size = r.invariant_size;
        w.span_size = r.span_size;
    }
    w.reference_ms = time_ms(
        [&] {
            benchmark::DoNotOptimize(
                reference::ref_check_tolerance(p, f, spec, inv, grade));
        },
        smoke);
    // The verdict pipeline shares explorations through the process-wide
    // ExplorationCache; clearing it inside the timed region keeps every
    // rep an honest cold-start build (otherwise rep 2+ would measure
    // cache hits, not verification).
    {
        const ScopedNoCompile interp;
        w.interpreted_ms = time_ms(
            [&] {
                ExplorationCache::global().clear();
                benchmark::DoNotOptimize(
                    check_tolerance(p, f, spec, inv, grade));
            },
            smoke);
    }
    for (const unsigned t : threads) {
        set_verifier_threads(t);
        const double ms = time_ms(
            [&] {
                ExplorationCache::global().clear();
                benchmark::DoNotOptimize(
                    check_tolerance(p, f, spec, inv, grade));
            },
            smoke);
        w.ms_by_threads.emplace_back(t, ms);
    }
    unsetenv("DCFT_VERIFIER_THREADS");
    return w;
}

/// Graded verdict: the masking-distance game (cold exploration every rep)
/// plus the catalog-standard 200-run fixed-seed Monte Carlo estimate,
/// swept over Monte Carlo thread counts (the estimate is bit-identical
/// across the sweep; the columns measure pure scheduling overhead/gain).
Workload bench_graded(const std::string& name, const std::string& system,
                      const apps::SystemInstance& sys, const Program& p,
                      const std::vector<unsigned>& threads, bool smoke) {
    Workload w;
    w.name = name;
    w.kind = "graded";
    w.system = system;
    w.states = p.space().num_states();
    w.game_ms = time_ms(
        [&] {
            ExplorationCache::global().clear();
            const MaskingDistanceResult r =
                masking_distance(p, *sys.faults, sys.spec, sys.invariant);
            benchmark::DoNotOptimize(r.game_nodes);
            w.distance =
                r.masking ? -1 : static_cast<std::int64_t>(r.distance);
            w.nodes = r.game_nodes;
        },
        smoke);
    ToleranceEstimateOptions options;  // catalog-standard: 200 runs, seed 1
    for (const unsigned t : threads) {
        options.threads = t;
        const double ms = time_ms(
            [&] {
                const ToleranceEstimate e = estimate_tolerance(
                    p, *sys.faults, sys.spec, sys.invariant, sys.initial,
                    options);
                benchmark::DoNotOptimize(e.batch.runs);
                w.violation_rate = e.violation_rate();
            },
            smoke);
        w.ms_by_threads.emplace_back(t, ms);
    }
    ExplorationCache::global().clear();
    return w;
}

// ---------------------------------------------------------------------------
// Large-instance tier (--large): 10^7-state explorations, the forced-sparse
// interner, and the early-exit fail-safe query. One rep per point (seconds
// to tens of seconds each), peak-RSS sampled across the sweep.

/// Raw exploration of a large system, one rep per thread count.
Workload bench_large_ts_build(const std::string& name,
                              const std::string& system, const Program& p,
                              const FaultClass* f, const Predicate& init,
                              const std::vector<unsigned>& threads) {
    Workload w;
    w.name = name;
    w.kind = "ts_build";
    w.system = system;
    w.states = p.space().num_states();
    reset_peak_rss();
    for (const unsigned t : threads) {
        const double ms = time_once_ms([&] {
            const TransitionSystem ts(p, f, init, t);
            benchmark::DoNotOptimize(ts.num_nodes());
            if (w.nodes == 0) {
                w.nodes = ts.num_nodes();
                w.program_edges = ts.num_program_edges();
            }
        });
        w.ms_by_threads.emplace_back(t, ms);
    }
    w.peak_rss_mb = peak_rss_mb();
    return w;
}

/// The failing fail-safe query on the n=8 ring (16.7M states), with and
/// without ToleranceOptions::early_exit. The bad predicate is reachable
/// at fault depth 1 from the legitimate states, so the early-exit run
/// stops after a handful of BFS levels while the full pipeline explores
/// the entire p[]F graph; the acceptance bar is a >=10x gap. Peak RSS is
/// sampled after the full run (the early-exit fragment's footprint is
/// negligible by comparison).
Workload bench_large_early_exit(const std::vector<unsigned>& threads) {
    auto sys = apps::make_token_ring(8, 8);
    Workload w;
    w.name = "large/earlyexit/token_ring_n8_failsafe";
    w.kind = "early_exit";
    w.system =
        "token ring (n=8, K=8), corrupt-any faults, fail-safe verdict "
        "from the legitimate states (verdict: fail)";
    w.states = sys.space->num_states();
    const unsigned t = threads.empty() ? 1 : threads.front();
    set_verifier_threads(t);
    reset_peak_rss();
    w.early_exit_ms = time_once_ms([&] {
        ExplorationCache::global().clear();
        const ToleranceReport r = check_tolerance(
            sys.ring, sys.corrupt_any, sys.spec, sys.legitimate,
            Tolerance::FailSafe, ToleranceOptions{.early_exit = true});
        w.verdict_ok = r.ok();
        w.invariant_size = r.invariant_size;
        w.span_size = r.span_size;  // prefix lower bound on early exit
    });
    w.has_verdict = true;
    w.full_ms = time_once_ms([&] {
        ExplorationCache::global().clear();
        benchmark::DoNotOptimize(
            check_tolerance(sys.ring, sys.corrupt_any, sys.spec,
                            sys.legitimate, Tolerance::FailSafe));
    });
    ExplorationCache::global().clear();
    unsetenv("DCFT_VERIFIER_THREADS");
    w.peak_rss_mb = peak_rss_mb();
    w.ms_by_threads.emplace_back(t, w.early_exit_ms);
    return w;
}

// ---------------------------------------------------------------------------
// Out-of-core tier (--huge): an instance above the in-core direct-map
// ceiling (DCFT_DIRECT_MAP_MAX defaults to 2^25 = 33.6M states) built with
// ExploreOptions::spill, plus a bit-identity differential proving the
// spilled CSR equals the in-core one on an instance small enough to build
// both ways.

/// Token ring n=9, K=7: 7^9 = 40.35M states, ~283M program edges (~2.3 GB
/// of CSR) — past the direct-map ceiling, built out-of-core. Records the
/// spill volume and the bytes advised out of RSS alongside the usual
/// throughput columns; peak RSS shows the resident window, not the graph.
Workload bench_huge_spill(const std::vector<unsigned>& threads) {
    auto sys = apps::make_token_ring(9, 7);
    Workload w;
    w.name = "huge/ts_build/token_ring_n9_spill";
    w.kind = "ts_build";
    w.system =
        "token ring (n=9, K=7), program only, init=true, out-of-core "
        "(ExploreOptions::spill)";
    w.states = sys.space->num_states();
    const unsigned t = threads.empty() ? 1 : threads.front();
    reset_peak_rss();
    const double ms = time_once_ms([&] {
        ExploreOptions opts;
        opts.n_threads = t;
        opts.spill = true;
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top(), opts);
        benchmark::DoNotOptimize(ts.num_nodes());
        w.nodes = ts.num_nodes();
        w.program_edges = ts.num_program_edges();
        w.spill_bytes = ts.spill_bytes();
        w.spill_released_bytes = ts.spill_released_bytes();
    });
    w.ms_by_threads.emplace_back(t, ms);
    w.peak_rss_mb = peak_rss_mb();
    return w;
}

/// In-core vs out-of-core differential on the n=8 ring (5.76M states):
/// both builds must agree on numbering and every CSR row bit-for-bit —
/// the spill evidence that makes the n=9 number trustworthy. The recorded
/// time is the spilled build; differential_identical lands in the JSON.
Workload bench_huge_differential(const std::vector<unsigned>& threads) {
    auto sys = apps::make_token_ring(8, 7);
    Workload w;
    w.name = "huge/spill_differential/token_ring_n8";
    w.kind = "spill_differential";
    w.system =
        "token ring (n=8, K=7), program only, init=true: out-of-core build "
        "vs in-core build, bit-identity check";
    w.states = sys.space->num_states();
    const unsigned t = threads.empty() ? 1 : threads.front();
    const TransitionSystem in_core(sys.ring, nullptr, Predicate::top(), t);
    ExploreOptions opts;
    opts.n_threads = t;
    opts.spill = true;
    double spilled_ms = 0.0;
    std::unique_ptr<TransitionSystem> spilled;
    spilled_ms = time_once_ms([&] {
        spilled = std::make_unique<TransitionSystem>(sys.ring, nullptr,
                                                     Predicate::top(), opts);
    });
    w.nodes = in_core.num_nodes();
    w.program_edges = in_core.num_program_edges();
    w.spill_bytes = spilled->spill_bytes();
    bool same = in_core.num_nodes() == spilled->num_nodes() &&
                in_core.num_program_edges() == spilled->num_program_edges();
    for (NodeId n = 0; same && n < in_core.num_nodes(); ++n) {
        if (in_core.state_of(n) != spilled->state_of(n)) same = false;
        const auto a = in_core.program_edges(n);
        const auto b = spilled->program_edges(n);
        if (a.size() != b.size() ||
            !std::equal(a.begin(), a.end(), b.begin()))
            same = false;
    }
    w.differential_identical = same ? 1 : 0;
    if (!same)
        std::fprintf(stderr,
                     "huge: SPILL DIFFERENTIAL MISMATCH on %s\n",
                     w.name.c_str());
    w.ms_by_threads.emplace_back(t, spilled_ms);
    return w;
}

/// Persistent graph store: the same exploration served cold (full BFS
/// plus snapshot publish into an empty DCFT_GRAPH_STORE directory) and
/// warm (exploration cache dropped, the graph mmap-adopted back from the
/// store — what a process restart or a second process pays). The
/// acceptance bar is a >=10x cold/warm gap on the n=8 ring; both numbers
/// land in the JSON as store_cold_ms / store_warm_ms.
Workload bench_large_store(const std::vector<unsigned>& threads) {
    auto sys = apps::make_token_ring(8, 8);
    Workload w;
    w.name = "large/store/token_ring_n8";
    w.kind = "graph_store";
    w.system =
        "token ring (n=8, K=8), program only, init=true: cold explore + "
        "dcft.graph publish vs warm mmap adoption (DCFT_GRAPH_STORE)";
    w.states = sys.space->num_states();

    char dir_template[] = "/tmp/dcft-bench-store-XXXXXX";
    if (::mkdtemp(dir_template) == nullptr) {
        std::fprintf(stderr, "graph_store bench: mkdtemp failed\n");
        w.ms_by_threads.emplace_back(1u, 0.0);
        return w;
    }
    const std::string dir = dir_template;
    setenv("DCFT_GRAPH_STORE", dir.c_str(), 1);
    const unsigned t = threads.empty() ? 1 : threads.front();
    ExplorationCache& cache = ExplorationCache::global();
    cache.clear();
    reset_peak_rss();
    w.store_cold_ms = time_once_ms([&] {
        const auto ts =
            cache.get_or_build(sys.ring, nullptr, Predicate::top(), t);
        benchmark::DoNotOptimize(ts->num_nodes());
        w.nodes = ts->num_nodes();
        w.program_edges = ts->num_program_edges();
    });
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".dcftg")
            w.store_file_bytes += entry.file_size();
    // A restart: the in-memory cache is gone, only the store survives.
    cache.clear();
    w.store_warm_ms = time_once_ms([&] {
        const auto ts =
            cache.get_or_build(sys.ring, nullptr, Predicate::top(), t);
        benchmark::DoNotOptimize(ts->num_nodes());
    });
    cache.clear();
    unsetenv("DCFT_GRAPH_STORE");
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    w.peak_rss_mb = peak_rss_mb();
    w.ms_by_threads.emplace_back(t, w.store_warm_ms);
    return w;
}

void write_json(const std::string& path, const std::vector<Workload>& ws,
                const std::vector<unsigned>& threads, bool truncated,
                bool overridden, bool smoke, bool large, bool huge) {
    // Same envelope as dcft_cli run reports (schema "dcft.report",
    // "kind": "bench"); the payload keys below are unchanged from the
    // original emitter so EXPERIMENTS.md readers keep working.
    std::string args = "--json";
    if (smoke) args += " --smoke";
    if (large) args += " --large";
    if (huge) args += " --huge";
    obs::JsonWriter w;
    begin_bench_json(w, "bench_verifier", args);
    w.kv("bench", "verifier");
    w.kv("smoke", smoke);
    w.kv("large", large);
    w.kv("huge", huge);
    w.kv("hardware_concurrency", std::thread::hardware_concurrency());
    w.key("thread_counts");
    w.begin_array();
    for (const unsigned t : threads) w.value(t);
    w.end_array();
    w.kv("thread_sweep_truncated", truncated);
    w.kv("thread_sweep_overridden", overridden);
    w.kv("timing", "best-of-N wall clock, ms");
    w.kv("reference",
         "seed-era sequential implementation (src/verify/reference.hpp)");
    w.key("workloads");
    w.begin_array();
    for (const Workload& wl : ws) {
        w.begin_object();
        w.kv("name", wl.name);
        w.kv("kind", wl.kind);
        w.kv("system", wl.system);
        w.kv("states", wl.states);
        if (wl.kind == "ts_build" || wl.kind == "spill_differential" ||
            wl.kind == "graph_store") {
            w.kv("nodes", wl.nodes);
            w.kv("program_edges", wl.program_edges);
        }
        if (wl.spill_bytes > 0) {
            w.kv("spill_bytes", wl.spill_bytes);
            w.kv("spill_released_bytes", wl.spill_released_bytes);
        }
        if (wl.differential_identical >= 0)
            w.kv("identical", wl.differential_identical == 1);
        if (wl.has_verdict) {
            w.kv("verdict", wl.verdict_ok ? "pass" : "fail");
            w.kv("invariant_size", wl.invariant_size);
            w.kv("span_size", wl.span_size);
        }
        // Large-tier workloads skip the seed reference / interpreted
        // ablations (the seed explorer on 16.7M states would dominate the
        // whole run); their keys are simply absent rather than zero.
        if (wl.reference_ms > 0) w.kv("reference_ms", wl.reference_ms);
        if (wl.interpreted_ms > 0) w.kv("interpreted_ms", wl.interpreted_ms);
        w.key("ms_by_threads");
        w.begin_object();
        for (const auto& [t, ms] : wl.ms_by_threads)
            w.kv(std::to_string(t), ms);
        w.end_object();
        const double best = wl.best_ms();
        w.kv("best_ms", best);
        w.kv("best_threads", wl.best_threads());
        if (wl.kind == "ts_build")
            w.kv("states_per_sec",
                 best > 0 ? 1000.0 * static_cast<double>(wl.nodes) / best
                          : 0.0);
        if (wl.kind == "early_exit") {
            w.kv("full_ms", wl.full_ms);
            w.kv("early_exit_ms", wl.early_exit_ms);
            w.kv("speedup_early_exit",
                 wl.early_exit_ms > 0 ? wl.full_ms / wl.early_exit_ms : 0.0);
        }
        if (wl.kind == "graph_store") {
            w.kv("store_cold_ms", wl.store_cold_ms);
            w.kv("store_warm_ms", wl.store_warm_ms);
            w.kv("store_file_bytes", wl.store_file_bytes);
            w.kv("speedup_store_warm",
                 wl.store_warm_ms > 0 ? wl.store_cold_ms / wl.store_warm_ms
                                      : 0.0);
        }
        if (wl.kind == "graded") {
            w.kv("game_ms", wl.game_ms);
            w.kv("game_nodes", wl.nodes);
            w.kv("masking", wl.distance < 0);
            if (wl.distance >= 0)
                w.kv("distance", static_cast<std::uint64_t>(wl.distance));
            w.kv("violation_rate", wl.violation_rate);
        }
        if (wl.peak_rss_mb >= 0) w.kv("peak_rss_mb", wl.peak_rss_mb);
        if (wl.reference_ms > 0)
            w.kv("speedup_vs_reference",
                 best > 0 ? wl.reference_ms / best : 0.0);
        if (wl.interpreted_ms > 0)
            w.kv("speedup_vs_interpreted",
                 best > 0 ? wl.interpreted_ms / best : 0.0);
        w.end_object();
    }
    w.end_array();
    if (!finish_bench_json(w, path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
}

int emit_json(const std::string& path, bool smoke, bool large, bool huge,
              const std::vector<unsigned>& thread_override) {
    const std::vector<unsigned> requested =
        smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
    bool truncated = false;
    const bool overridden = !thread_override.empty();
    std::vector<unsigned> threads;
    if (overridden) {
        // Explicit list (--threads or DCFT_VERIFIER_THREADS at startup):
        // swept verbatim, no hardware_concurrency truncation. On a 1-core
        // CI box the default sweep collapses to {1}; the override is how
        // the committed multi-thread baseline is produced there.
        threads = thread_override;
        std::printf("thread sweep override: ");
        for (const unsigned t : threads) std::printf("%u ", t);
        std::printf("\n");
    } else {
        threads = usable_thread_counts(requested, truncated);
        if (truncated)
            std::printf(
                "thread sweep truncated to hardware_concurrency=%u\n",
                std::thread::hardware_concurrency());
    }
    std::vector<Workload> ws;

    // Raw exploration throughput (token ring, program only). The full
    // series includes the smoke sizes so the bench_compare smoke target
    // can diff smoke output against the committed full baseline.
    for (const int n :
         smoke ? std::vector<int>{5} : std::vector<int>{5, 6, 7}) {
        std::printf("ts_build: token ring n=%d ...\n", n);
        ws.push_back(bench_ts_build(n, threads, smoke));
    }

    // Nonmasking verdicts: Dijkstra's ring under arbitrary corruption.
    for (const int n :
         smoke ? std::vector<int>{4} : std::vector<int>{4, 5, 6, 7}) {
        std::printf("verdict: token ring n=%d nonmasking ...\n", n);
        auto sys = apps::make_token_ring(n, n);
        ws.push_back(bench_verdict(
            "verdict/token_ring_n" + std::to_string(n) + "_nonmasking",
            "token ring (n=" + std::to_string(n) +
                ", K=" + std::to_string(n) + "), corrupt-any faults",
            sys.ring, sys.corrupt_any, sys.spec, sys.legitimate,
            Tolerance::Nonmasking, threads, smoke));
    }

    // Masking verdicts: Byzantine agreement (Section 6.2).
    for (const int n : smoke ? std::vector<int>{3} : std::vector<int>{3, 4}) {
        std::printf("verdict: byzantine n=%d masking ...\n", n);
        auto sys = apps::make_byzantine(n, 1);
        const Predicate inv = byzantine_invariant(sys);
        ws.push_back(bench_verdict(
            "verdict/byzantine_n" + std::to_string(n) + "_masking",
            "Byzantine agreement (n=" + std::to_string(n) + ", f=1)",
            sys.masking, sys.byzantine_fault, sys.spec, inv,
            Tolerance::Masking, threads, smoke));
    }

    // Graded verdicts: the masking-distance game + the catalog-standard
    // Monte Carlo estimate (the `dcft verify --graded` cost profile). The
    // smoke sizes are members of the full series so bench_compare can
    // diff them against the committed baseline.
    for (const int n : smoke ? std::vector<int>{4} : std::vector<int>{4, 5}) {
        std::printf("graded: token ring n=%d ...\n", n);
        const auto sys = apps::load_system("token-ring", n);
        ws.push_back(bench_graded(
            "graded/token_ring_n" + std::to_string(n),
            "token ring (n=" + std::to_string(n) + ", K=" +
                std::to_string(n) +
                "), corrupt-any faults: masking-distance game + 200-run "
                "Monte Carlo (thread sweep = MC threads)",
            sys, sys.variants.begin()->second, threads, smoke));
    }
    {
        std::printf("graded: byzantine n=3 masking ...\n");
        const auto sys = apps::load_system("byzantine", 3);
        ws.push_back(bench_graded(
            "graded/byzantine_n3_masking",
            "Byzantine agreement (n=3, f=1), masking variant: "
            "masking-distance game + 200-run Monte Carlo (thread sweep = "
            "MC threads)",
            sys, sys.variants.at("masking"), threads, smoke));
    }

    // Large-instance tier: only on request — these run seconds to tens of
    // seconds per point and allocate gigabytes.
    if (large) {
        {
            std::printf("large: ts_build token ring n=8 (16.7M states) ...\n");
            auto sys = apps::make_token_ring(8, 8);
            ws.push_back(bench_large_ts_build(
                "large/ts_build/token_ring_n8",
                "token ring (n=8, K=8), program only, init=true",
                sys.ring, nullptr, Predicate::top(), threads));
        }
        {
            std::printf("large: ts_build byzantine n=5 ...\n");
            auto sys = apps::make_byzantine(5, 1);
            ws.push_back(bench_large_ts_build(
                "large/ts_build/byzantine_n5",
                "Byzantine agreement (n=5, f=1), masking program with "
                "Byzantine faults, init=true",
                sys.masking, &sys.byzantine_fault, Predicate::top(),
                threads));
        }
        {
            // Interner ablation: the same fault-closed exploration with
            // the direct-mapped tier (default) and with the sparse
            // sharded table forced via DCFT_DIRECT_MAP_MAX=1024.
            std::printf("large: interner sparse-vs-direct n=7 ...\n");
            auto sys = apps::make_token_ring(7, 7);
            ws.push_back(bench_large_ts_build(
                "large/ts_build/token_ring_n7_faults_direct",
                "token ring (n=7, K=7), corrupt-any faults from the "
                "legitimate states, direct-mapped interner",
                sys.ring, &sys.corrupt_any, sys.legitimate, threads));
            setenv("DCFT_DIRECT_MAP_MAX", "1024", 1);
            ws.push_back(bench_large_ts_build(
                "large/ts_build/token_ring_n7_faults_sparse",
                "token ring (n=7, K=7), corrupt-any faults from the "
                "legitimate states, sparse sharded interner "
                "(DCFT_DIRECT_MAP_MAX=1024)",
                sys.ring, &sys.corrupt_any, sys.legitimate, threads));
            unsetenv("DCFT_DIRECT_MAP_MAX");
        }
        std::printf("large: early-exit vs full fail-safe n=8 ...\n");
        ws.push_back(bench_large_early_exit(threads));
        std::printf("large: graph store cold vs warm n=8 ...\n");
        ws.push_back(bench_large_store(threads));
    }

    // Out-of-core tier: one instance past the direct-map ceiling built
    // with spilling, plus the in-core-vs-spill bit-identity differential.
    int huge_mismatch = 0;
    if (huge) {
        std::printf("huge: ts_build token ring n=9 spilled (40.4M states) ...\n");
        ws.push_back(bench_huge_spill(threads));
        std::printf("huge: spill differential token ring n=8 ...\n");
        ws.push_back(bench_huge_differential(threads));
        if (ws.back().differential_identical != 1) huge_mismatch = 1;
    }

    write_json(path, ws, threads, truncated, overridden, smoke, large, huge);
    std::printf("wrote %s (%zu workloads)\n", path.c_str(), ws.size());
    for (const Workload& w : ws)
        std::printf(
            "  %-40s ref=%9.2fms interp=%9.2fms best=%9.2fms "
            "speedup=%.2fx (vs interp %.2fx)\n",
            w.name.c_str(), w.reference_ms, w.interpreted_ms, w.best_ms(),
            w.best_ms() > 0 ? w.reference_ms / w.best_ms() : 0.0,
            w.best_ms() > 0 ? w.interpreted_ms / w.best_ms() : 0.0);
    return huge_mismatch;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    std::string trace_path;
    bool smoke = false;
    bool large = false;
    bool huge = false;
    std::vector<unsigned> thread_override;
    std::vector<char*> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json") {
            json_path = "BENCH_verifier.json";
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else if (arg == "--large") {
            large = true;
        } else if (arg == "--huge") {
            huge = true;
        } else if (arg.rfind("--threads=", 0) == 0 ||
                   (arg == "--threads" && i + 1 < argc)) {
            const std::string list =
                arg == "--threads" ? argv[++i] : arg.substr(10);
            thread_override = parse_thread_list(list);
            if (thread_override.empty()) {
                std::fprintf(stderr, "bad --threads list: %s\n",
                             list.c_str());
                return 2;
            }
        } else {
            rest.push_back(argv[i]);
        }
    }
    // DCFT_VERIFIER_THREADS at startup acts like --threads (the sweeps
    // below mutate the variable, so it must be captured now). The flag
    // wins when both are given.
    if (thread_override.empty()) {
        if (const char* env = std::getenv("DCFT_VERIFIER_THREADS"))
            thread_override = parse_thread_list(env);
    }
    if ((large || huge) && json_path.empty())
        json_path = "BENCH_verifier.json";
    // --trace records the whole bench run (all repetitions) as one Chrome
    // trace — useful for seeing where a slow workload's time actually
    // goes without re-running it under dcft verify.
    if (!trace_path.empty()) obs::set_trace_enabled(true);
    int rc;
    if (!json_path.empty()) {
        rc = emit_json(json_path, smoke, large, huge, thread_override);
    } else {
        int rest_argc = static_cast<int>(rest.size());
        rc = dcft::bench::run_bench_main(rest_argc, rest.data(), &report);
    }
    if (!trace_path.empty()) {
        std::string error;
        if (!obs::write_chrome_trace(trace_path, &error)) {
            std::fprintf(stderr, "trace write failed: %s\n", error.c_str());
            return rc == 0 ? 1 : rc;
        }
        std::fprintf(stderr, "trace written to %s\n", trace_path.c_str());
    }
    return rc;
}
