// Verifier scaling: how the explicit-state checker behaves as the state
// space grows — transition-system construction, fair-convergence checking,
// and full tolerance verdicts. The substrate measurement for every other
// experiment (the paper itself proves by hand; this is our substitute's
// cost profile).
//
// Modes:
//   bench_verifier                      report + google-benchmark timings
//   bench_verifier --json[=FILE]        emit FILE (default
//                                       BENCH_verifier.json): wall-time per
//                                       app-system workload at 1/2/4/8
//                                       threads, states/sec for raw
//                                       exploration, and speedup against
//                                       the retained seed-era reference
//                                       implementation (verify/reference.hpp)
//   bench_verifier --json --smoke       reduced sizes / single rep — the
//                                       ctest smoke target
//
// Thread sweeps work by setting DCFT_VERIFIER_THREADS between
// measurements; default_verifier_threads() re-reads the environment on
// every call for exactly this purpose.
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/byzantine.hpp"
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/reachability.hpp"
#include "verify/reference.hpp"
#include "verify/refinement.hpp"
#include "verify/tolerance_checker.hpp"
#include "verify/transition_system.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

void report() {
    header("verifier scaling (substrate for all experiments)");

    section("explicit transition systems (token ring, K=n)");
    std::printf("  %-6s %-12s %-10s %-12s\n", "n", "states", "nodes",
                "prog-edges");
    for (int n = 3; n <= 7; ++n) {
        auto sys = apps::make_token_ring(n, n);
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top());
        std::printf("  %-6d %-12llu %-10zu %-12zu\n", n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    ts.num_nodes(), ts.num_program_edges());
    }

    section("Byzantine agreement verification sizes");
    for (int n : {3, 4, 5}) {
        auto sys = apps::make_byzantine(n, 1);
        const TransitionSystem ts(sys.masking, &sys.byzantine_fault,
                                  Predicate::top());
        std::printf("  n=%d: states=%llu, reachable nodes=%zu\n", n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    ts.num_nodes());
    }
}

void BM_BuildTransitionSystem(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            TransitionSystem(sys.ring, nullptr, Predicate::top()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(sys.space->num_states()));
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_BuildTransitionSystem)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_FairConvergenceCheck(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(converges(sys.ring, nullptr,
                                           Predicate::top(),
                                           sys.legitimate));
    }
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_FairConvergenceCheck)->Arg(4)->Arg(5)->Arg(6);

/// Fault-free reachable invariant of the Byzantine system (the masking
/// verdicts are measured from it, matching the app tests).
Predicate byzantine_invariant(const apps::ByzantineSystem& sys) {
    const Predicate init("init", [&sys](const StateSpace& sp, StateIndex s) {
        if (sp.get(s, sys.b_g) != 0) return false;
        for (std::size_t i = 0; i < sys.d.size(); ++i) {
            if (sp.get(s, sys.b[i]) != 0) return false;
            if (sp.get(s, sys.d[i]) != 2) return false;
            if (sp.get(s, sys.out[i]) != 2) return false;
        }
        return true;
    });
    auto reach = std::make_shared<StateSet>(
        reachable_states(sys.masking, nullptr, init));
    return predicate_of(std::move(reach), "inv");
}

void BM_MaskingVerdictByzantine(benchmark::State& state) {
    auto sys = apps::make_byzantine(static_cast<int>(state.range(0)), 1);
    const Predicate inv = byzantine_invariant(sys);
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_masking(
            sys.masking, sys.byzantine_fault, sys.spec, inv));
    }
    state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_MaskingVerdictByzantine)->Arg(3)->Arg(4);

// ---------------------------------------------------------------------------
// JSON series: wall-time per app system, thread sweep, speedup vs the seed
// reference. This is the evidence file EXPERIMENTS.md quotes.

/// Best-of-N wall time in milliseconds. Repeats until ~0.3 s total (max 5
/// reps) so short workloads are stable; smoke mode runs best-of-3 with no
/// time floor (bench_compare diffs smoke best_ms against the committed
/// baseline, so single-rep jitter would make that test flaky).
template <typename Fn>
double time_ms(Fn&& fn, bool smoke) {
    using clock = std::chrono::steady_clock;
    const int max_reps = smoke ? 3 : 5;
    const double min_total_ms = 300.0;
    double best = 0.0, total = 0.0;
    for (int rep = 0; rep < max_reps; ++rep) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best = rep == 0 ? ms : std::min(best, ms);
        total += ms;
        if (smoke) continue;  // always best-of-3, however small
        if (total >= min_total_ms && rep > 0) break;
        if (total >= 4.0 * min_total_ms) break;  // one rep was plenty
    }
    return best;
}

struct Workload {
    std::string name;    ///< stable key, e.g. "verdict/token_ring_n7_nonmasking"
    std::string kind;    ///< "ts_build" | "tolerance_verdict"
    std::string system;  ///< human description
    std::uint64_t states = 0;
    std::uint64_t nodes = 0;
    std::uint64_t program_edges = 0;
    bool has_verdict = false;
    bool verdict_ok = false;
    std::uint64_t invariant_size = 0;
    std::uint64_t span_size = 0;
    double reference_ms = 0.0;
    double interpreted_ms = 0.0;  ///< DCFT_NO_COMPILE=1, 1 thread (ablation)
    std::vector<std::pair<unsigned, double>> ms_by_threads;

    double best_ms() const {
        double best = ms_by_threads.front().second;
        for (const auto& [t, ms] : ms_by_threads) best = std::min(best, ms);
        return best;
    }
    unsigned best_threads() const {
        auto best = ms_by_threads.front();
        for (const auto& p : ms_by_threads)
            if (p.second < best.second) best = p;
        return best.first;
    }
};

void set_verifier_threads(unsigned t) {
    setenv("DCFT_VERIFIER_THREADS", std::to_string(t).c_str(), 1);
}

/// RAII: forces the interpreted (DCFT_NO_COMPILE=1) path for one scope —
/// the compiled-vs-interpreted ablation column of the JSON series.
struct ScopedNoCompile {
    ScopedNoCompile() { setenv("DCFT_NO_COMPILE", "1", 1); }
    ~ScopedNoCompile() { unsetenv("DCFT_NO_COMPILE"); }
};

/// Thread counts actually swept: counts above hardware_concurrency are
/// dropped (oversubscribed sweeps on a small host measure scheduler noise,
/// not the verifier). The JSON records whether truncation happened.
std::vector<unsigned> usable_thread_counts(
    const std::vector<unsigned>& requested, bool& truncated) {
    const unsigned hc = std::thread::hardware_concurrency();
    truncated = false;
    if (hc == 0) return requested;  // unknown: sweep everything
    std::vector<unsigned> out;
    for (const unsigned t : requested) {
        if (t <= hc)
            out.push_back(t);
        else
            truncated = true;
    }
    if (out.empty()) out.push_back(1);
    return out;
}

/// Raw exploration: optimized TransitionSystem vs the seed FIFO explorer.
Workload bench_ts_build(int n, const std::vector<unsigned>& threads,
                        bool smoke) {
    auto sys = apps::make_token_ring(n, n);
    Workload w;
    w.name = "ts_build/token_ring_n" + std::to_string(n);
    w.kind = "ts_build";
    w.system = "token ring (n=" + std::to_string(n) +
               ", K=" + std::to_string(n) + "), program only, init=true";
    w.states = sys.space->num_states();
    {
        const TransitionSystem ts(sys.ring, nullptr, Predicate::top());
        w.nodes = ts.num_nodes();
        w.program_edges = ts.num_program_edges();
    }
    w.reference_ms = time_ms(
        [&] {
            const reference::RefTransitionSystem ref(sys.ring, nullptr,
                                                     Predicate::top());
            benchmark::DoNotOptimize(ref.num_nodes());
        },
        smoke);
    {
        const ScopedNoCompile interp;
        w.interpreted_ms = time_ms(
            [&] {
                const TransitionSystem ts(sys.ring, nullptr,
                                          Predicate::top(), 1);
                benchmark::DoNotOptimize(ts.num_nodes());
            },
            smoke);
    }
    for (const unsigned t : threads) {
        const double ms = time_ms(
            [&] {
                const TransitionSystem ts(sys.ring, nullptr,
                                          Predicate::top(), t);
                benchmark::DoNotOptimize(ts.num_nodes());
            },
            smoke);
        w.ms_by_threads.emplace_back(t, ms);
    }
    return w;
}

/// Full tolerance verdict: optimized pipeline vs the seed pipeline.
Workload bench_verdict(const std::string& name, const std::string& system,
                       const Program& p, const FaultClass& f,
                       const ProblemSpec& spec, const Predicate& inv,
                       Tolerance grade, const std::vector<unsigned>& threads,
                       bool smoke) {
    Workload w;
    w.name = name;
    w.kind = "tolerance_verdict";
    w.system = system;
    w.states = p.space().num_states();
    w.has_verdict = true;
    {
        const ToleranceReport r = check_tolerance(p, f, spec, inv, grade);
        w.verdict_ok = r.ok();
        w.invariant_size = r.invariant_size;
        w.span_size = r.span_size;
    }
    w.reference_ms = time_ms(
        [&] {
            benchmark::DoNotOptimize(
                reference::ref_check_tolerance(p, f, spec, inv, grade));
        },
        smoke);
    // The verdict pipeline shares explorations through the process-wide
    // ExplorationCache; clearing it inside the timed region keeps every
    // rep an honest cold-start build (otherwise rep 2+ would measure
    // cache hits, not verification).
    {
        const ScopedNoCompile interp;
        w.interpreted_ms = time_ms(
            [&] {
                ExplorationCache::global().clear();
                benchmark::DoNotOptimize(
                    check_tolerance(p, f, spec, inv, grade));
            },
            smoke);
    }
    for (const unsigned t : threads) {
        set_verifier_threads(t);
        const double ms = time_ms(
            [&] {
                ExplorationCache::global().clear();
                benchmark::DoNotOptimize(
                    check_tolerance(p, f, spec, inv, grade));
            },
            smoke);
        w.ms_by_threads.emplace_back(t, ms);
    }
    unsetenv("DCFT_VERIFIER_THREADS");
    return w;
}

void write_json(const std::string& path, const std::vector<Workload>& ws,
                const std::vector<unsigned>& threads, bool truncated,
                bool smoke) {
    // Same envelope as dcft_cli run reports (schema "dcft.report",
    // "kind": "bench"); the payload keys below are unchanged from the
    // original emitter so EXPERIMENTS.md readers keep working.
    obs::JsonWriter w;
    begin_bench_json(w, "bench_verifier",
                     smoke ? "--json --smoke" : "--json");
    w.kv("bench", "verifier");
    w.kv("smoke", smoke);
    w.kv("hardware_concurrency", std::thread::hardware_concurrency());
    w.key("thread_counts");
    w.begin_array();
    for (const unsigned t : threads) w.value(t);
    w.end_array();
    w.kv("thread_sweep_truncated", truncated);
    w.kv("timing", "best-of-N wall clock, ms");
    w.kv("reference",
         "seed-era sequential implementation (src/verify/reference.hpp)");
    w.key("workloads");
    w.begin_array();
    for (const Workload& wl : ws) {
        w.begin_object();
        w.kv("name", wl.name);
        w.kv("kind", wl.kind);
        w.kv("system", wl.system);
        w.kv("states", wl.states);
        if (wl.kind == "ts_build") {
            w.kv("nodes", wl.nodes);
            w.kv("program_edges", wl.program_edges);
        }
        if (wl.has_verdict) {
            w.kv("verdict", wl.verdict_ok ? "pass" : "fail");
            w.kv("invariant_size", wl.invariant_size);
            w.kv("span_size", wl.span_size);
        }
        w.kv("reference_ms", wl.reference_ms);
        w.kv("interpreted_ms", wl.interpreted_ms);
        w.key("ms_by_threads");
        w.begin_object();
        for (const auto& [t, ms] : wl.ms_by_threads)
            w.kv(std::to_string(t), ms);
        w.end_object();
        const double best = wl.best_ms();
        w.kv("best_ms", best);
        w.kv("best_threads", wl.best_threads());
        if (wl.kind == "ts_build")
            w.kv("states_per_sec",
                 best > 0 ? 1000.0 * static_cast<double>(wl.nodes) / best
                          : 0.0);
        w.kv("speedup_vs_reference", best > 0 ? wl.reference_ms / best : 0.0);
        w.kv("speedup_vs_interpreted",
             best > 0 ? wl.interpreted_ms / best : 0.0);
        w.end_object();
    }
    w.end_array();
    if (!finish_bench_json(w, path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
}

int emit_json(const std::string& path, bool smoke) {
    const std::vector<unsigned> requested =
        smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4, 8};
    bool truncated = false;
    const std::vector<unsigned> threads =
        usable_thread_counts(requested, truncated);
    if (truncated)
        std::printf(
            "thread sweep truncated to hardware_concurrency=%u\n",
            std::thread::hardware_concurrency());
    std::vector<Workload> ws;

    // Raw exploration throughput (token ring, program only). The full
    // series includes the smoke sizes so the bench_compare smoke target
    // can diff smoke output against the committed full baseline.
    for (const int n :
         smoke ? std::vector<int>{5} : std::vector<int>{5, 6, 7}) {
        std::printf("ts_build: token ring n=%d ...\n", n);
        ws.push_back(bench_ts_build(n, threads, smoke));
    }

    // Nonmasking verdicts: Dijkstra's ring under arbitrary corruption.
    for (const int n :
         smoke ? std::vector<int>{4} : std::vector<int>{4, 5, 6, 7}) {
        std::printf("verdict: token ring n=%d nonmasking ...\n", n);
        auto sys = apps::make_token_ring(n, n);
        ws.push_back(bench_verdict(
            "verdict/token_ring_n" + std::to_string(n) + "_nonmasking",
            "token ring (n=" + std::to_string(n) +
                ", K=" + std::to_string(n) + "), corrupt-any faults",
            sys.ring, sys.corrupt_any, sys.spec, sys.legitimate,
            Tolerance::Nonmasking, threads, smoke));
    }

    // Masking verdicts: Byzantine agreement (Section 6.2).
    for (const int n : smoke ? std::vector<int>{3} : std::vector<int>{3, 4}) {
        std::printf("verdict: byzantine n=%d masking ...\n", n);
        auto sys = apps::make_byzantine(n, 1);
        const Predicate inv = byzantine_invariant(sys);
        ws.push_back(bench_verdict(
            "verdict/byzantine_n" + std::to_string(n) + "_masking",
            "Byzantine agreement (n=" + std::to_string(n) + ", f=1)",
            sys.masking, sys.byzantine_fault, sys.spec, inv,
            Tolerance::Masking, threads, smoke));
    }

    write_json(path, ws, threads, truncated, smoke);
    std::printf("wrote %s (%zu workloads)\n", path.c_str(), ws.size());
    for (const Workload& w : ws)
        std::printf(
            "  %-40s ref=%9.2fms interp=%9.2fms best=%9.2fms "
            "speedup=%.2fx (vs interp %.2fx)\n",
            w.name.c_str(), w.reference_ms, w.interpreted_ms, w.best_ms(),
            w.best_ms() > 0 ? w.reference_ms / w.best_ms() : 0.0,
            w.best_ms() > 0 ? w.interpreted_ms / w.best_ms() : 0.0);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    bool smoke = false;
    std::vector<char*> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json") {
            json_path = "BENCH_verifier.json";
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(7);
        } else {
            rest.push_back(argv[i]);
        }
    }
    if (!json_path.empty()) return emit_json(json_path, smoke);
    int rest_argc = static_cast<int>(rest.size());
    return dcft::bench::run_bench_main(rest_argc, rest.data(), &report);
}
