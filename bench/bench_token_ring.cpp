// Experiment S1 (paper Section 7): Dijkstra's K-state token ring — the
// paper's PVS case study, and the canonical corrector. Reproduces the
// stabilization threshold in K (exhaustively, for small rings) and the
// stabilization-time scaling (by simulation, for large rings).
#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "runtime/simulator.hpp"
#include "verify/refinement.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

/// Steps to reach a legitimate state from a uniformly random state.
SummaryStats stabilization_steps(const apps::TokenRingSystem& sys, int runs,
                                 std::uint64_t seed) {
    SummaryStats stats;
    RandomScheduler scheduler;
    Rng rng(seed);
    for (int i = 0; i < runs; ++i) {
        StateIndex from = 0;
        for (VarId v : sys.x)
            from = sys.space->set(
                from, v,
                static_cast<Value>(
                    rng.below(static_cast<std::uint64_t>(sys.k))));
        Simulator sim(sys.ring, scheduler, seed + 1000 + i);
        RunOptions options;
        options.max_steps = 1000000;
        options.stop_when = sys.legitimate;
        const RunResult run = sim.run(from, options);
        stats.add(static_cast<double>(run.steps));
    }
    return stats;
}

void report() {
    header("S1: Dijkstra K-state token ring (Section 7)");

    section("stabilization threshold in K (exhaustive fair-convergence "
            "check)");
    std::printf("  %-4s", "n");
    for (Value k = 2; k <= 7; ++k) std::printf(" K=%lld ", (long long)k);
    std::printf("\n");
    for (int n = 3; n <= 6; ++n) {
        std::printf("  n=%-2d", n);
        for (Value k = 2; k <= 7; ++k) {
            auto sys = apps::make_token_ring(n, k);
            const bool ok = converges(sys.ring, nullptr, Predicate::top(),
                                      sys.legitimate)
                                .ok;
            std::printf(" %-4s ", ok ? "yes" : "NO");
        }
        std::printf("\n");
    }
    std::printf("  expected shape: a crossover column at K = n-1 — the\n"
                "  sharpened Dijkstra bound; below it fair loops that never\n"
                "  stabilize exist and the checker exhibits them.\n");

    section("stabilization steps from random states (200 runs each, K=n; "
            "n <= 15 keeps K^n inside the 64-bit packed state index)");
    std::printf("  %-6s %-10s %-10s %-10s\n", "n", "mean", "p99", "max");
    for (int n : {5, 8, 10, 12, 15}) {
        auto sys = apps::make_token_ring(n, n);
        const SummaryStats stats = stabilization_steps(sys, 200, 17);
        std::printf("  %-6d %-10.1f %-10.1f %-10.1f\n", n, stats.mean(),
                    stats.percentile(0.99), stats.max());
    }
    std::printf("  expected shape: superlinear growth (Theta(n^2)-ish) in\n"
                "  ring size.\n");
}

void BM_ConvergenceCheck(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(converges(sys.ring, nullptr,
                                           Predicate::top(),
                                           sys.legitimate));
    }
    state.SetLabel("n=K=" + std::to_string(n) + ", states=" +
                   std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_ConvergenceCheck)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_SimulatedStabilization(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    RandomScheduler scheduler;
    Rng rng(3);
    std::uint64_t seed = 100;
    for (auto _ : state) {
        StateIndex from = 0;
        for (VarId v : sys.x)
            from = sys.space->set(
                from, v,
                static_cast<Value>(rng.below(static_cast<std::uint64_t>(n))));
        Simulator sim(sys.ring, scheduler, seed++);
        RunOptions options;
        options.max_steps = 1000000;
        options.stop_when = sys.legitimate;
        benchmark::DoNotOptimize(sim.run(from, options));
    }
    state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_SimulatedStabilization)->Arg(8)->Arg(12)->Arg(15);

}  // namespace

DCFT_BENCH_MAIN(report)
