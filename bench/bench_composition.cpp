// Experiment T6 (Theorem 5.2 and the grade lattice): across a generated
// family of fault classes on a reference program, the checker's three
// verdicts must populate only the combinations the theory allows —
// masking = fail-safe AND nonmasking (for invariant-convergent systems) —
// and checking masking directly costs about as much as checking the two
// halves.
#include <chrono>

#include "bench_util.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

struct Family {
    std::shared_ptr<const StateSpace> space;
    Program program;
    ProblemSpec spec;
    Predicate invariant;
};

/// Reference program: climb 0 -> goal over `size` rungs, one forbidden
/// state above the goal.
Family make_family(Value size) {
    auto space = make_space({Variable{"v", size + 2, {}}});
    const Value goal = size;
    const Value forbidden = size + 1;
    Program p(space, "climb");
    p.add_action(Action::assign(
        *space, "inc",
        Predicate("v<goal",
                  [goal](const StateSpace& sp, StateIndex s) {
                      return sp.get(s, 0) < goal;
                  }),
        "v",
        [](const StateSpace& sp, StateIndex s) {
            return sp.get(s, 0) + 1;
        }));
    LivenessSpec live;
    live.add_eventually(Predicate::var_eq(*space, "v", goal));
    ProblemSpec spec("climb-spec",
                     SafetySpec::never(
                         Predicate::var_eq(*space, "v", forbidden)),
                     std::move(live));
    Predicate inv("v<=goal", [goal](const StateSpace&, StateIndex s) {
        return static_cast<Value>(s) <= goal;
    });
    return Family{space, std::move(p), std::move(spec), std::move(inv)};
}

void report() {
    header("T6: the grade lattice and Theorem 5.2, empirically");

    Family fam = make_family(6);
    const Value goal = 6, forbidden = 7;

    // Fault family: every single-transition perturbation v==a -> v:=b.
    int combos[2][2][2] = {};
    int violations = 0, total = 0;
    for (Value a = 0; a <= goal; ++a) {
        for (Value b = 0; b <= forbidden; ++b) {
            if (a == b) continue;
            FaultClass f(fam.space, "jump");
            f.add_action(Action::assign_const(
                *fam.space, "jump", Predicate::var_eq(*fam.space, "v", a),
                "v", b));
            const bool fs =
                check_failsafe(fam.program, f, fam.spec, fam.invariant).ok();
            const bool nm =
                check_nonmasking(fam.program, f, fam.spec, fam.invariant)
                    .ok();
            const bool mk =
                check_masking(fam.program, f, fam.spec, fam.invariant).ok();
            ++combos[fs][nm][mk];
            ++total;
            if ((fs && nm) != mk) ++violations;
            if (mk && (!fs || !nm)) ++violations;
        }
    }
    section("verdict combinations over all single-jump fault classes");
    std::printf("  fault classes examined: %d\n", total);
    std::printf("  (fail-safe, nonmasking, masking) populations:\n");
    const char* names[2] = {"no ", "yes"};
    for (int fs = 1; fs >= 0; --fs)
        for (int nm = 1; nm >= 0; --nm)
            for (int mk = 1; mk >= 0; --mk)
                if (combos[fs][nm][mk])
                    std::printf("    (%s, %s, %s): %d\n", names[fs],
                                names[nm], names[mk], combos[fs][nm][mk]);
    std::printf("  Theorem 5.2 violations (must be 0): %d\n", violations);

    section("masking-direct vs fail-safe+nonmasking check cost");
    {
        FaultClass f(fam.space, "jump");
        f.add_action(Action::assign_const(
            *fam.space, "jump", Predicate::var_eq(*fam.space, "v", 3), "v",
            0));
        const auto time = [&](auto&& fn) {
            const auto start = std::chrono::steady_clock::now();
            for (int i = 0; i < 2000; ++i) fn();
            return std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count() /
                   2000;
        };
        const double direct = time([&] {
            benchmark::DoNotOptimize(
                check_masking(fam.program, f, fam.spec, fam.invariant));
        });
        const double halves = time([&] {
            benchmark::DoNotOptimize(
                check_failsafe(fam.program, f, fam.spec, fam.invariant));
            benchmark::DoNotOptimize(
                check_nonmasking(fam.program, f, fam.spec, fam.invariant));
        });
        std::printf("  direct masking check : %.4f ms\n", direct);
        std::printf("  fail-safe+nonmasking : %.4f ms (%.2fx)\n", halves,
                    halves / direct);
    }
}

void BM_CheckFailsafe(benchmark::State& state) {
    Family fam = make_family(static_cast<Value>(state.range(0)));
    FaultClass f(fam.space, "jump");
    f.add_action(Action::assign_const(
        *fam.space, "jump", Predicate::var_eq(*fam.space, "v", 1), "v", 0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            check_failsafe(fam.program, f, fam.spec, fam.invariant));
    }
}
BENCHMARK(BM_CheckFailsafe)->Arg(6)->Arg(60)->Arg(600);

void BM_CheckMasking(benchmark::State& state) {
    Family fam = make_family(static_cast<Value>(state.range(0)));
    FaultClass f(fam.space, "jump");
    f.add_action(Action::assign_const(
        *fam.space, "jump", Predicate::var_eq(*fam.space, "v", 1), "v", 0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            check_masking(fam.program, f, fam.spec, fam.invariant));
    }
}
BENCHMARK(BM_CheckMasking)->Arg(6)->Arg(60)->Arg(600);

}  // namespace

DCFT_BENCH_MAIN(report)
