// Experiment F1-F3 (paper Figures 1-3, Sections 3.3/4.3/5.1): the memory
// access example. Reproduces the paper's qualitative grid — which grade
// each program achieves — and quantifies the behavioural differences:
// wrong writes, recovery latency, and availability under page faults.
#include "apps/memory_access.hpp"
#include "bench_util.hpp"
#include "runtime/simulator.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

struct SimRow {
    double wrong_writes = 0;     // per run
    double availability = 0;     // fraction of steps with data correct
    double correction_mean = 0;  // steps from disruption to data correct
    double deadlock_rate = 0;    // fraction of runs ending p-maximal
};

SimRow simulate(const apps::MemoryAccessSystem& sys, const Program& p,
                double fault_p, int runs) {
    SimRow row;
    RandomScheduler scheduler;
    SummaryStats latency;
    std::size_t wrong = 0, deadlocks = 0;
    double availability_sum = 0;
    for (int i = 0; i < runs; ++i) {
        Simulator sim(p, scheduler, 10000 + static_cast<std::uint64_t>(i));
        FaultInjector injector(sys.page_fault, fault_p, 3);
        sim.set_fault_injector(&injector);
        SafetyMonitor safety(sys.spec.safety());
        CorrectorMonitor corrector(
            Predicate::var_eq(*sys.space, "data", sys.correct_value));
        sim.add_monitor(&safety);
        sim.add_monitor(&corrector);
        RunOptions options;
        options.max_steps = 80;
        const RunResult run = sim.run(sys.initial_state(), options);
        wrong += safety.program_violations();
        availability_sum += corrector.availability();
        if (run.deadlocked) ++deadlocks;
        for (double sample : corrector.correction_latency().samples())
            latency.add(sample);
    }
    row.wrong_writes = static_cast<double>(wrong) / runs;
    row.availability = availability_sum / runs;
    row.correction_mean = latency.empty() ? 0 : latency.mean();
    row.deadlock_rate = static_cast<double>(deadlocks) / runs;
    return row;
}

void report() {
    header("F1-F3: memory access under page faults (Figures 1-3)");
    auto sys = apps::make_memory_access();

    section("tolerance grid (paper claims: p none, pf fail-safe, pn "
            "nonmasking, pm masking)");
    std::printf("  %-14s %-10s %-11s %-8s\n", "program", "fail-safe",
                "nonmasking", "masking");
    for (const auto& [p, label] :
         std::vector<std::pair<const Program*, const char*>>{
             {&sys.intolerant, "p"},
             {&sys.failsafe, "pf"},
             {&sys.nonmasking, "pn"},
             {&sys.masking, "pm"}}) {
        std::printf(
            "  %-14s %-10s %-11s %-8s\n", label,
            yn(check_failsafe(*p, sys.page_fault, sys.spec, sys.S).ok()),
            yn(check_nonmasking(*p, sys.page_fault, sys.spec, sys.S).ok()),
            yn(check_masking(*p, sys.page_fault, sys.spec, sys.S).ok()));
    }

    section("simulation, 500 runs per cell, fault-rate sweep");
    std::printf("  %-8s %-4s | %-12s %-12s %-14s %-9s\n", "fault_p",
                "prog", "wrong/run", "availability", "recovery(mean)",
                "deadlock");
    for (double fault_p : {0.05, 0.1, 0.2, 0.4}) {
        for (const auto& [p, label] :
             std::vector<std::pair<const Program*, const char*>>{
                 {&sys.failsafe, "pf"},
                 {&sys.nonmasking, "pn"},
                 {&sys.masking, "pm"}}) {
            const SimRow row = simulate(sys, *p, fault_p, 500);
            std::printf("  %-8.2f %-4s | %-12.3f %-12.3f %-14.2f %-9.2f\n",
                        fault_p, label, row.wrong_writes, row.availability,
                        row.correction_mean, row.deadlock_rate);
        }
    }
    std::printf(
        "\n  shape to expect: pf never writes wrong but deadlocks more as\n"
        "  faults rise; pn never deadlocks but writes wrong during\n"
        "  recovery; pm does neither (its availability dips only while\n"
        "  data is still unassigned).\n");
}

void BM_VerifyMaskingPm(benchmark::State& state) {
    auto sys = apps::make_memory_access();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            check_masking(sys.masking, sys.page_fault, sys.spec, sys.S));
    }
}
BENCHMARK(BM_VerifyMaskingPm);

void BM_SimulatePnUnderFaults(benchmark::State& state) {
    auto sys = apps::make_memory_access();
    RandomScheduler scheduler;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Simulator sim(sys.nonmasking, scheduler, seed++);
        FaultInjector injector(sys.page_fault, 0.2, 3);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 80;
        benchmark::DoNotOptimize(sim.run(sys.initial_state(), options));
    }
}
BENCHMARK(BM_SimulatePnUnderFaults);

}  // namespace

DCFT_BENCH_MAIN(report)
