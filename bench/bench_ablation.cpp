// Experiment E1 (the paper's efficiency claim, Section 1): component-based
// designs are "at least as efficient" as monolithic ones. We compare the
// composed masking memory-access program pm (detector + corrector + base,
// three actions) against a hand-written monolithic equivalent (one action
// that checks and repairs and reads atomically), and measure what the
// detector gating itself costs at runtime.
#include "apps/memory_access.hpp"
#include "apps/tmr.hpp"
#include "bench_util.hpp"
#include "runtime/simulator.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

/// A monolithic masking memory access: one atomic action that repairs the
/// memory if needed and reads — semantically masking, but not decomposed
/// into reusable components.
Program monolithic_memory(const apps::MemoryAccessSystem& sys) {
    Program mono(sys.space, "monolithic");
    const VarId present = sys.present_var;
    const VarId data = sys.data_var;
    const Value v = sys.correct_value;
    mono.add_action(Action("read-with-repair", Predicate::top(),
                           [present, data, v](const StateSpace& sp,
                                              StateIndex s) {
                               StateIndex t = sp.set(s, present, 1);
                               return sp.set(t, data, v);
                           }));
    return mono;
}

struct RunCost {
    double steps_to_goal = 0;
    double guard_evals = 0;  // enabled-set computations = steps * actions
};

RunCost cost_to_goal(const apps::MemoryAccessSystem& sys, const Program& p,
                     int runs) {
    RunCost cost;
    RandomScheduler scheduler;
    const Predicate goal =
        Predicate::var_eq(*sys.space, "data", sys.correct_value);
    for (int i = 0; i < runs; ++i) {
        Simulator sim(p, scheduler, 300 + static_cast<std::uint64_t>(i));
        FaultInjector injector(sys.page_fault, 0.2, 2);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 200;
        options.stop_when = goal;
        const RunResult run = sim.run(sys.initial_state(), options);
        cost.steps_to_goal += static_cast<double>(run.steps);
        cost.guard_evals +=
            static_cast<double>(run.steps * p.num_actions());
    }
    cost.steps_to_goal /= runs;
    cost.guard_evals /= runs;
    return cost;
}

void report() {
    header("E1: component-based vs monolithic (the efficiency claim)");
    auto sys = apps::make_memory_access();
    const Program mono = monolithic_memory(sys);

    section("both designs are masking tolerant");
    std::printf("  pm (detector+corrector+base, 3 actions): %s\n",
                yn(check_masking(sys.masking, sys.page_fault, sys.spec,
                                 sys.S)
                       .ok()));
    std::printf("  monolithic (1 atomic action)           : %s\n",
                yn(check_masking(mono, sys.page_fault, sys.spec, sys.S)
                       .ok()));

    section("runtime cost to first correct read (2000 runs, faults p=0.2)");
    const RunCost composed = cost_to_goal(sys, sys.masking, 2000);
    const RunCost monolith = cost_to_goal(sys, mono, 2000);
    std::printf("  %-12s steps-to-goal=%6.2f  guard-evals=%7.2f\n",
                "pm", composed.steps_to_goal, composed.guard_evals);
    std::printf("  %-12s steps-to-goal=%6.2f  guard-evals=%7.2f\n",
                "monolithic", monolith.steps_to_goal,
                monolith.guard_evals);
    std::printf(
        "  expected shape: the composed design pays a small constant\n"
        "  factor in steps (detect, then act) for reusable, separately\n"
        "  verifiable components — the paper's trade.\n");

    section("what detector gating costs: intolerant vs fail-safe vs "
            "masking (TMR)");
    auto tmr = apps::make_tmr(2);
    RandomScheduler scheduler;
    for (const auto& [p, label] :
         std::vector<std::pair<const Program*, const char*>>{
             {&tmr.intolerant, "IR"},
             {&tmr.failsafe, "DR;IR"},
             {&tmr.masking, "DR;IR||CR"}}) {
        double total_steps = 0;
        int completed = 0;
        for (int i = 0; i < 2000; ++i) {
            Simulator sim(*p, scheduler, 900 + static_cast<std::uint64_t>(i));
            FaultInjector injector(tmr.corrupt_one_input, 0.3, 1);
            sim.set_fault_injector(&injector);
            RunOptions options;
            options.max_steps = 50;
            options.stop_when = tmr.output_correct;
            const RunResult run = sim.run(tmr.initial_state(0), options);
            if (run.stopped_early) {
                total_steps += static_cast<double>(run.steps);
                ++completed;
            }
        }
        std::printf("  %-10s completed %4d/2000, mean steps %.2f\n", label,
                    completed, completed ? total_steps / completed : 0.0);
    }
}

void BM_ComposedMaskingRun(benchmark::State& state) {
    auto sys = apps::make_memory_access();
    RandomScheduler scheduler;
    std::uint64_t seed = 1;
    const Predicate goal =
        Predicate::var_eq(*sys.space, "data", sys.correct_value);
    for (auto _ : state) {
        Simulator sim(sys.masking, scheduler, seed++);
        FaultInjector injector(sys.page_fault, 0.2, 2);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 200;
        options.stop_when = goal;
        benchmark::DoNotOptimize(sim.run(sys.initial_state(), options));
    }
}
BENCHMARK(BM_ComposedMaskingRun);

void BM_MonolithicMaskingRun(benchmark::State& state) {
    auto sys = apps::make_memory_access();
    const Program mono = monolithic_memory(sys);
    RandomScheduler scheduler;
    std::uint64_t seed = 1;
    const Predicate goal =
        Predicate::var_eq(*sys.space, "data", sys.correct_value);
    for (auto _ : state) {
        Simulator sim(mono, scheduler, seed++);
        FaultInjector injector(sys.page_fault, 0.2, 2);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 200;
        options.stop_when = goal;
        benchmark::DoNotOptimize(sim.run(sys.initial_state(), options));
    }
}
BENCHMARK(BM_MonolithicMaskingRun);

}  // namespace

DCFT_BENCH_MAIN(report)
