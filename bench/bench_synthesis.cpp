// Experiment Q2/T3 (the paper's Question 2; Theorem 3.3): tolerance
// synthesis. Measures the cost of computing weakest detection predicates
// and of the three add_* transformations, and confirms the synthesized
// programs pass the same checks as the paper's hand constructions.
#include "apps/memory_access.hpp"
#include "apps/tmr.hpp"
#include "bench_util.hpp"
#include "obs/telemetry.hpp"
#include "synth/add_masking.hpp"
#include "verify/detection_predicate.hpp"
#include "verify/exploration_cache.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

void report() {
    header("Q2: synthesis — calculating detectors and correctors");

    section("synthesized vs hand-built (verdict agreement)");
    {
        auto mem = apps::make_memory_access();
        const FailsafeSynthesis fs =
            add_failsafe(mem.intolerant, mem.spec.safety());
        const bool synth_ok =
            check_failsafe(fs.program, mem.page_fault, mem.spec, mem.S).ok();
        const bool hand_ok =
            check_failsafe(mem.failsafe, mem.page_fault, mem.spec, mem.S)
                .ok();
        std::printf("  memory fail-safe : synthesized %s, hand-built (pf) "
                    "%s\n",
                    yn(synth_ok), yn(hand_ok));

        const MaskingSynthesis mk = add_masking(
            mem.intolerant, mem.page_fault, mem.spec.safety(), mem.S);
        std::printf("  memory masking   : synthesized %s (complete:%s), "
                    "hand-built (pm) %s\n",
                    yn(check_masking(mk.program, mem.page_fault, mem.spec,
                                     mem.S)
                           .ok()),
                    yn(mk.complete),
                    yn(check_masking(mem.masking, mem.page_fault, mem.spec,
                                     mem.S)
                           .ok()));
    }
    {
        auto tmr = apps::make_tmr(2);
        const FailsafeSynthesis fs =
            add_failsafe(tmr.intolerant, tmr.spec.safety());
        NonmaskingOptions opts;
        opts.safety = &tmr.spec.safety();
        opts.writable = {"out"};
        opts.span_from = tmr.invariant;
        const NonmaskingSynthesis nm = add_nonmasking(
            fs.program, tmr.corrupt_one_input, tmr.output_correct, opts);
        std::printf("  TMR masking      : synthesized %s (complete:%s), "
                    "hand-built (DR;IR||CR) %s\n",
                    yn(check_masking(nm.program, tmr.corrupt_one_input,
                                     tmr.spec, tmr.invariant)
                           .ok()),
                    yn(nm.complete),
                    yn(check_masking(tmr.masking, tmr.corrupt_one_input,
                                     tmr.spec, tmr.invariant)
                           .ok()));
    }

    section("exploration sharing (one BFS per distinct graph per query)");
    {
        // A masking-synthesis query plus its check asks repeatedly for the
        // same (program, faults, init) graphs; the exploration cache must
        // collapse those to one BFS each. Verified via the
        // verify/explorations counter: after the query, the number of
        // actual explorations equals the number of cache misses (each
        // distinct transition system was built at most once), and the hit
        // count is the reuse the cache bought.
        const bool was_enabled = obs::enabled();
        obs::set_enabled(true);
        auto& reg = obs::Registry::global();
        ExplorationCache::global().clear();
        const std::uint64_t expl0 = reg.counter("verify/explorations").value();
        const std::uint64_t hits0 =
            reg.counter("verify/explore_cache/hits").value();
        const std::uint64_t miss0 =
            reg.counter("verify/explore_cache/misses").value();

        auto mem = apps::make_memory_access();
        const MaskingSynthesis mk = add_masking(
            mem.intolerant, mem.page_fault, mem.spec.safety(), mem.S);
        bool ok =
            check_masking(mk.program, mem.page_fault, mem.spec, mem.S).ok();
        // Re-running the check must be pure cache hits: zero new BFS.
        ok = ok &&
             check_masking(mk.program, mem.page_fault, mem.spec, mem.S).ok();

        const std::uint64_t expl =
            reg.counter("verify/explorations").value() - expl0;
        const std::uint64_t hits =
            reg.counter("verify/explore_cache/hits").value() - hits0;
        const std::uint64_t misses =
            reg.counter("verify/explore_cache/misses").value() - miss0;
        obs::set_enabled(was_enabled);

        std::printf("  memory masking query: %llu explorations, "
                    "%llu cache hits, %llu misses (verdict %s)\n",
                    static_cast<unsigned long long>(expl),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses), yn(ok));
        std::printf("  each distinct TS built at most once: %s "
                    "(explorations == misses)\n",
                    yn(expl == misses));
    }

    section("weakest-detection-predicate sizes (states where each action "
            "is safe)");
    {
        auto tmr = apps::make_tmr(3);
        for (const auto& ac : tmr.intolerant.actions()) {
            const auto wdp =
                weakest_detection_set(*tmr.space, ac, tmr.spec.safety());
            std::printf("  TMR(domain 3) action %-6s: %llu / %llu states\n",
                        ac.name().c_str(),
                        static_cast<unsigned long long>(wdp->count()),
                        static_cast<unsigned long long>(
                            tmr.space->num_states()));
        }
    }
}

void BM_WeakestDetectionPredicate(benchmark::State& state) {
    auto sys = apps::make_tmr(static_cast<Value>(state.range(0)));
    const Action& ac = sys.intolerant.action(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            weakest_detection_set(*sys.space, ac, sys.spec.safety()));
    }
    state.SetLabel(
        "states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_WeakestDetectionPredicate)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_AddFailsafe(benchmark::State& state) {
    auto sys = apps::make_tmr(static_cast<Value>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            add_failsafe(sys.intolerant, sys.spec.safety()));
    }
    state.SetLabel("states=" + std::to_string(sys.space->num_states()));
}
BENCHMARK(BM_AddFailsafe)->Arg(2)->Arg(4)->Arg(8);

void BM_AddMaskingMemory(benchmark::State& state) {
    auto sys = apps::make_memory_access(
        static_cast<Value>(state.range(0)), 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(add_masking(sys.intolerant, sys.page_fault,
                                             sys.spec.safety(), sys.S));
    }
    state.SetLabel("data-domain=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AddMaskingMemory)->Arg(3)->Arg(6)->Arg(12);

}  // namespace

DCFT_BENCH_MAIN(report)
