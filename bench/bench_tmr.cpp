// Experiment T1 (paper Section 6.1): triple modular redundancy. The
// paper's construction chain IR -> DR;IR -> DR;IR||CR is exercised under
// input corruption: who outputs wrongly, who stalls, who masks.
#include "apps/tmr.hpp"
#include "bench_util.hpp"
#include "runtime/simulator.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

struct Outcome {
    double correct = 0, wrong = 0, stuck = 0;
};

Outcome simulate(const apps::TmrSystem& sys, const Program& p,
                 double fault_p, int runs) {
    Outcome o;
    RandomScheduler scheduler;
    for (int i = 0; i < runs; ++i) {
        Simulator sim(p, scheduler, 77 + static_cast<std::uint64_t>(i));
        FaultInjector injector(sys.corrupt_one_input, fault_p, 1);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 40;
        const RunResult run =
            sim.run(sys.initial_state(static_cast<Value>(i % 2)), options);
        if (sys.output_correct.eval(*sys.space, run.final_state))
            o.correct += 1;
        else if (sys.output_unassigned.eval(*sys.space, run.final_state))
            o.stuck += 1;
        else
            o.wrong += 1;
    }
    o.correct /= runs;
    o.wrong /= runs;
    o.stuck /= runs;
    return o;
}

void report() {
    header("T1: triple modular redundancy (Section 6.1)");
    auto sys = apps::make_tmr(2);

    section("tolerance grid (paper: IR none, DR;IR fail-safe, "
            "DR;IR||CR masking)");
    std::printf("  %-14s %-10s %-8s\n", "program", "fail-safe", "masking");
    for (const auto& [p, label] :
         std::vector<std::pair<const Program*, const char*>>{
             {&sys.intolerant, "IR"},
             {&sys.failsafe, "DR;IR"},
             {&sys.masking, "DR;IR||CR"}}) {
        std::printf("  %-14s %-10s %-8s\n", label,
                    yn(check_failsafe(*p, sys.corrupt_one_input, sys.spec,
                                      sys.invariant)
                           .ok()),
                    yn(check_masking(*p, sys.corrupt_one_input, sys.spec,
                                     sys.invariant)
                           .ok()));
    }

    section("outcome fractions over 2000 runs, corruption-rate sweep");
    std::printf("  %-8s %-10s | %-8s %-7s %-9s\n", "fault_p", "prog",
                "correct", "wrong", "no-output");
    for (double fault_p : {0.1, 0.3, 0.6}) {
        for (const auto& [p, label] :
             std::vector<std::pair<const Program*, const char*>>{
                 {&sys.intolerant, "IR"},
                 {&sys.failsafe, "DR;IR"},
                 {&sys.masking, "DR;IR||CR"}}) {
            const Outcome o = simulate(sys, *p, fault_p, 2000);
            std::printf("  %-8.2f %-10s | %-8.3f %-7.3f %-9.3f\n", fault_p,
                        label, o.correct, o.wrong, o.stuck);
        }
    }
    std::printf(
        "\n  shape to expect: IR's wrong fraction grows with the fault\n"
        "  rate; DR;IR converts every would-be wrong output into a stall;\n"
        "  DR;IR||CR stays at correct ~ 1.0 throughout — the masking\n"
        "  crossover the construction is for.\n");

    section("value-domain sweep (masking verdict must be domain-independent)");
    for (Value domain : {2, 3, 4, 5}) {
        auto big = apps::make_tmr(domain);
        std::printf("  domain=%lld: states=%llu, masking=%s\n",
                    static_cast<long long>(domain),
                    static_cast<unsigned long long>(big.space->num_states()),
                    yn(check_masking(big.masking, big.corrupt_one_input,
                                     big.spec, big.invariant)
                           .ok()));
    }
}

void BM_VerifyMaskingTmr(benchmark::State& state) {
    auto sys = apps::make_tmr(static_cast<Value>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_masking(
            sys.masking, sys.corrupt_one_input, sys.spec, sys.invariant));
    }
    state.SetLabel("domain=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_VerifyMaskingTmr)->Arg(2)->Arg(4)->Arg(8);

void BM_SimulateVoter(benchmark::State& state) {
    auto sys = apps::make_tmr(2);
    RandomScheduler scheduler;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Simulator sim(sys.masking, scheduler, seed++);
        FaultInjector injector(sys.corrupt_one_input, 0.3, 1);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 40;
        benchmark::DoNotOptimize(sim.run(sys.initial_state(0), options));
    }
}
BENCHMARK(BM_SimulateVoter);

}  // namespace

DCFT_BENCH_MAIN(report)
