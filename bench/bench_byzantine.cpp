// Experiment T2 (paper Section 6.2): Byzantine agreement. Reproduces the
// qualitative construction chain (IB -> DB;IB -> DB;IB||CB), the 3f+1
// impossibility threshold as a verification outcome, and quantifies
// decision latency and violation rates by simulation for larger rings the
// checker cannot enumerate.
#include "apps/byzantine.hpp"
#include "bench_util.hpp"
#include "runtime/simulator.hpp"
#include "verify/reachability.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

Predicate fault_free_invariant(const apps::ByzantineSystem& sys,
                               const Program& program) {
    const Predicate init("init", [&sys](const StateSpace& sp, StateIndex s) {
        if (sp.get(s, sys.b_g) != 0) return false;
        for (std::size_t i = 0; i < sys.d.size(); ++i) {
            if (sp.get(s, sys.b[i]) != 0) return false;
            if (sp.get(s, sys.d[i]) != 2) return false;
            if (sp.get(s, sys.out[i]) != 2) return false;
        }
        return true;
    });
    auto reach = std::make_shared<StateSet>(
        reachable_states(program, nullptr, init));
    return predicate_of(std::move(reach), "fault-free-reach");
}

struct SimStats {
    double decided_rate = 0;       // runs where all honest output
    double agreement_rate = 0;     // decided runs with agreeing outputs
    double mean_decision_steps = 0;
};

SimStats simulate(const apps::ByzantineSystem& sys, const Program& p,
                  int runs, bool byzantine_general) {
    SimStats stats;
    RandomScheduler scheduler;
    SummaryStats steps;
    int decided = 0, agreed = 0;
    for (int i = 0; i < runs; ++i) {
        Simulator sim(p, scheduler, 31 + static_cast<std::uint64_t>(i));
        FaultInjector injector(sys.byzantine_fault, 0.0, 1);
        if (byzantine_general) injector.schedule(0, 0);  // flip b.g first
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 2000;
        options.stop_when = sys.all_honest_output;
        const RunResult run = sim.run(
            sys.initial_state(static_cast<Value>(i % 2)), options);
        if (!run.stopped_early) continue;
        ++decided;
        steps.add(static_cast<double>(run.steps));
        // Agreement among honest outputs.
        Value first = -1;
        bool ok = true;
        for (std::size_t j = 0; j < sys.out.size(); ++j) {
            if (sys.space->get(run.final_state, sys.b[j]) != 0) continue;
            const Value v = sys.space->get(run.final_state, sys.out[j]);
            if (first == -1)
                first = v;
            else if (v != first)
                ok = false;
        }
        if (ok) ++agreed;
    }
    stats.decided_rate = static_cast<double>(decided) / runs;
    stats.agreement_rate =
        decided == 0 ? 0 : static_cast<double>(agreed) / decided;
    stats.mean_decision_steps = steps.empty() ? 0 : steps.mean();
    return stats;
}

void report() {
    header("T2: Byzantine agreement (Section 6.2)");

    section("construction chain, n=4, f=1 (exhaustive verification)");
    {
        auto sys = apps::make_byzantine(4, 1);
        std::printf("  %-22s %-10s %-8s\n", "program", "fail-safe",
                    "masking");
        for (const auto& [p, label] :
             std::vector<std::pair<const Program*, const char*>>{
                 {&sys.intolerant, "IB (intolerant)"},
                 {&sys.failsafe, "DB;IB"},
                 {&sys.masking, "DB;IB||CB"}}) {
            const Predicate inv = fault_free_invariant(sys, *p);
            std::printf(
                "  %-22s %-10s %-8s\n", label,
                yn(check_failsafe(*p, sys.byzantine_fault, sys.spec, inv)
                       .ok()),
                yn(check_masking(*p, sys.byzantine_fault, sys.spec, inv)
                       .ok()));
        }
    }

    section("the 3f+1 threshold (verification outcome, f=1)");
    for (int n : {2, 3, 4, 5}) {
        auto sys = apps::make_byzantine(n, 1);
        const Predicate inv = fault_free_invariant(sys, sys.masking);
        std::printf("  n=%d: masking %s\n", n,
                    check_masking(sys.masking, sys.byzantine_fault, sys.spec,
                                  inv)
                            .ok()
                        ? "achievable"
                        : "IMPOSSIBLE");
    }
    std::printf(
        "  expected crossover (Lamport-Shostak-Pease): impossible exactly\n"
        "  for 3 <= n <= 3f (here n = 3); trivially achievable for n = 2\n"
        "  (a single lieutenant), achievable for n >= 3f+1 = 4.\n");

    section("simulation: 300 runs each, Byzantine general from step 0");
    std::printf("  %-3s %-12s | %-8s %-10s %-14s\n", "n", "program",
                "decided", "agreement", "steps(mean)");
    for (int n : {4, 5, 7}) {
        auto sys = apps::make_byzantine(n, 1);
        for (const auto& [p, label] :
             std::vector<std::pair<const Program*, const char*>>{
                 {&sys.failsafe, "DB;IB"},
                 {&sys.masking, "DB;IB||CB"}}) {
            const SimStats s = simulate(sys, *p, 300, true);
            std::printf("  %-3d %-12s | %-8.2f %-10.2f %-14.1f\n", n, label,
                        s.decided_rate, s.agreement_rate,
                        s.mean_decision_steps);
        }
    }
    std::printf(
        "\n  shape to expect: without CB an equivocating general blocks a\n"
        "  process (decided < 1); with CB everyone decides and agreement\n"
        "  is 1.0, with latency growing roughly with n.\n");

    section("simulation: intolerant IB violates agreement");
    {
        auto sys = apps::make_byzantine(4, 1);
        const SimStats bad = simulate(sys, sys.intolerant, 300, true);
        const SimStats good = simulate(sys, sys.masking, 300, true);
        std::printf("  IB        : agreement in decided runs = %.2f\n",
                    bad.agreement_rate);
        std::printf("  DB;IB||CB : agreement in decided runs = %.2f\n",
                    good.agreement_rate);
    }
}

void BM_VerifyMaskingByzantineN4(benchmark::State& state) {
    auto sys = apps::make_byzantine(4, 1);
    const Predicate inv = fault_free_invariant(sys, sys.masking);
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_masking(
            sys.masking, sys.byzantine_fault, sys.spec, inv));
    }
}
BENCHMARK(BM_VerifyMaskingByzantineN4);

void BM_SimulateAgreement(benchmark::State& state) {
    auto sys = apps::make_byzantine(static_cast<int>(state.range(0)), 1);
    RandomScheduler scheduler;
    std::uint64_t seed = 9;
    for (auto _ : state) {
        Simulator sim(sys.masking, scheduler, seed++);
        FaultInjector injector(sys.byzantine_fault, 0.0, 1);
        injector.schedule(0, 0);
        sim.set_fault_injector(&injector);
        RunOptions options;
        options.max_steps = 2000;
        options.stop_when = sys.all_honest_output;
        benchmark::DoNotOptimize(sim.run(sys.initial_state(1), options));
    }
    state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SimulateAgreement)->Arg(4)->Arg(7)->Arg(10);

}  // namespace

DCFT_BENCH_MAIN(report)
