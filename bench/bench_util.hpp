// Shared helpers for the benchmark binaries.
//
// Every bench binary prints a paper-shaped report first (the tables and
// series EXPERIMENTS.md records), then runs its google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace dcft::bench {

inline void header(const std::string& title) {
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void section(const std::string& name) {
    std::printf("\n-- %s --\n", name.c_str());
}

inline const char* yn(bool b) { return b ? "yes" : "no"; }

/// Runs the report, then google-benchmark, from a bench binary's main().
inline int run_bench_main(int argc, char** argv, void (*report)()) {
    report();
    std::printf("\n-- timings (google-benchmark) --\n");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace dcft::bench

#define DCFT_BENCH_MAIN(report_fn)                                           \
    int main(int argc, char** argv) {                                        \
        return ::dcft::bench::run_bench_main(argc, argv, &(report_fn));      \
    }
