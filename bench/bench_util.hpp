// Shared helpers for the benchmark binaries.
//
// Every bench binary prints a paper-shaped report first (the tables and
// series EXPERIMENTS.md records), then runs its google-benchmark timings.
// JSON series (BENCH_*.json) are emitted through obs::JsonWriter and the
// shared dcft.report envelope ("kind": "bench"), so bench artifacts and
// dcft_cli run reports parse with the same reader and validator.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/json.hpp"
#include "obs/run_report.hpp"

namespace dcft::bench {

inline void header(const std::string& title) {
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void section(const std::string& name) {
    std::printf("\n-- %s --\n", name.c_str());
}

inline const char* yn(bool b) { return b ? "yes" : "no"; }

/// Opens the shared envelope for a BENCH_*.json artifact. The caller
/// appends its payload members (e.g. "workloads") and then calls
/// finish_bench_json.
inline void begin_bench_json(obs::JsonWriter& w, std::string_view tool,
                             std::string_view command) {
    obs::begin_envelope(w, "bench", tool, command);
}

/// Appends the telemetry snapshot, closes the envelope, and writes the
/// document to `path`. Returns false on I/O failure.
inline bool finish_bench_json(obs::JsonWriter& w, const std::string& path) {
    obs::write_telemetry(w);
    w.end_object();
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return false;
    const std::string& doc = w.str();
    const bool ok =
        std::fwrite(doc.data(), 1, doc.size(), out) == doc.size() &&
        std::fputc('\n', out) != EOF;
    return std::fclose(out) == 0 && ok;
}

/// Runs the report, then google-benchmark, from a bench binary's main().
inline int run_bench_main(int argc, char** argv, void (*report)()) {
    report();
    std::printf("\n-- timings (google-benchmark) --\n");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace dcft::bench

#define DCFT_BENCH_MAIN(report_fn)                                           \
    int main(int argc, char** argv) {                                        \
        return ::dcft::bench::run_bench_main(argc, argv, &(report_fn));      \
    }
