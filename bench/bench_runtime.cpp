// Experiment R1 (paper Section 7, the SIEFAST sketch): the simulation
// engine itself — raw stepping throughput, the cost of online monitors,
// and fault-injection overhead. This quantifies the "hybrid simulation"
// workflow the paper describes.
#include <chrono>

#include "apps/token_ring.hpp"
#include "bench_util.hpp"
#include "runtime/simulator.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

double steps_per_second(const Program& p, StateIndex from,
                        std::vector<Monitor*> monitors,
                        FaultInjector* injector) {
    RoundRobinScheduler scheduler;
    Simulator sim(p, scheduler, 123);
    for (Monitor* m : monitors) sim.add_monitor(m);
    sim.set_fault_injector(injector);
    RunOptions options;
    options.max_steps = 400000;
    const auto start = std::chrono::steady_clock::now();
    const RunResult run = sim.run(from, options);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    return static_cast<double>(run.steps) / elapsed;
}

void report() {
    header("R1: simulation engine (the SIEFAST analogue)");

    auto sys = apps::make_token_ring(10, 10);
    const StateIndex from = sys.initial_state();

    section("engine throughput and monitor overhead (token ring n=10)");
    const double bare = steps_per_second(sys.ring, from, {}, nullptr);
    SafetyMonitor safety(sys.spec.safety());
    const double with_safety =
        steps_per_second(sys.ring, from, {&safety}, nullptr);
    CorrectorMonitor corrector(sys.legitimate);
    DetectorMonitor detector(sys.privilege(0), sys.legitimate);
    SafetyMonitor safety2(sys.spec.safety());
    const double with_three = steps_per_second(
        sys.ring, from, {&safety2, &corrector, &detector}, nullptr);
    FaultInjector injector(sys.corrupt_any, 0.01, 1000000);
    const double with_faults =
        steps_per_second(sys.ring, from, {}, &injector);

    std::printf("  bare engine           : %12.0f steps/s\n", bare);
    std::printf("  + safety monitor      : %12.0f steps/s (%.2fx)\n",
                with_safety, bare / with_safety);
    std::printf("  + 3 monitors          : %12.0f steps/s (%.2fx)\n",
                with_three, bare / with_three);
    std::printf("  + fault injector p=.01: %12.0f steps/s (%.2fx)\n",
                with_faults, bare / with_faults);
}

void BM_SimulatorStep(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    auto sys = apps::make_token_ring(n, n);
    RoundRobinScheduler scheduler;
    Simulator sim(sys.ring, scheduler, 1);
    RunOptions options;
    options.max_steps = 10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(sys.initial_state(), options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10000);
    state.SetLabel("ring n=" + std::to_string(n));
}
BENCHMARK(BM_SimulatorStep)->Arg(4)->Arg(10)->Arg(15);

void BM_SimulatorWithMonitors(benchmark::State& state) {
    auto sys = apps::make_token_ring(10, 10);
    RoundRobinScheduler scheduler;
    Simulator sim(sys.ring, scheduler, 1);
    SafetyMonitor safety(sys.spec.safety());
    CorrectorMonitor corrector(sys.legitimate);
    sim.add_monitor(&safety);
    sim.add_monitor(&corrector);
    RunOptions options;
    options.max_steps = 10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run(sys.initial_state(), options));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_SimulatorWithMonitors);

}  // namespace

DCFT_BENCH_MAIN(report)
