// Experiment rows for the extended application suite: termination
// detection (detection latency of the DFG probe ring), barrier
// synchronization (the trusting-vs-rechecking detector ablation), and
// distributed reset (wave latency) — all built from the paper's component
// vocabulary and adjudicated by the same checker.
#include "apps/barrier.hpp"
#include "apps/distributed_reset.hpp"
#include "apps/termination_detection.hpp"
#include "bench_util.hpp"
#include "runtime/experiment.hpp"
#include "verify/component_checker.hpp"
#include "verify/invariant.hpp"
#include "verify/tolerance_checker.hpp"

using namespace dcft;
using namespace dcft::bench;

namespace {

void report_termination() {
    section("termination detection: the DFG probe as a verified detector");
    for (int n : {2, 3, 4, 5}) {
        auto sys = apps::make_termination_detection(n);
        const Predicate inv = reachable_invariant(sys.system, sys.initial);
        const DetectorClaim claim{sys.done, sys.all_passive, inv};
        std::printf("  n=%d: states=%-7llu 'done detects all-passive': %s\n",
                    n,
                    static_cast<unsigned long long>(
                        sys.space->num_states()),
                    yn(check_detector(sys.system, claim).ok));
    }

    section("termination detection latency (steps from all-passive to "
            "done; 300 runs)");
    std::printf("  %-4s %-10s %-10s\n", "n", "mean", "p99");
    for (int n : {3, 5, 8, 12}) {
        auto sys = apps::make_termination_detection(n);
        Experiment ex;
        ex.program = &sys.system;
        ex.initial = sys.initial_state(
            std::vector<bool>(static_cast<std::size_t>(n), true));
        ex.runs = 300;
        ex.options.max_steps = 100000;
        ex.options.stop_when = sys.done;
        ex.detector = std::make_pair(sys.done, sys.all_passive);
        const BatchResult r = run_experiment(ex);
        std::printf("  %-4d %-10.1f %-10.1f\n", n,
                    r.detection_latency.mean(),
                    r.detection_latency.percentile(0.99));
    }
    std::printf("  expected shape: latency grows linearly-ish in n (the\n"
                "  probe needs at most two rounds of n token passes).\n");
}

void report_barrier() {
    section("barrier: trusting vs rechecking hierarchical detector "
            "(witness corruption)");
    for (int n : {2, 4, 8}) {
        auto sys = apps::make_barrier(n);
        const StateIndex init = sys.initial_state();
        const Predicate start("init",
                              [init](const StateSpace&, StateIndex s) {
                                  return s == init;
                              });
        const Predicate inv_t = reachable_invariant(sys.trusting, start);
        const Predicate inv_r = reachable_invariant(sys.rechecking, start);
        std::printf(
            "  n=%d: trusting fail-safe:%-3s | rechecking masking:%-3s\n",
            n,
            yn(check_failsafe(sys.trusting, sys.corrupt_witness, sys.spec,
                              inv_t)
                   .ok()),
            yn(check_masking(sys.rechecking, sys.corrupt_witness, sys.spec,
                             inv_r)
                   .ok()));
    }
    std::printf("  expected shape: trusting is never fail-safe (one\n"
                "  corrupted witness releases stragglers); rechecking is\n"
                "  masking at every size.\n");

    section("barrier: steps to complete the first round (what the "
            "recheck costs; 300 runs)");
    for (int n : {4, 8}) {
        auto sys = apps::make_barrier(n);
        for (const auto& [p, label] :
             std::vector<std::pair<const Program*, const char*>>{
                 {&sys.trusting, "trusting"},
                 {&sys.rechecking, "rechecking"}}) {
            Experiment ex;
            ex.program = p;
            ex.initial = sys.initial_state();
            ex.runs = 300;
            ex.options.max_steps = 10000;
            ex.options.stop_when =
                Predicate::var_eq(*sys.space, "round", 1);
            const BatchResult r = run_experiment(ex);
            std::printf("  n=%d %-11s round latency: mean=%.1f max=%.0f\n",
                        n, label, r.steps.mean(), r.steps.max());
        }
    }
    std::printf("  expected shape: near-identical latency — the recheck\n"
                "  is a guard strengthening, not extra steps; safety is\n"
                "  gained for free (the paper's efficiency claim).\n");
}

void report_reset() {
    section("distributed reset: wave completion latency per tree shape "
            "(300 runs; start from a freshly started wave, stop at the "
            "completion witness)");
    for (const auto& [parent, label] :
         std::vector<std::pair<std::vector<int>, const char*>>{
             {{0, 0, 0, 0}, "star(4)"},
             {{0, 0, 1, 2}, "chain(4)"},
             {{0, 0, 0, 1, 1, 2, 2}, "tree(7)"},
             {{0, 0, 1, 2, 3, 4, 5}, "chain(7)"}}) {
        auto sys = apps::make_distributed_reset(parent);
        // A just-started wave: root session bumped, witness lowered.
        StateIndex wave = sys.initial_state();
        wave = sys.space->set(wave, sys.sn[0], 1);
        wave = sys.space->set(wave, sys.wc_var, 0);
        Experiment ex;
        ex.program = &sys.system;
        ex.initial = wave;
        ex.runs = 300;
        ex.options.max_steps = 10000;
        ex.options.stop_when = sys.witness;
        const BatchResult r = run_experiment(ex);
        std::printf("  %-9s wave latency: mean=%.1f p99=%.1f\n", label,
                    r.steps.mean(), r.steps.percentile(0.99));
    }
    std::printf(
        "  expected shape: latency ~ n (one adoption per process plus the\n"
        "  completion step), independent of depth — in the interleaving\n"
        "  model the *step count* is the work, not the parallel time;\n"
        "  depth would only show up under a synchronous-rounds metric.\n");
}

void report() {
    header("detector/corrector application suite "
           "(termination, barrier, reset)");
    report_termination();
    report_barrier();
    report_reset();
}

void BM_TerminationDetectorCheck(benchmark::State& state) {
    auto sys = apps::make_termination_detection(
        static_cast<int>(state.range(0)));
    const Predicate inv = reachable_invariant(sys.system, sys.initial);
    const DetectorClaim claim{sys.done, sys.all_passive, inv};
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_detector(sys.system, claim));
    }
    state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_TerminationDetectorCheck)->Arg(3)->Arg(4)->Arg(5);

void BM_BarrierMaskingCheck(benchmark::State& state) {
    auto sys = apps::make_barrier(static_cast<int>(state.range(0)));
    const StateIndex init = sys.initial_state();
    const Predicate start("init", [init](const StateSpace&, StateIndex s) {
        return s == init;
    });
    const Predicate inv = reachable_invariant(sys.rechecking, start);
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_masking(
            sys.rechecking, sys.corrupt_witness, sys.spec, inv));
    }
    state.SetLabel("n=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_BarrierMaskingCheck)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

DCFT_BENCH_MAIN(report)
